//! End-to-end reproduction of the paper's worked example (Fig 3/4).
//!
//! The exact figures of the paper (Iridium 88.5 s, better approach 59.83 s,
//! Centralized 93 s) use worst-case accounting where a stage's transfer and
//! compute never overlap; those numbers are pinned in
//! `tetrium_core::analytic`'s unit tests. Here the same scenario runs through
//! the discrete-event engine, where tasks start computing as soon as their
//! own data arrives, so absolute times are lower — but the paper's *ordering*
//! and rough magnitudes must hold.

use tetrium::sim::EngineConfig;
use tetrium::workload::{fig4_cluster, fig4_job};
use tetrium::{run_workload, SchedulerKind};

fn response(kind: SchedulerKind) -> (f64, f64) {
    let report = run_workload(
        fig4_cluster(),
        vec![fig4_job()],
        kind,
        EngineConfig::default(),
    )
    .expect("run completes");
    (report.jobs[0].response, report.total_wan_gb)
}

#[test]
fn tetrium_beats_iridium_beats_centralized() {
    let (tetrium, _) = response(SchedulerKind::Tetrium);
    let (iridium, _) = response(SchedulerKind::Iridium);
    let (central, _) = response(SchedulerKind::Centralized);
    assert!(
        tetrium < iridium,
        "tetrium {tetrium:.2} vs iridium {iridium:.2}"
    );
    assert!(
        iridium < central,
        "iridium {iridium:.2} vs centralized {central:.2}"
    );
    // The paper reports Tetrium's plan at 68% of Iridium's completion time
    // under worst-case accounting; with fetch/compute overlap the advantage
    // persists. Allow a generous band around the 0.68 ratio.
    let ratio = tetrium / iridium;
    assert!(
        ratio < 0.85,
        "expected a clear win, got ratio {ratio:.2} ({tetrium:.2}/{iridium:.2})"
    );
}

#[test]
fn engine_times_are_below_worst_case_bounds() {
    // Worst-case accounting is an upper bound for the engine's timing.
    let (tetrium, _) = response(SchedulerKind::Tetrium);
    let (iridium, _) = response(SchedulerKind::Iridium);
    let (central, _) = response(SchedulerKind::Centralized);
    assert!(tetrium <= 59.83 + 1.0, "tetrium {tetrium:.2}");
    assert!(iridium <= 88.5 + 1.0, "iridium {iridium:.2}");
    // Centralized is slightly above the paper's 93 s: the paper's variant
    // pre-aggregates data before any task starts, while the engine's tasks
    // occupy a slot during their fetch, serializing some transfer behind
    // compute. The qualitative conclusion (worst of the three) is unchanged.
    assert!(central <= 115.0, "centralized {central:.2}");
    // And they are in the right ballpark (not trivially zero).
    assert!(tetrium > 25.0);
    assert!(iridium > 45.0);
    assert!(central > 55.0);
}

#[test]
fn in_place_map_stage_moves_no_input_data() {
    let report = run_workload(
        fig4_cluster(),
        vec![fig4_job()],
        SchedulerKind::InPlace,
        EngineConfig::default(),
    )
    .unwrap();
    // In-Place only shuffles intermediate data (50 GB at most); the 100 GB
    // input never crosses the WAN.
    assert!(
        report.total_wan_gb <= 50.0 + 1e-6,
        "wan {}",
        report.total_wan_gb
    );
}

#[test]
fn centralized_moves_nearly_all_input() {
    let report = run_workload(
        fig4_cluster(),
        vec![fig4_job()],
        SchedulerKind::Centralized,
        EngineConfig::default(),
    )
    .unwrap();
    // Input off-site of the aggregation target: 30 + 50 = 80 GB; everything
    // after that is local.
    assert!(
        (report.total_wan_gb - 80.0).abs() < 1.0,
        "wan {}",
        report.total_wan_gb
    );
}
