//! Integration tests for the observability layer: the obs record must
//! reconcile with the run report and the trace-derived metrics, and its
//! serialized form must be deterministic for a seed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::ec2_eight_regions;
use tetrium::obs::TaskPhaseEvent;
use tetrium::sim::{EngineConfig, RunReport, SpeculationConfig};
use tetrium::workload::trace_like_jobs;
use tetrium::{run_workload, SchedulerKind};

fn run_with(cfg: EngineConfig) -> RunReport {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(9);
    let jobs = trace_like_jobs(&cluster, 6, &Default::default(), &mut rng);
    run_workload(cluster, jobs, SchedulerKind::Tetrium, cfg).expect("completes")
}

#[test]
fn obs_is_off_by_default() {
    let report = run_with(EngineConfig::trace_like(9));
    assert!(report.obs.is_none(), "no obs record unless requested");
    assert!(report.trace.is_empty());
}

/// With failure injection and speculation off (true for `trace_like`),
/// every slot-second the obs timeline integrates belongs to a winning
/// attempt, so it must equal the trace's per-site busy time; and the obs WAN
/// matrix must sum to the flow-level ledger.
#[test]
fn obs_reconciles_with_trace_and_wan_ledger() {
    let mut cfg = EngineConfig::trace_like(9);
    cfg.record_trace = true;
    cfg.record_obs = true;
    let report = run_with(cfg);
    let obs = report.obs.as_ref().expect("recorded");

    let n = obs.n_sites();
    let from_trace = tetrium::metrics::site_busy_secs(&report.trace, n);
    let from_obs = obs.busy_secs(report.makespan);
    for (site, (a, b)) in from_obs.iter().zip(&from_trace).enumerate() {
        assert!(
            (a - b).abs() < 1e-6 * (1.0 + b),
            "site {site}: obs busy {a} vs trace busy {b}"
        );
    }
    for (site, u) in obs.utilization(report.makespan).into_iter().enumerate() {
        assert!(u <= 1.0 + 1e-9, "site {site} oversubscribed: {u}");
    }
    assert!(
        (obs.total_wan_gb() - report.total_wan_gb).abs() < 1e-6 * (1.0 + report.total_wan_gb),
        "obs WAN {} vs flow-level WAN {}",
        obs.total_wan_gb(),
        report.total_wan_gb
    );

    let total_tasks: usize = report.jobs.iter().map(|j| j.total_tasks).sum();
    let done = obs
        .task_events
        .iter()
        .filter(|e| e.phase == TaskPhaseEvent::Done)
        .count();
    assert_eq!(done, total_tasks, "one done event per task");

    assert!(!obs.sched.is_empty(), "scheduling instances were recorded");
    assert!(!obs.planner.is_empty(), "Tetrium emits planner breakdowns");
    assert!(obs.sched_wall_percentile(0.5) <= obs.sched_wall_percentile(0.99));
    let launched: usize = obs.sched.iter().map(|s| s.launched).sum();
    assert!(
        launched >= total_tasks,
        "every task was launched at least once"
    );
}

/// `to_json(false)` excludes the only measured (non-deterministic) field, so
/// two same-seed runs must serialize byte-identically.
#[test]
fn obs_json_is_deterministic_for_a_seed() {
    let mk = || {
        let mut cfg = EngineConfig::trace_like(9);
        cfg.record_obs = true;
        let report = run_with(cfg);
        serde_json::to_string(&report.obs.unwrap().to_json(false)).unwrap()
    };
    assert_eq!(mk(), mk());
}

/// With speculation and failure injection on, the counters and the event
/// stream stay mutually consistent.
#[test]
fn obs_counters_cover_speculation_and_failures() {
    let mut cfg = EngineConfig::trace_like(9);
    cfg.record_obs = true;
    cfg.speculation = Some(SpeculationConfig::default());
    cfg.failure_prob = 0.05;
    let report = run_with(cfg);
    let obs = report.obs.as_ref().expect("recorded");
    let c = obs.counters;
    assert_eq!(c.copies_launched, report.copies_launched);
    assert_eq!(c.copies_won, report.copies_won);
    assert_eq!(c.task_failures, report.task_failures);
    assert!(c.copies_won <= c.copies_launched);
    let failed_events = obs
        .task_events
        .iter()
        .filter(|e| e.phase == TaskPhaseEvent::Failed)
        .count();
    assert_eq!(failed_events, c.task_failures);
    let cancelled_events = obs
        .task_events
        .iter()
        .filter(|e| e.phase == TaskPhaseEvent::Cancelled)
        .count();
    assert_eq!(cancelled_events, c.attempts_cancelled);
    let total_tasks: usize = report.jobs.iter().map(|j| j.total_tasks).sum();
    let done = obs
        .task_events
        .iter()
        .filter(|e| e.phase == TaskPhaseEvent::Done)
        .count();
    assert_eq!(done, total_tasks, "exactly one winning attempt per task");
}
