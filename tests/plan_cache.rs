//! Cross-crate behavior of the template plan cache (DESIGN.md §11):
//! Exact mode must be invisible in simulation output, Full mode must hit
//! and still complete every job, and — under `--features audit` — every
//! warm-started solve is re-checked bit-for-bit against a cold solve by
//! the scheduler's built-in oracle.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::{Cluster, Site};
use tetrium::core::{PlanCacheMode, TetriumConfig};
use tetrium::sim::{EngineConfig, RunReport};
use tetrium::workload::{recurring_dashboard_jobs, RecurringParams};
use tetrium::{run_workload, SchedulerKind};

fn six_sites() -> Cluster {
    Cluster::new(
        (0..6)
            .map(|i| {
                Site::new(
                    format!("s{i}"),
                    8,
                    0.2 + 0.1 * i as f64,
                    0.3 + 0.1 * i as f64,
                )
            })
            .collect(),
    )
}

/// A recurring dashboard stream under the given cache mode. `phase_step`
/// 0 keeps every instance's data identical (the exact-hit steady state);
/// positive values rotate it with the diurnal cycle.
fn run_stream(mode: PlanCacheMode, phase_step: f64, n: usize) -> RunReport {
    let cluster = six_sites();
    let params = RecurringParams {
        phase_step,
        ..RecurringParams::default()
    };
    let mut rng = StdRng::seed_from_u64(9);
    let jobs = recurring_dashboard_jobs(&cluster, n, &params, &mut rng);
    let cfg = TetriumConfig {
        plan_cache: mode,
        ..TetriumConfig::default()
    };
    run_workload(
        cluster,
        jobs,
        SchedulerKind::TetriumWith(cfg),
        EngineConfig {
            record_obs: true,
            ..EngineConfig::default()
        },
    )
    .expect("stream completes")
}

/// Exact mode only short-circuits solves whose problem compares equal
/// field-for-field, so every placement — and therefore the entire
/// simulation — must be bit-identical to a run without the cache. Only
/// the planner telemetry may differ (hits counted as `tmpl_exact`
/// instead of `tmpl_miss`).
#[test]
fn exact_mode_is_byte_identical_to_off() {
    let off = run_stream(PlanCacheMode::Off, 0.0, 8);
    let exact = run_stream(PlanCacheMode::Exact, 0.0, 8);

    let (off_obs, exact_obs) = (off.obs.as_ref().unwrap(), exact.obs.as_ref().unwrap());
    // The cache must actually have fired, or this test proves nothing.
    let hits: usize = exact_obs.planner.iter().map(|p| p.tmpl_exact).sum();
    assert!(hits > 0, "recurring identical instances must hit exactly");

    let mut off_json = off_obs.to_json(false);
    let mut exact_json = exact_obs.to_json(false);
    // Planner telemetry legitimately differs in the tmpl_* counters; the
    // non-telemetry fields must still agree record-for-record.
    for (a, b) in off_obs.planner.iter().zip(&exact_obs.planner) {
        assert_eq!(a.at, b.at);
        assert_eq!(a.lp_planned, b.lp_planned);
        assert_eq!(a.cache_reused, b.cache_reused);
        assert_eq!(a.local_planned, b.local_planned);
    }
    off_json["planner"] = serde_json::Value::Null;
    exact_json["planner"] = serde_json::Value::Null;
    assert_eq!(
        off_json.to_string(),
        exact_json.to_string(),
        "exact-hit short-circuiting changed simulation output"
    );

    assert_eq!(off.makespan.to_bits(), exact.makespan.to_bits());
    for (a, b) in off.jobs.iter().zip(&exact.jobs) {
        assert_eq!(a.response.to_bits(), b.response.to_bits());
    }
}

/// Full mode trades bit-identity for speed (patched and warm tiers), but
/// must still complete the stream and actually reuse templates.
#[test]
fn full_mode_hits_and_completes() {
    let report = run_stream(PlanCacheMode::Full, 1.0 / 720.0, 10);
    assert_eq!(report.jobs.len(), 10);
    for j in &report.jobs {
        assert!(j.response > 0.0, "{} never finished", j.name);
    }
    let obs = report.obs.as_ref().unwrap();
    let (exact, patched, warm): (usize, usize, usize) =
        obs.planner.iter().fold((0, 0, 0), |(e, p, w), r| {
            (e + r.tmpl_exact, p + r.tmpl_patched, w + r.tmpl_warm)
        });
    assert!(
        exact + patched + warm > 0,
        "a recurring stream must reuse cached placements"
    );
}

/// With the `audit` feature, the scheduler re-solves every warm-started
/// placement cold and asserts bit-exact agreement (the warm-start oracle).
/// Heavy diurnal drift forces the bucket to change between instances so
/// the warm tier — not exact or patched — carries the load; the run
/// completing means every oracle check passed.
#[cfg(feature = "audit")]
#[test]
fn audit_verifies_warm_started_solves() {
    let report = run_stream(PlanCacheMode::Full, 0.23, 12);
    let obs = report.obs.as_ref().unwrap();
    let warm: usize = obs.planner.iter().map(|p| p.tmpl_warm).sum();
    assert!(warm > 0, "drifting stream must exercise the warm tier");
}
