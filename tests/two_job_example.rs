//! End-to-end check of the §2.2 two-job scheduling example.
//!
//! Three sites with 3 slots and 1 GB/s each; job 1 needs (0, 1, 2) local
//! tasks, job 2 needs (2, 4, 6). The paper shows that running job 1 first
//! and letting job 2 spill to other sites gives average response 1.7 s,
//! whereas the opposite order gives 2.65 s. SRPT + joint placement must land
//! near the good schedule; plain fair sharing with site-locality does worse
//! on average response.

use tetrium::sim::EngineConfig;
use tetrium::workload::two_job_example;
use tetrium::{run_workload, SchedulerKind};

#[test]
fn srpt_lands_near_the_paper_schedule() {
    let (cluster, jobs) = two_job_example();
    let report = run_workload(
        cluster,
        jobs,
        SchedulerKind::Tetrium,
        EngineConfig::default(),
    )
    .expect("run completes");
    let avg = report.avg_response();
    // Paper's optimal average is 1.7 s with worst-case transfer accounting;
    // with overlap the engine can do slightly better. It must not degrade to
    // the reversed order's 2.65 s.
    assert!(avg <= 2.0, "avg response {avg:.2}");
    // Job 1 (the small one) must finish in about one wave.
    let j1 = report.response_of(tetrium::jobs::JobId(0));
    assert!(j1 <= 1.3, "small job response {j1:.2}");
}

#[test]
fn srpt_beats_fair_in_place_on_average() {
    let (cluster, jobs) = two_job_example();
    let tetrium = run_workload(
        cluster.clone(),
        jobs.clone(),
        SchedulerKind::Tetrium,
        EngineConfig::default(),
    )
    .unwrap();
    let inplace = run_workload(
        cluster,
        jobs,
        SchedulerKind::InPlace,
        EngineConfig::default(),
    )
    .unwrap();
    assert!(
        tetrium.avg_response() <= inplace.avg_response() + 1e-9,
        "tetrium {:.2} vs in-place {:.2}",
        tetrium.avg_response(),
        inplace.avg_response()
    );
}
