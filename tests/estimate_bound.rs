//! The full-DAG what-if estimator vs the engine: the analytic worst-case
//! estimate should land in the same ballpark as (and normally above) the
//! realized idle-cluster response, since the engine overlaps fetch and
//! compute across slots while the estimate adds them per stage.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::ec2_eight_regions;
use tetrium::core::estimate_job;
use tetrium::sim::EngineConfig;
use tetrium::workload::{bigdata_like_jobs, fig4_cluster, fig4_job};
use tetrium::{run_workload, SchedulerKind};

#[test]
fn fig4_estimate_brackets_engine_response() {
    let est = estimate_job(&fig4_job(), &fig4_cluster()).unwrap();
    let run = run_workload(
        fig4_cluster(),
        vec![fig4_job()],
        SchedulerKind::Tetrium,
        EngineConfig::default(),
    )
    .unwrap();
    let realized = run.jobs[0].response;
    assert!(
        realized <= est.total_secs * 1.1,
        "engine {realized:.1} should not exceed the worst-case estimate {:.1}",
        est.total_secs
    );
    assert!(
        realized >= est.total_secs * 0.3,
        "engine {realized:.1} implausibly far below estimate {:.1}",
        est.total_secs
    );
}

#[test]
fn estimates_track_engine_ordering_across_jobs() {
    // Jobs with larger estimates should broadly take longer in isolation;
    // check rank correlation is positive over a small population.
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(17);
    let jobs = bigdata_like_jobs(&cluster, 6, 0.0, 10.0, &mut rng);
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for job in &jobs {
        let est = estimate_job(job, &cluster).unwrap().total_secs;
        let mut alone = job.clone();
        alone.arrival = 0.0;
        let realized = run_workload(
            cluster.clone(),
            vec![alone],
            SchedulerKind::Tetrium,
            EngineConfig::default(),
        )
        .unwrap()
        .jobs[0]
            .response;
        pairs.push((est, realized));
    }
    // Kendall-style concordance: most pairs ordered the same way.
    let mut concordant = 0;
    let mut total = 0;
    for i in 0..pairs.len() {
        for j in i + 1..pairs.len() {
            total += 1;
            if (pairs[i].0 - pairs[j].0) * (pairs[i].1 - pairs[j].1) >= 0.0 {
                concordant += 1;
            }
        }
    }
    assert!(
        concordant * 3 >= total * 2,
        "estimates disagree with realized ordering: {concordant}/{total} concordant ({pairs:?})"
    );
}
