//! Regression pin for the workspace-wide `partial_cmp().unwrap()` →
//! `f64::total_cmp` conversion (lint rule L2): on the NaN-free inputs the
//! simulator produces, the two comparators induce identical sort orders, so
//! swapping them cannot move any figure output. The one documented
//! divergence is mixed-sign zeros (`total_cmp` orders `-0.0 < 0.0`, while
//! `partial_cmp` calls them equal); there the orders are still numerically
//! identical.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sort_both_ways(vals: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut by_total = vals.to_vec();
    by_total.sort_by(|a, b| a.total_cmp(b));
    let mut by_partial = vals.to_vec();
    // lint:allow(L2) -- this test exists to compare the two comparators
    by_partial.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (by_total, by_partial)
}

#[test]
fn total_cmp_matches_partial_cmp_on_nan_free_inputs() {
    let mut rng = StdRng::seed_from_u64(7);
    for case in 0..200 {
        let n = 1 + case % 64;
        let vals: Vec<f64> = (0..n)
            .map(|_| {
                // The magnitudes ledger quantities actually take: bytes,
                // rates, seconds — spread over many decades, plus exact
                // integers and subnormal-adjacent tinies.
                let exp: i32 = rng.gen_range(-12..12);
                let mantissa: f64 = rng.gen_range(-10.0..10.0);
                mantissa * 10f64.powi(exp)
            })
            .collect();
        let (by_total, by_partial) = sort_both_ways(&vals);
        // Bit-exact: same values must land in the same slots.
        for (a, b) in by_total.iter().zip(&by_partial) {
            assert_eq!(a.to_bits(), b.to_bits(), "case {case}: order diverged");
        }
    }
}

#[test]
fn total_cmp_matches_partial_cmp_on_edge_values() {
    let vals = [
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        f64::EPSILON,
        1.0,
        -1.0,
        0.0,
        1e308,
        -1e308,
        5e-324, // smallest subnormal
    ];
    let (by_total, by_partial) = sort_both_ways(&vals);
    for (a, b) in by_total.iter().zip(&by_partial) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Mixed-sign zeros: the only NaN-free case where the comparators differ.
/// `total_cmp` deterministically puts `-0.0` first; numerically the sorted
/// sequences are identical, so no downstream arithmetic can change.
#[test]
fn mixed_zeros_stay_numerically_identical() {
    let vals = [0.0, -0.0, 1.0, -1.0, -0.0, 0.0];
    let (by_total, by_partial) = sort_both_ways(&vals);
    for (a, b) in by_total.iter().zip(&by_partial) {
        assert_eq!(a, b, "numeric order must match");
    }
    // And total_cmp's zero placement is itself deterministic.
    assert_eq!(by_total[1].to_bits(), (-0.0f64).to_bits());
    assert_eq!(by_total[2].to_bits(), (-0.0f64).to_bits());
}
