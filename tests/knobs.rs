//! End-to-end behaviour of the ρ (WAN budget) and ε (fairness) knobs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::ec2_eight_regions;
use tetrium::core::{TetriumConfig, WanKnob};
use tetrium::metrics::jain_index;
use tetrium::sim::EngineConfig;
use tetrium::workload::{bigdata_like_jobs, trace_like_jobs, TraceParams};
use tetrium::{isolated_service_times, run_workload, SchedulerKind};

fn tetrium_with(mutate: impl FnOnce(&mut TetriumConfig)) -> SchedulerKind {
    let mut cfg = TetriumConfig::default();
    mutate(&mut cfg);
    SchedulerKind::TetriumWith(cfg)
}

#[test]
fn rho_zero_saves_wan() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(21);
    let jobs = bigdata_like_jobs(&cluster, 10, 10.0, 2.0, &mut rng);
    let run = |rho: f64| {
        run_workload(
            cluster.clone(),
            jobs.clone(),
            tetrium_with(|c| c.wan = WanKnob::new(rho)),
            EngineConfig::default(),
        )
        .unwrap()
    };
    let frugal = run(0.0);
    let free = run(1.0);
    // The knob's hard guarantee: rho = 0 never exceeds the frugal budget.
    // Whether the extra WAN at rho = 1 buys response time depends on the
    // compute/network regime (Fig 10 sweeps it in the bench harness), so
    // only the WAN ordering is asserted here.
    assert!(
        frugal.total_wan_gb < free.total_wan_gb,
        "rho=0 wan {:.1} vs rho=1 wan {:.1}",
        frugal.total_wan_gb,
        free.total_wan_gb
    );
}

#[test]
fn rho_one_wins_when_compute_bound() {
    // The Fig 4 worked example is compute-bound (site 2 runs 30 waves when
    // everything stays local), so spending WAN must pay off: the paper's
    // better approach beats in-place by ~33% on this instance.
    use tetrium::workload::{fig4_cluster, fig4_job};
    let run = |rho: f64| {
        run_workload(
            fig4_cluster(),
            vec![fig4_job()],
            tetrium_with(|c| c.wan = WanKnob::new(rho)),
            EngineConfig::default(),
        )
        .unwrap()
        .jobs[0]
            .response
    };
    let frugal = run(0.0);
    let free = run(1.0);
    assert!(
        free < frugal,
        "rho=1 response {free:.1} should beat rho=0 {frugal:.1} on Fig 4"
    );
}

#[test]
fn rho_interpolates_wan_usage() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(23);
    let jobs = bigdata_like_jobs(&cluster, 8, 10.0, 2.0, &mut rng);
    let wan = |rho: f64| {
        run_workload(
            cluster.clone(),
            jobs.clone(),
            tetrium_with(|c| c.wan = WanKnob::new(rho)),
            EngineConfig::default(),
        )
        .unwrap()
        .total_wan_gb
    };
    let w0 = wan(0.0);
    let w5 = wan(0.5);
    let w1 = wan(1.0);
    // Monotone within a small tolerance (rounding of task counts can wiggle
    // a little).
    assert!(w0 <= w5 * 1.05 + 1.0, "w0 {w0:.1} w5 {w5:.1}");
    assert!(w5 <= w1 * 1.05 + 1.0, "w5 {w5:.1} w1 {w1:.1}");
    assert!(w0 < w1, "w0 {w0:.1} should be below w1 {w1:.1}");
}

#[test]
fn epsilon_trades_average_response_for_fairness() {
    let cluster = ec2_eight_regions();
    // SRPT's average-response advantage is regime-dependent: under heavy
    // cross-job WAN contention the ordering can invert on individual traces.
    // This seed sits in a clearly queue-bound regime where SRPT wins by ~10%,
    // so the assertion is robust to tie-breaking changes in the placement LP
    // (alternate optimal vertices shift realized contention slightly).
    let mut rng = StdRng::seed_from_u64(9);
    let params = TraceParams {
        mean_interarrival_secs: 5.0,
        median_input_gb: 3.0,
        stages: (2, 5),
        ..TraceParams::default()
    };
    let jobs = trace_like_jobs(&cluster, 12, &params, &mut rng);
    let isolated = isolated_service_times(&cluster, &jobs, SchedulerKind::Tetrium).unwrap();
    let run = |eps: f64| {
        run_workload(
            cluster.clone(),
            jobs.clone(),
            tetrium_with(|c| c.epsilon = eps),
            EngineConfig::default(),
        )
        .unwrap()
    };
    let srpt = run(1.0);
    let fair = run(0.0);
    // SRPT optimizes average response.
    assert!(
        srpt.avg_response() <= fair.avg_response() + 1e-9,
        "srpt {:.1} vs fair {:.1}",
        srpt.avg_response(),
        fair.avg_response()
    );
    // Full fairness should not make the slowdown distribution much *less*
    // fair than SRPT (it typically improves it).
    let slow = |r: &tetrium::sim::RunReport| {
        let s: Vec<f64> = r
            .jobs
            .iter()
            .zip(&isolated)
            .map(|(j, &iso)| j.response / iso)
            .collect();
        jain_index(&s)
    };
    assert!(slow(&fair) >= slow(&srpt) - 0.15);
}

#[test]
fn dynamics_k_still_completes_under_capacity_drops() {
    use tetrium::cluster::{CapacityDrop, SiteId};
    use tetrium::sim::Engine;

    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(31);
    let jobs = bigdata_like_jobs(&cluster, 6, 10.0, 2.0, &mut rng);
    for k in [1, 3, 8] {
        let kind = tetrium_with(|c| c.dynamics_k = Some(k));
        let drops = vec![
            CapacityDrop::new(SiteId(0), 5.0, 0.4),
            CapacityDrop::new(SiteId(3), 9.0, 0.3),
        ];
        let report = Engine::new(
            cluster.clone(),
            jobs.clone(),
            kind.build(),
            EngineConfig::default(),
        )
        .with_drops(drops)
        .run()
        .unwrap_or_else(|e| panic!("k={k}: {e}"));
        assert_eq!(report.jobs.len(), 6);
    }
}
