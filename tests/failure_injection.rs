//! Cross-crate behaviour under injected task failures (the trace's
//! fail-over events): every scheduler must drive flaky workloads to
//! completion, and failures must only ever delay jobs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::ec2_eight_regions;
use tetrium::sim::EngineConfig;
use tetrium::workload::bigdata_like_jobs;
use tetrium::{run_workload, SchedulerKind};

#[test]
fn every_scheduler_survives_failures() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(41);
    let jobs = bigdata_like_jobs(&cluster, 5, 20.0, 3.0, &mut rng);
    for kind in [
        SchedulerKind::Tetrium,
        SchedulerKind::InPlace,
        SchedulerKind::Iridium,
        SchedulerKind::Swag,
        SchedulerKind::Tetris,
        SchedulerKind::Centralized,
    ] {
        let report = run_workload(
            cluster.clone(),
            jobs.clone(),
            kind.clone(),
            EngineConfig {
                failure_prob: 0.15,
                seed: 5,
                ..EngineConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(report.jobs.len(), 5, "{}", kind.name());
        assert!(report.task_failures > 0, "{}", kind.name());
    }
}

#[test]
fn failures_only_delay_never_speed_up() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(43);
    let jobs = bigdata_like_jobs(&cluster, 4, 0.0, 3.0, &mut rng);
    let clean = run_workload(
        cluster.clone(),
        jobs.clone(),
        SchedulerKind::InPlace,
        EngineConfig::default(),
    )
    .unwrap();
    let flaky = run_workload(
        cluster,
        jobs,
        SchedulerKind::InPlace,
        EngineConfig {
            failure_prob: 0.25,
            seed: 9,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    // With site-local placement the re-executions strictly add work, so the
    // makespan cannot shrink.
    assert!(
        flaky.makespan >= clean.makespan - 1e-9,
        "flaky {:.1} vs clean {:.1}",
        flaky.makespan,
        clean.makespan
    );
}
