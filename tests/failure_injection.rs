//! Cross-crate behaviour under injected task failures (the trace's
//! fail-over events): every scheduler must drive flaky workloads to
//! completion, failures must only ever delay jobs, and the WAN ledger must
//! reconcile exactly however many attempts are lost.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::ec2_eight_regions;
use tetrium::cluster::{CapacityDrop, SiteId};
use tetrium::sim::EngineConfig;
use tetrium::workload::bigdata_like_jobs;
use tetrium::{run_workload, SchedulerKind};

/// Per-job WAN charges must sum to the flow simulator's ledger: every
/// refund for a failed or cancelled attempt was given back exactly once.
fn assert_wan_reconciles(report: &tetrium::sim::RunReport, ctx: &str) {
    let per_job: f64 = report.jobs.iter().map(|j| j.wan_gb).sum();
    assert!(
        (per_job - report.total_wan_gb).abs() < 1e-6 * (1.0 + report.total_wan_gb),
        "{ctx}: per-job wan {per_job} != flowsim wan {}",
        report.total_wan_gb
    );
}

#[test]
fn every_scheduler_survives_failures() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(41);
    let jobs = bigdata_like_jobs(&cluster, 5, 20.0, 3.0, &mut rng);
    for kind in [
        SchedulerKind::Tetrium,
        SchedulerKind::InPlace,
        SchedulerKind::Iridium,
        SchedulerKind::Swag,
        SchedulerKind::Tetris,
        SchedulerKind::Centralized,
    ] {
        let report = run_workload(
            cluster.clone(),
            jobs.clone(),
            kind.clone(),
            EngineConfig {
                failure_prob: 0.15,
                seed: 5,
                ..EngineConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(report.jobs.len(), 5, "{}", kind.name());
        assert!(report.task_failures > 0, "{}", kind.name());
        assert_wan_reconciles(&report, &kind.name());
    }
}

#[test]
fn failures_only_delay_never_speed_up() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(43);
    let jobs = bigdata_like_jobs(&cluster, 4, 0.0, 3.0, &mut rng);
    let clean = run_workload(
        cluster.clone(),
        jobs.clone(),
        SchedulerKind::InPlace,
        EngineConfig::default(),
    )
    .unwrap();
    let flaky = run_workload(
        cluster,
        jobs,
        SchedulerKind::InPlace,
        EngineConfig {
            failure_prob: 0.25,
            seed: 9,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    // With site-local placement the re-executions strictly add work, so the
    // makespan cannot shrink.
    assert!(
        flaky.makespan >= clean.makespan - 1e-9,
        "flaky {:.1} vs clean {:.1}",
        flaky.makespan,
        clean.makespan
    );
    assert_wan_reconciles(&clean, "clean");
    assert_wan_reconciles(&flaky, "flaky");
}

/// The monotonicity property must also hold when a mid-run capacity drop is
/// active: injected failures on top of the degraded cluster only add work.
#[test]
fn failures_only_delay_under_mid_run_drops() {
    use tetrium::sim::Engine;
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(43);
    let jobs = bigdata_like_jobs(&cluster, 4, 0.0, 3.0, &mut rng);
    let drops = vec![CapacityDrop::new(SiteId(0), 50.0, 0.5)];
    let run = |failure_prob: f64, seed: u64| {
        Engine::new(
            cluster.clone(),
            jobs.clone(),
            SchedulerKind::InPlace.build(),
            EngineConfig {
                failure_prob,
                seed,
                ..EngineConfig::default()
            },
        )
        .with_drops(drops.clone())
        .run()
        .unwrap()
    };
    let clean = run(0.0, 0);
    let flaky = run(0.25, 9);
    assert_eq!(clean.dynamics_events, 1);
    assert_eq!(flaky.dynamics_events, 1);
    assert!(flaky.task_failures > 0);
    assert!(
        flaky.makespan >= clean.makespan - 1e-9,
        "flaky {:.1} vs clean {:.1}",
        flaky.makespan,
        clean.makespan
    );
    assert_wan_reconciles(&clean, "drop-clean");
    assert_wan_reconciles(&flaky, "drop-flaky");
}

/// A full site outage with recovery: every scheduler still completes, the
/// retry path re-places the stranded attempts, and the slot/WAN ledgers
/// reconcile (occupancy returns to zero everywhere, per-job WAN matches the
/// flow simulator).
#[test]
fn outage_with_recovery_reconciles_ledgers_for_every_scheduler() {
    use tetrium::cluster::{DynamicsChange, DynamicsEvent, DynamicsTimeline};
    use tetrium::run_workload_dynamic;
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(41);
    let jobs = bigdata_like_jobs(&cluster, 5, 20.0, 3.0, &mut rng);
    let timeline = DynamicsTimeline::new(vec![
        DynamicsEvent::new(SiteId(2), 40.0, DynamicsChange::Outage),
        DynamicsEvent::new(SiteId(2), 120.0, DynamicsChange::Recover),
    ]);
    for kind in [
        SchedulerKind::Tetrium,
        SchedulerKind::InPlace,
        SchedulerKind::Iridium,
        SchedulerKind::Swag,
        SchedulerKind::Tetris,
        SchedulerKind::Centralized,
    ] {
        let cfg = EngineConfig {
            record_obs: true,
            ..EngineConfig::default()
        };
        let report = run_workload_dynamic(
            cluster.clone(),
            jobs.clone(),
            kind.clone(),
            cfg,
            timeline.clone(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(report.jobs.len(), 5, "{}", kind.name());
        assert_eq!(report.dynamics_events, 2, "{}", kind.name());
        assert_wan_reconciles(&report, &kind.name());
        let obs = report.obs.as_ref().expect("record_obs set");
        assert_eq!(obs.counters.site_outages, 1, "{}", kind.name());
        // Slot ledger: occupancy at every site drained back to zero.
        for (site, tl) in obs.slot_timeline.iter().enumerate() {
            if let Some(&(_, occ)) = tl.last() {
                assert_eq!(occ, 0, "{}: site {site} ends occupied", kind.name());
            }
        }
    }
}
