//! Property tests: engine conservation laws over random workloads.

use proptest::prelude::*;
use tetrium::cluster::{Cluster, DataDistribution, Site};
use tetrium::jobs::{Job, JobId, Stage};
use tetrium::sim::EngineConfig;
use tetrium::{run_workload, SchedulerKind};

#[derive(Debug, Clone)]
struct GenJob {
    input: Vec<f64>,
    map_tasks: usize,
    reduce_tasks: usize,
    ratio: f64,
    arrival: f64,
    deep: bool,
}

fn cluster_strategy() -> impl Strategy<Value = Cluster> {
    (2usize..5).prop_flat_map(|n| {
        proptest::collection::vec((1usize..6, 1u32..40, 1u32..40), n).prop_map(|sites| {
            Cluster::new(
                sites
                    .into_iter()
                    .enumerate()
                    .map(|(i, (slots, up, down))| {
                        Site::new(format!("s{i}"), slots, up as f64 * 0.05, down as f64 * 0.05)
                    })
                    .collect(),
            )
        })
    })
}

fn scenario_strategy() -> impl Strategy<Value = (Cluster, Vec<GenJob>)> {
    cluster_strategy().prop_flat_map(|c| {
        let n = c.len();
        (Just(c), jobs_strategy(n))
    })
}

fn jobs_strategy(n_sites: usize) -> impl Strategy<Value = Vec<GenJob>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0.0f64..5.0, n_sites),
            1usize..15,
            1usize..10,
            0.05f64..1.2,
            0.0f64..20.0,
            proptest::bool::ANY,
        )
            .prop_map(
                |(input, map_tasks, reduce_tasks, ratio, arrival, deep)| GenJob {
                    input,
                    map_tasks,
                    reduce_tasks,
                    ratio,
                    arrival,
                    deep,
                },
            ),
        1..4,
    )
}

fn build_jobs(gen: &[GenJob], n_sites: usize) -> Vec<Job> {
    gen.iter()
        .enumerate()
        .map(|(i, g)| {
            let mut input = g.input.clone();
            if input.iter().sum::<f64>() <= 0.0 {
                input[0] = 1.0;
            }
            let _ = n_sites;
            let mut stages = vec![
                Stage::root_map(DataDistribution::new(input), g.map_tasks, 0.5, g.ratio),
                Stage::reduce(vec![0], g.reduce_tasks, 0.4, 0.2),
            ];
            if g.deep {
                stages.push(Stage::reduce(vec![1], 2, 0.2, 0.1));
            }
            Job::new(JobId(i), format!("p{i}"), g.arrival, stages)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheduler finishes every random workload; responses are
    /// positive and finite, the makespan covers the last completion, and
    /// per-job WAN accounting sums to the flow-level total.
    #[test]
    fn conservation_laws_hold(
        (cluster, gen) in scenario_strategy(),
        seed in 0u64..1000,
        sched_pick in 0usize..5,
    ) {
        let jobs = build_jobs(&gen, cluster.len());
        let total_tasks: usize = jobs.iter().map(|j| j.total_tasks()).sum();
        let kind = match sched_pick {
            0 => SchedulerKind::Tetrium,
            1 => SchedulerKind::InPlace,
            2 => SchedulerKind::Iridium,
            3 => SchedulerKind::Centralized,
            _ => SchedulerKind::Tetris,
        };
        let cfg = EngineConfig {
            duration_cv: 0.2,
            straggler_prob: 0.05,
            seed,
            record_trace: true,
            ..EngineConfig::default()
        };
        let slots = cluster.slots_vec();
        let report = run_workload(cluster, jobs, kind, cfg).expect("run completes");
        prop_assert_eq!(report.jobs.len(), gen.len());
        for j in &report.jobs {
            prop_assert!(j.response.is_finite() && j.response > 0.0);
            prop_assert!(j.finished >= j.arrival);
            prop_assert!(j.wan_gb >= -1e-9);
            prop_assert!(report.makespan >= j.finished - 1e-9);
        }
        let per_job_wan: f64 = report.jobs.iter().map(|j| j.wan_gb).sum();
        prop_assert!(
            (per_job_wan - report.total_wan_gb).abs() < 1e-6 * (1.0 + per_job_wan),
            "per-job {} vs flow-level {}", per_job_wan, report.total_wan_gb
        );
        let reported_tasks: usize = report.jobs.iter().map(|j| j.total_tasks).sum();
        prop_assert_eq!(reported_tasks, total_tasks);
        // site_utilization is unclamped on purpose: a ratio above 1 means
        // the engine oversubscribed a site's slots.
        for (i, u) in tetrium::metrics::site_utilization(&report.trace, &slots, report.makespan)
            .into_iter()
            .enumerate()
        {
            prop_assert!(u <= 1.0 + 1e-9, "site {} oversubscribed: utilization {}", i, u);
        }
    }

    /// Identical seeds give identical runs (full determinism).
    #[test]
    fn runs_are_deterministic(
        (cluster, gen) in scenario_strategy(),
        seed in 0u64..100,
    ) {
        let jobs = build_jobs(&gen, cluster.len());
        let cfg = EngineConfig {
            duration_cv: 0.3,
            straggler_prob: 0.1,
            seed,
            ..EngineConfig::default()
        };
        let a = run_workload(cluster.clone(), jobs.clone(), SchedulerKind::Tetrium, cfg.clone())
            .unwrap();
        let b = run_workload(cluster, jobs, SchedulerKind::Tetrium, cfg).unwrap();
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            prop_assert_eq!(x.response.to_bits(), y.response.to_bits());
            prop_assert_eq!(x.wan_gb.to_bits(), y.wan_gb.to_bits());
        }
    }
}
