//! Integration tests for scheduler-internal mechanisms observable from
//! outside: the LP job budget, the lookahead knob, and snapshot accuracy.

use tetrium::cluster::{Cluster, DataDistribution, Site, SiteId};
use tetrium::core::{TetriumConfig, TetriumScheduler};
use tetrium::jobs::{Job, JobId, Stage};
use tetrium::sim::{Engine, EngineConfig, Scheduler, Snapshot, StagePlan};
use tetrium::{run_workload, SchedulerKind};

fn cluster() -> Cluster {
    Cluster::new(vec![
        Site::new("big", 30, 2.0, 2.0),
        Site::new("thin", 4, 0.05, 0.5),
        Site::new("mid", 10, 0.5, 0.5),
    ])
}

fn chain_job(id: usize, gb: f64) -> Job {
    Job::new(
        JobId(id),
        format!("chain-{id}"),
        0.0,
        vec![
            Stage::root_map(
                DataDistribution::new(vec![0.1 * gb, 0.8 * gb, 0.1 * gb]),
                20,
                2.0,
                0.8,
            ),
            Stage::reduce(vec![0], 16, 2.0, 0.6),
            Stage::reduce(vec![1], 8, 1.0, 0.1),
        ],
    )
}

#[test]
fn lookahead_avoids_parking_data_behind_thin_uplinks() {
    let run = |lookahead: bool| {
        run_workload(
            cluster(),
            vec![chain_job(0, 8.0)],
            SchedulerKind::TetriumWith(TetriumConfig {
                lookahead,
                ..TetriumConfig::default()
            }),
            EngineConfig::default(),
        )
        .unwrap()
        .jobs[0]
            .response
    };
    let with = run(true);
    let without = run(false);
    // The lookahead exists precisely for chains through thin uplinks; it
    // must not lose, and on this instance it should win.
    assert!(
        with <= without * 1.02,
        "lookahead {with:.1} vs myopic {without:.1}"
    );
}

#[test]
fn lp_job_limit_falls_back_without_stalling() {
    // More jobs than the LP budget: over-limit jobs get site-local plans
    // but the run must still complete everything.
    let jobs: Vec<Job> = (0..8).map(|i| chain_job(i, 2.0)).collect();
    let report = run_workload(
        cluster(),
        jobs,
        SchedulerKind::TetriumWith(TetriumConfig {
            lp_job_limit: 2,
            ..TetriumConfig::default()
        }),
        EngineConfig::default(),
    )
    .unwrap();
    assert_eq!(report.jobs.len(), 8);
    assert!(report.jobs.iter().all(|j| j.response > 0.0));
}

/// A probe wrapped around the real scheduler that checks snapshot
/// invariants at every instance.
struct ProbingScheduler {
    inner: TetriumScheduler,
    checked: usize,
}

impl Scheduler for ProbingScheduler {
    fn name(&self) -> &str {
        "probe"
    }

    fn schedule(&mut self, snap: &Snapshot) -> Vec<StagePlan> {
        for (i, site) in snap.sites.iter().enumerate() {
            assert!(site.free_slots <= site.slots, "site {i} free > total");
            assert!(site.up_gbps > 0.0 && site.down_gbps > 0.0);
        }
        for job in &snap.jobs {
            assert!(job.remaining_stages >= 1);
            assert!(job.remaining_stages <= job.total_stages);
            assert_eq!(job.stages.len(), job.total_stages);
            for st in &job.runnable {
                assert_eq!(st.tasks.len(), st.num_tasks);
                assert!(!st.input_gb.is_empty());
                assert!(st.est_task_secs > 0.0);
                // Stage metadata and runnable view agree.
                assert!(!job.stages[st.stage_index].done);
            }
        }
        self.checked += 1;
        self.inner.schedule(snap)
    }
}

#[test]
fn snapshots_satisfy_invariants_at_every_instance() {
    let probe = ProbingScheduler {
        inner: TetriumScheduler::standard(),
        checked: 0,
    };
    let report = Engine::new(
        cluster(),
        (0..3).map(|i| chain_job(i, 4.0)).collect(),
        Box::new(probe),
        EngineConfig {
            duration_cv: 0.2,
            seed: 3,
            ..EngineConfig::default()
        },
    )
    .run()
    .unwrap();
    assert!(report.sched_invocations > 3);
}

#[test]
fn capacity_drop_is_visible_in_snapshots() {
    use tetrium::cluster::CapacityDrop;

    struct DropWatcher {
        inner: TetriumScheduler,
        saw_degraded: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }
    impl Scheduler for DropWatcher {
        fn name(&self) -> &str {
            "watch"
        }
        fn schedule(&mut self, snap: &Snapshot) -> Vec<StagePlan> {
            if snap.sites[0].slots <= 15 {
                self.saw_degraded
                    .store(true, std::sync::atomic::Ordering::Relaxed);
            }
            self.inner.schedule(snap)
        }
    }
    let saw = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher = DropWatcher {
        inner: TetriumScheduler::standard(),
        saw_degraded: saw.clone(),
    };
    Engine::new(
        cluster(),
        vec![chain_job(0, 8.0)],
        Box::new(watcher),
        EngineConfig::default(),
    )
    .with_drops(vec![CapacityDrop::new(SiteId(0), 2.0, 0.5)])
    .run()
    .unwrap();
    assert!(
        saw.load(std::sync::atomic::Ordering::Relaxed),
        "scheduler never observed the degraded capacity"
    );
}
