//! Serialization round-trips and miscellaneous cross-crate checks.

use tetrium::cluster::{CapacityDrop, Cluster, DataDistribution, Site, SiteId};
use tetrium::jobs::{Job, JobId, Stage, StageKind};

#[test]
fn cluster_serde_round_trip() {
    let c = tetrium::cluster::ec2_eight_regions();
    let json = serde_json::to_string(&c).unwrap();
    let back: Cluster = serde_json::from_str(&json).unwrap();
    assert_eq!(back, c);
    assert_eq!(back.total_slots(), c.total_slots());
}

#[test]
fn capacity_drop_serde_round_trip() {
    let d = CapacityDrop::new(SiteId(3), 12.5, 0.4);
    let json = serde_json::to_string(&d).unwrap();
    let back: CapacityDrop = serde_json::from_str(&json).unwrap();
    assert_eq!(back, d);
}

#[test]
fn job_serde_preserves_key_skew() {
    let stages = vec![
        Stage::root_map(DataDistribution::new(vec![1.0, 3.0]), 4, 1.0, 0.5),
        Stage::reduce(vec![0], 4, 1.0, 0.1).with_task_weights(vec![4.0, 1.0, 1.0, 2.0]),
    ];
    let j = Job::new(JobId(7), "skewed", 2.5, stages);
    let back: Job = serde_json::from_str(&serde_json::to_string(&j).unwrap()).unwrap();
    assert_eq!(back.id, JobId(7));
    assert_eq!(back.stages[1].kind, StageKind::Reduce);
    assert!((back.stages[1].task_share(0) - 0.5).abs() < 1e-12);
    assert!(back.stages[1].task_skew_cv() > 0.0);
}

#[test]
fn data_placement_improves_the_bottleneck_estimate() {
    use tetrium::baselines::iridium_data_move;
    let input = DataDistribution::new(vec![5.0, 90.0, 5.0]);
    let up = [2.0, 0.1, 2.0];
    let down = [2.0, 2.0, 2.0];
    let before = input
        .as_slice()
        .iter()
        .zip(&up)
        .map(|(v, u)| v / u)
        .fold(0.0f64, f64::max);
    let (after_dist, moved) = iridium_data_move(&input, &up, &down, 0.5);
    let after = after_dist
        .as_slice()
        .iter()
        .zip(&up)
        .map(|(v, u)| v / u)
        .fold(0.0f64, f64::max);
    assert!(moved > 0.0);
    assert!(
        after < before,
        "bottleneck {after:.1} should drop from {before:.1}"
    );
}

#[test]
fn site_names_survive_degradation() {
    let s = Site::new("eu-west-1", 10, 1.0, 2.0);
    let d = CapacityDrop::new(SiteId(0), 1.0, 0.25);
    let g = d.degraded(&s);
    assert_eq!(g.name, "eu-west-1");
    assert_eq!(g.slots, 7);
}

#[test]
fn wan_knob_budget_endpoints_match_closed_forms() {
    use tetrium::core::wan::{reduce_min_wan, reduce_min_wan_lp, wan_budget, WanKnob};
    let shuffle = [4.0, 7.0, 1.0];
    let w_min = reduce_min_wan(&shuffle);
    assert!((w_min - reduce_min_wan_lp(&shuffle)).abs() < 1e-9);
    let total: f64 = shuffle.iter().sum();
    assert_eq!(wan_budget(WanKnob::new(0.0), w_min, total), w_min);
    assert_eq!(wan_budget(WanKnob::new(1.0), w_min, total), total);
}
