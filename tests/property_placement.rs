//! Property tests: invariants of the placement LPs over random instances.

use proptest::prelude::*;
use tetrium::core::wan::reduce_min_wan;
use tetrium::core::{solve_map_placement, solve_reduce_placement, MapProblem, ReduceProblem};

fn map_problem_strategy() -> impl Strategy<Value = MapProblem> {
    (2usize..6).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.0f64..20.0, n),
            proptest::collection::vec(0usize..40, n),
            proptest::collection::vec(1u32..50, n),
            proptest::collection::vec(1u32..50, n),
            proptest::collection::vec(1usize..30, n),
            0.1f64..5.0,
            proptest::option::of(0.0f64..1.0),
        )
            .prop_map(
                |(input_gb, tasks_from, up, down, slots, task_secs, budget_frac)| {
                    let total: f64 = input_gb.iter().sum();
                    MapProblem {
                        input_gb,
                        tasks_from,
                        task_secs,
                        up_gbps: up.into_iter().map(|v| v as f64 * 0.1).collect(),
                        down_gbps: down.into_iter().map(|v| v as f64 * 0.1).collect(),
                        slots,
                        wan_budget_gb: budget_frac.map(|f| f * total),
                        forced_dest_gb: None,
                        next_stage_ratio: None,
                        dest_limit: None,
                    }
                },
            )
    })
}

fn reduce_problem_strategy() -> impl Strategy<Value = ReduceProblem> {
    (2usize..6).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.0f64..20.0, n),
            1usize..200,
            proptest::collection::vec(1u32..50, n),
            proptest::collection::vec(1u32..50, n),
            proptest::collection::vec(1usize..30, n),
            0.1f64..5.0,
            proptest::bool::ANY,
            proptest::option::of(0.0f64..1.0),
        )
            .prop_map(
                |(shuffle_gb, num_tasks, up, down, slots, task_secs, network_only, bf)| {
                    let total: f64 = shuffle_gb.iter().sum();
                    let min = reduce_min_wan(&shuffle_gb);
                    ReduceProblem {
                        shuffle_gb,
                        num_tasks,
                        task_secs,
                        up_gbps: up.into_iter().map(|v| v as f64 * 0.1).collect(),
                        down_gbps: down.into_iter().map(|v| v as f64 * 0.1).collect(),
                        slots,
                        // Budgets below the feasible minimum are the caller's
                        // bug; sample within [min, total].
                        wan_budget_gb: bf.map(|f| min + f * (total - min).max(0.0)),
                        network_only,
                        next_stage_out_gb: None,
                    }
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Map placement conserves tasks per source, keeps fractions on the
    /// simplex, and its fractional WAN stays within any budget.
    #[test]
    fn map_placement_invariants(p in map_problem_strategy()) {
        let placement = solve_map_placement(&p).expect("map model is feasible");
        let n = p.input_gb.len();
        // Per-source task conservation.
        for x in 0..n {
            let sum: usize = placement.counts[x].iter().sum();
            prop_assert_eq!(sum, p.tasks_from[x], "source {}", x);
        }
        let total_tasks: usize = p.tasks_from.iter().sum();
        prop_assert_eq!(placement.tasks_at.iter().sum::<usize>(), total_tasks);
        // Fractions rows sum to 1 where the row matters.
        let total_gb: f64 = p.input_gb.iter().sum();
        if total_gb > 1e-9 && total_tasks > 0 {
            for x in 0..n {
                let s: f64 = placement.fractions[x].iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-5, "row {} sums to {}", x, s);
            }
        }
        // Fractional WAN respects the budget.
        if let Some(w) = p.wan_budget_gb {
            let moved: f64 = (0..n)
                .flat_map(|x| (0..n).filter(move |&y| y != x).map(move |y| (x, y)))
                .map(|(x, y)| p.input_gb[x] * placement.fractions[x][y])
                .sum();
            prop_assert!(moved <= w + 1e-5 * (1.0 + w), "moved {} over budget {}", moved, w);
        }
        // Times are non-negative and finite.
        prop_assert!(placement.times.transfer >= 0.0 && placement.times.transfer.is_finite());
        prop_assert!(placement.times.compute >= 0.0 && placement.times.compute.is_finite());
        // Slot demand never exceeds capacity.
        for x in 0..n {
            prop_assert!(placement.slot_demand[x] <= p.slots[x]);
        }
    }

    /// Reduce placement keeps `r` on the simplex, conserves tasks, and
    /// respects feasible WAN budgets.
    #[test]
    fn reduce_placement_invariants(p in reduce_problem_strategy()) {
        let placement = solve_reduce_placement(&p).expect("budget sampled in feasible range");
        let s: f64 = placement.fractions.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-5, "fractions sum {}", s);
        prop_assert!(placement.fractions.iter().all(|&f| f >= -1e-9));
        prop_assert_eq!(placement.tasks_at.iter().sum::<usize>(), p.num_tasks);
        if let Some(w) = p.wan_budget_gb {
            prop_assert!(
                placement.wan_gb <= w + 1e-5 * (1.0 + w),
                "wan {} over budget {}", placement.wan_gb, w
            );
        }
        prop_assert!(placement.times.transfer >= 0.0 && placement.times.transfer.is_finite());
        prop_assert!(placement.times.compute >= 0.0 && placement.times.compute.is_finite());
    }

    /// Pruned destination sets never lose feasibility, and the restricted
    /// optimum is no better than the full model's.
    #[test]
    fn dest_pruning_is_sound(p in map_problem_strategy(), k in 1usize..4) {
        let full = solve_map_placement(&p).expect("feasible");
        let mut restricted = p.clone();
        restricted.dest_limit = Some(k);
        let pruned = solve_map_placement(&restricted).expect("pruning keeps local placement feasible");
        prop_assert_eq!(
            pruned.tasks_at.iter().sum::<usize>(),
            p.tasks_from.iter().sum::<usize>()
        );
        // The full model can only be as good or better.
        let full_t = full.times.transfer + full.times.compute;
        let pruned_t = pruned.times.transfer + pruned.times.compute;
        prop_assert!(full_t <= pruned_t + 1e-5 * (1.0 + pruned_t),
            "full {} should not exceed pruned {}", full_t, pruned_t);
    }
}
