//! Behavioural integration tests for engine mechanisms: slot batching,
//! estimation error, speculation and the SWAG baseline end-to-end.

use tetrium::cluster::{Cluster, DataDistribution, Site};
use tetrium::jobs::{Job, JobId, Stage};
use tetrium::sim::{BatchPolicy, EngineConfig, SpeculationConfig};
use tetrium::{run_workload, SchedulerKind};

fn two_sites() -> Cluster {
    Cluster::new(vec![
        Site::new("a", 2, 1.0, 1.0),
        Site::new("b", 2, 1.0, 1.0),
    ])
}

fn wavey_job(id: usize) -> Job {
    // 24 tasks over 4 slots: six waves of slot releases.
    Job::new(
        JobId(id),
        format!("waves-{id}"),
        0.0,
        vec![Stage::root_map(
            DataDistribution::new(vec![1.2, 1.2]),
            24,
            1.0,
            0.2,
        )],
    )
}

#[test]
fn batching_reduces_scheduling_instances() {
    // Duration noise spreads slot releases in time; identical-duration
    // waves would coalesce into one instance even unbatched.
    let run = |batch: BatchPolicy| {
        run_workload(
            two_sites(),
            vec![wavey_job(0)],
            SchedulerKind::Tetrium,
            EngineConfig {
                batch,
                duration_cv: 0.4,
                seed: 9,
                ..EngineConfig::default()
            },
        )
        .unwrap()
    };
    let eager = run(BatchPolicy::None);
    let batched = run(BatchPolicy::Fixed(2.0));
    assert!(
        batched.sched_invocations < eager.sched_invocations,
        "batched {} vs eager {}",
        batched.sched_invocations,
        eager.sched_invocations
    );
    // Batching trades a little response time, not correctness.
    assert_eq!(batched.jobs.len(), 1);
    assert!(batched.jobs[0].response >= eager.jobs[0].response - 1e-9);
}

#[test]
fn adaptive_batching_completes_and_coalesces() {
    let report = run_workload(
        two_sites(),
        vec![wavey_job(0), wavey_job_offset(1, 3.0)],
        SchedulerKind::Tetrium,
        EngineConfig {
            batch: BatchPolicy::Adaptive {
                factor: 0.5,
                max_secs: 5.0,
            },
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.jobs.len(), 2);
    assert!(report.sched_invocations > 0);
}

fn wavey_job_offset(id: usize, arrival: f64) -> Job {
    let mut j = wavey_job(id);
    j.arrival = arrival;
    j
}

#[test]
fn estimation_error_is_sampled_and_reported() {
    let noisy = run_workload(
        two_sites(),
        vec![wavey_job(0)],
        SchedulerKind::Tetrium,
        EngineConfig {
            estimation_error: 0.4,
            seed: 5,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert!(noisy.jobs[0].est_error > 0.0);
    assert!(noisy.jobs[0].est_error <= 0.4 + 1e-9);
    let exact = run_workload(
        two_sites(),
        vec![wavey_job(0)],
        SchedulerKind::Tetrium,
        EngineConfig::default(),
    )
    .unwrap();
    assert_eq!(exact.jobs[0].est_error, 0.0);
}

#[test]
fn speculation_never_loses_tasks_under_contention() {
    let cfg = EngineConfig {
        duration_cv: 0.3,
        straggler_prob: 0.3,
        straggler_mult: (3.0, 20.0),
        speculation: Some(SpeculationConfig {
            threshold: 1.5,
            max_copies_frac: 0.3,
        }),
        batch: BatchPolicy::Fixed(0.5),
        seed: 11,
        ..EngineConfig::default()
    };
    let report = run_workload(
        two_sites(),
        vec![wavey_job(0), wavey_job_offset(1, 1.0)],
        SchedulerKind::Tetrium,
        cfg,
    )
    .unwrap();
    assert_eq!(report.jobs.len(), 2);
    assert!(report.copies_launched >= report.copies_won);
}

#[test]
fn swag_runs_multi_wave_workloads_and_orders_reasonably() {
    // A small job arriving alongside a big one should not wait behind it.
    let big = wavey_job(0);
    let small = Job::new(
        JobId(1),
        "small",
        0.0,
        vec![Stage::root_map(
            DataDistribution::new(vec![0.1, 0.1]),
            2,
            1.0,
            0.2,
        )],
    );
    let report = run_workload(
        two_sites(),
        vec![big, small],
        SchedulerKind::Swag,
        EngineConfig::default(),
    )
    .unwrap();
    let small_resp = report.response_of(JobId(1));
    let big_resp = report.response_of(JobId(0));
    assert!(
        small_resp < big_resp,
        "small {small_resp:.1} should beat big {big_resp:.1}"
    );
}
