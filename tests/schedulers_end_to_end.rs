//! Cross-crate sanity of all schedulers on realistic workloads.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::ec2_eight_regions;
use tetrium::sim::EngineConfig;
use tetrium::workload::{bigdata_like_jobs, tpcds_like_jobs};
use tetrium::{run_workload, SchedulerKind};

fn all_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Tetrium,
        SchedulerKind::InPlace,
        SchedulerKind::Iridium,
        SchedulerKind::Centralized,
        SchedulerKind::Tetris,
    ]
}

#[test]
fn every_scheduler_finishes_a_tpcds_mix() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(11);
    let jobs = tpcds_like_jobs(&cluster, 8, 20.0, 2.0, &mut rng);
    let total_tasks: usize = jobs.iter().map(|j| j.total_tasks()).sum();
    for kind in all_kinds() {
        let report = run_workload(
            cluster.clone(),
            jobs.clone(),
            kind.clone(),
            EngineConfig::trace_like(1),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(report.jobs.len(), 8, "{}", kind.name());
        assert!(report.jobs.iter().all(|j| j.response > 0.0));
        assert!(report.makespan >= report.jobs.iter().map(|j| j.response).fold(0.0, f64::max));
        // Sanity on accounting: every job ran all its tasks.
        let reported: usize = report.jobs.iter().map(|j| j.total_tasks).sum();
        assert_eq!(reported, total_tasks);
    }
}

#[test]
fn tetrium_beats_locality_baselines_on_average() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(7);
    let jobs = bigdata_like_jobs(&cluster, 12, 15.0, 2.0, &mut rng);
    let run = |kind: SchedulerKind| {
        run_workload(cluster.clone(), jobs.clone(), kind, EngineConfig::default())
            .unwrap()
            .avg_response()
    };
    let tetrium = run(SchedulerKind::Tetrium);
    let inplace = run(SchedulerKind::InPlace);
    let central = run(SchedulerKind::Centralized);
    assert!(
        tetrium < inplace,
        "tetrium {tetrium:.1} vs in-place {inplace:.1}"
    );
    assert!(
        tetrium < central,
        "tetrium {tetrium:.1} vs centralized {central:.1}"
    );
}

#[test]
fn reports_carry_scheduler_names() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(3);
    let jobs = bigdata_like_jobs(&cluster, 2, 0.0, 1.0, &mut rng);
    for (kind, name) in [
        (SchedulerKind::Tetrium, "tetrium"),
        (SchedulerKind::InPlace, "in-place"),
        (SchedulerKind::Iridium, "iridium"),
        (SchedulerKind::Centralized, "centralized"),
        (SchedulerKind::Tetris, "tetris"),
    ] {
        let report =
            run_workload(cluster.clone(), jobs.clone(), kind, EngineConfig::default()).unwrap();
        assert_eq!(report.scheduler, name);
        assert!(report.sched_invocations > 0);
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let cluster = ec2_eight_regions();
    let mut rng = StdRng::seed_from_u64(5);
    let jobs = tpcds_like_jobs(&cluster, 5, 10.0, 1.5, &mut rng);
    let run = || {
        run_workload(
            cluster.clone(),
            jobs.clone(),
            SchedulerKind::Tetrium,
            EngineConfig::trace_like(42),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.response, y.response, "job {}", x.id);
        assert_eq!(x.wan_gb, y.wan_gb);
    }
    assert_eq!(a.total_wan_gb, b.total_wan_gb);
    // A different seed perturbs at least one response.
    let c = run_workload(
        cluster,
        jobs,
        SchedulerKind::Tetrium,
        EngineConfig::trace_like(43),
    )
    .unwrap();
    assert!(a
        .jobs
        .iter()
        .zip(&c.jobs)
        .any(|(x, y)| x.response != y.response));
}
