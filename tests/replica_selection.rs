//! End-to-end use of the §8 multi-replica extension: choosing read replicas
//! before placement should never hurt, and helps when the primary copies
//! sit behind thin uplinks.

use tetrium::cluster::{Cluster, DataDistribution, Site, SiteId};
use tetrium::core::{replicated_input, select_replicas, ReplicatedPartition};
use tetrium::jobs::{Job, JobId, Stage};
use tetrium::sim::EngineConfig;
use tetrium::{run_workload, SchedulerKind};

fn cluster() -> Cluster {
    Cluster::new(vec![
        Site::new("thin", 8, 0.05, 0.5), // Primary copies live here.
        Site::new("fat", 8, 2.0, 2.0),   // Replicas live here.
        Site::new("big", 30, 2.0, 2.0),  // Compute-rich destination.
    ])
}

fn partitions(replicated: bool) -> Vec<ReplicatedPartition> {
    (0..30)
        .map(|_| ReplicatedPartition {
            gb: 0.2,
            replicas: if replicated {
                vec![SiteId(0), SiteId(1)]
            } else {
                vec![SiteId(0)]
            },
        })
        .collect()
}

fn job_from(input: DataDistribution) -> Job {
    Job::new(
        JobId(0),
        "replicated",
        0.0,
        vec![
            Stage::root_map(input, 30, 2.0, 0.5),
            Stage::reduce(vec![0], 15, 1.0, 0.1),
        ],
    )
}

fn response(input: DataDistribution) -> f64 {
    run_workload(
        cluster(),
        vec![job_from(input)],
        SchedulerKind::Tetrium,
        EngineConfig::default(),
    )
    .expect("completes")
    .jobs[0]
        .response
}

#[test]
fn replica_choice_unlocks_the_fat_uplink() {
    let c = cluster();
    let primary_only = partitions(false);
    let with_replicas = partitions(true);

    let primary_choice = select_replicas(&primary_only, &c);
    assert!(primary_choice.iter().all(|&s| s == SiteId(0)));
    let replica_choice = select_replicas(&with_replicas, &c);
    // The 40x-faster uplink should absorb the bulk of the reads.
    let at_fat = replica_choice.iter().filter(|&&s| s == SiteId(1)).count();
    assert!(at_fat > 20, "fat replica took only {at_fat}/30");

    let t_primary = response(replicated_input(&primary_only, &primary_choice, c.len()));
    let t_replicas = response(replicated_input(&with_replicas, &replica_choice, c.len()));
    assert!(
        t_replicas < t_primary,
        "replicas {t_replicas:.1}s should beat primary-only {t_primary:.1}s"
    );
}

#[test]
fn replica_selection_is_conservative_with_equal_sites() {
    // When every replica site is identical, the choice must still conserve
    // volume and be deterministic.
    let c = Cluster::new(vec![
        Site::new("a", 4, 1.0, 1.0),
        Site::new("b", 4, 1.0, 1.0),
    ]);
    let parts: Vec<ReplicatedPartition> = (0..10)
        .map(|_| ReplicatedPartition {
            gb: 1.0,
            replicas: vec![SiteId(0), SiteId(1)],
        })
        .collect();
    let choice1 = select_replicas(&parts, &c);
    let choice2 = select_replicas(&parts, &c);
    assert_eq!(choice1, choice2);
    let dist = replicated_input(&parts, &choice1, 2);
    assert!((dist.total() - 10.0).abs() < 1e-12);
    // Balanced halves (equal uplinks).
    assert!((dist.at(SiteId(0)) - 5.0).abs() <= 1.0);
}
