//! Property tests for the scheduling heuristics: task ordering, limited
//! re-assignment and largest-remainder rounding.

use proptest::prelude::*;
use tetrium::core::dynamics::{assignment_distance, limited_update};
use tetrium::core::ordering::{order_map_tasks, order_reduce_tasks, MapOrdering, ReduceOrdering};
use tetrium::jobs::largest_remainder_round;
use tetrium_cluster::SiteId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every map ordering is a permutation of the input tasks, and
    /// remote-first puts every remote task before every local one.
    #[test]
    fn map_orderings_are_permutations(
        tasks in proptest::collection::vec((0usize..6, 0usize..6, 1u32..100), 1..40),
        n_sites in 6usize..8,
    ) {
        let refs: Vec<(usize, SiteId, f64, SiteId)> = tasks
            .iter()
            .enumerate()
            .map(|(i, &(s, d, gb))| (i, SiteId(s), gb as f64 * 0.01, SiteId(d)))
            .collect();
        let up = vec![1.0; n_sites];
        for ordering in [
            MapOrdering::RemoteFirstSpread,
            MapOrdering::LocalFirst,
            MapOrdering::Fifo,
        ] {
            let order = order_map_tasks(ordering, &refs, &up);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..refs.len()).collect::<Vec<_>>());
            if ordering == MapOrdering::RemoteFirstSpread {
                // No local task may precede any remote task.
                let is_remote = |i: usize| refs[i].1 != refs[i].3;
                let first_local = order.iter().position(|&i| !is_remote(i));
                if let Some(fl) = first_local {
                    prop_assert!(
                        order[fl..].iter().all(|&i| !is_remote(i)),
                        "remote task after a local one"
                    );
                }
            }
        }
    }

    /// Reduce orderings are permutations; longest-first is sorted by input.
    #[test]
    fn reduce_orderings_are_permutations(
        sizes in proptest::collection::vec(0u32..1000, 1..50),
        seed in 0u64..100,
    ) {
        let inputs: Vec<(usize, f64)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (i, s as f64 * 0.01))
            .collect();
        for ordering in [ReduceOrdering::LongestFirst, ReduceOrdering::Random] {
            let order = order_reduce_tasks(ordering, &inputs, seed);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..inputs.len()).collect::<Vec<_>>());
        }
        let longest = order_reduce_tasks(ReduceOrdering::LongestFirst, &inputs, seed);
        for w in longest.windows(2) {
            prop_assert!(inputs[w[0]].1 >= inputs[w[1]].1 - 1e-12);
        }
    }

    /// Limited updates conserve the task total, and a full budget reaches
    /// the optimum exactly.
    #[test]
    fn limited_update_conserves_and_converges(
        f in proptest::collection::vec(0usize..40, 2..10),
        fs_delta in proptest::collection::vec(-10i64..10, 2..10),
        k in 1usize..12,
    ) {
        let n = f.len().min(fs_delta.len());
        let f = &f[..n];
        let f_star: Vec<usize> = f
            .iter()
            .zip(&fs_delta[..n])
            .map(|(&a, &d)| (a as i64 + d).max(0) as usize)
            .collect();
        let out = limited_update(f, &f_star, k);
        prop_assert_eq!(
            out.iter().sum::<usize>(),
            f_star.iter().sum::<usize>(),
            "totals must match the new optimum"
        );
        if k >= n {
            prop_assert_eq!(out, f_star.clone());
            prop_assert_eq!(assignment_distance(&limited_update(f, &f_star, k), &f_star), 0.0);
        }
    }

    /// Largest-remainder rounding: exact total, and every count within one
    /// task of its exact proportional share.
    #[test]
    fn rounding_is_proportional(
        weights in proptest::collection::vec(0.0f64..100.0, 1..12),
        total in 0usize..500,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 1e-9);
        let counts = largest_remainder_round(&weights, total);
        prop_assert_eq!(counts.iter().sum::<usize>(), total);
        let wsum: f64 = weights.iter().sum();
        for (c, w) in counts.iter().zip(&weights) {
            let exact = w / wsum * total as f64;
            prop_assert!(
                (*c as f64 - exact).abs() <= 1.0 + 1e-9,
                "count {} too far from exact share {}", c, exact
            );
        }
    }
}
