//! Property tests for the WAN substrate: waterfilling invariants and the
//! fluid simulator's byte conservation.

use proptest::prelude::*;
use tetrium::net::{max_min_rates, waterfill_groups, FlowSpec, GroupSpec};
use tetrium_cluster::SiteId;

fn caps_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2usize..7).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u32..80, n),
            proptest::collection::vec(1u32..80, n),
        )
            .prop_map(|(u, d)| {
                (
                    u.into_iter().map(|v| v as f64 * 0.05).collect(),
                    d.into_iter().map(|v| v as f64 * 0.05).collect(),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Max-min rates never oversubscribe a link, and every non-local flow is
    /// bottlenecked at some saturated link.
    #[test]
    fn maxmin_feasible_and_bottlenecked(
        (up, down) in caps_strategy(),
        pairs in proptest::collection::vec((0usize..7, 0usize..7), 1..40),
    ) {
        let n = up.len();
        let flows: Vec<FlowSpec> = pairs
            .into_iter()
            .map(|(s, d)| FlowSpec { src: SiteId(s % n), dst: SiteId(d % n) })
            .collect();
        let rates = max_min_rates(&flows, &up, &down);
        let mut used_up = vec![0.0; n];
        let mut used_down = vec![0.0; n];
        for (f, &r) in flows.iter().zip(&rates) {
            if f.is_local() {
                prop_assert!(r.is_infinite());
                continue;
            }
            prop_assert!(r >= 0.0 && r.is_finite());
            used_up[f.src.index()] += r;
            used_down[f.dst.index()] += r;
        }
        for x in 0..n {
            prop_assert!(used_up[x] <= up[x] + 1e-6, "uplink {} over", x);
            prop_assert!(used_down[x] <= down[x] + 1e-6, "downlink {} over", x);
        }
        for (f, &r) in flows.iter().zip(&rates) {
            if f.is_local() { continue; }
            let up_sat = used_up[f.src.index()] >= up[f.src.index()] - 1e-6;
            let down_sat = used_down[f.dst.index()] >= down[f.dst.index()] - 1e-6;
            prop_assert!(up_sat || down_sat, "flow {:?} at {} not bottlenecked", f, r);
        }
    }

    /// Grouped waterfilling agrees with per-flow waterfilling: expanding a
    /// group into individual flows yields the same per-flow rate.
    #[test]
    fn grouped_equals_expanded(
        (up, down) in caps_strategy(),
        raw in proptest::collection::vec((0usize..7, 0usize..7, 1usize..5), 1..12),
    ) {
        let n = up.len();
        let mut groups = Vec::new();
        let mut flows = Vec::new();
        for (s, d, c) in raw {
            let (s, d) = (s % n, d % n);
            if s == d {
                continue;
            }
            groups.push(GroupSpec { src: s, dst: d, count: c });
            for _ in 0..c {
                flows.push(FlowSpec { src: SiteId(s), dst: SiteId(d) });
            }
        }
        let group_rates = waterfill_groups(&groups, &up, &down);
        let flow_rates = max_min_rates(&flows, &up, &down);
        let mut k = 0;
        for (g, spec) in groups.iter().enumerate() {
            for _ in 0..spec.count {
                prop_assert!(
                    (group_rates[g] - flow_rates[k]).abs() < 1e-6 * (1.0 + flow_rates[k]),
                    "group {} rate {} vs flow {} rate {}", g, group_rates[g], k, flow_rates[k]
                );
                k += 1;
            }
        }
    }

    /// Differential check of the live simulator against the waterfilling
    /// oracle: after any interleaving of add_flow / remove_flow /
    /// set_capacity / advance_to, every in-flight flow's current rate must
    /// equal what `max_min_rates` computes for the same flow multiset under
    /// the same capacities.
    #[test]
    fn flowsim_rates_match_maxmin_oracle_under_interleaving(
        (up, down) in caps_strategy(),
        ops in proptest::collection::vec((0usize..4, 0usize..7, 0usize..7, 1u32..40), 1..60),
    ) {
        use tetrium::net::{FlowKey, FlowSim};
        let n = up.len();
        let mut sim = FlowSim::new(up.clone(), down.clone());
        let (mut up, mut down) = (up, down);
        let mut live: Vec<(FlowKey, usize, usize)> = Vec::new();
        for (op, a, b, v) in ops {
            match op {
                0 => {
                    let s = a % n;
                    let mut d = b % n;
                    if s == d {
                        d = (d + 1) % n;
                    }
                    let k = sim.add_flow(SiteId(s), SiteId(d), v as f64 * 0.1);
                    live.push((k, s, d));
                }
                1 => {
                    if live.is_empty() {
                        continue;
                    }
                    let (k, _, _) = live.swap_remove(a % live.len());
                    let rem = sim.remove_flow(k);
                    prop_assert!(rem >= 0.0);
                }
                2 => {
                    let s = a % n;
                    up[s] = (v as f64) * 0.05;
                    down[s] = (b + 1) as f64 * 0.05;
                    sim.set_capacity(SiteId(s), up[s], down[s]);
                }
                _ => {
                    // Advance a fraction of the way to the next completion,
                    // then retire any flow that finished on the boundary.
                    if let Some((_, t)) = sim.next_completion() {
                        let target = sim.now() + (t - sim.now()) * (v as f64 / 40.0);
                        sim.advance_to(target);
                        while let Some((k, tc)) = sim.next_completion() {
                            if tc > sim.now() + 1e-12 {
                                break;
                            }
                            sim.remove_flow(k);
                            live.retain(|&(lk, _, _)| lk != k);
                        }
                    }
                }
            }
            let flows: Vec<FlowSpec> = live
                .iter()
                .map(|&(_, s, d)| FlowSpec { src: SiteId(s), dst: SiteId(d) })
                .collect();
            let oracle = max_min_rates(&flows, &up, &down);
            for (&(k, s, d), &want) in live.iter().zip(&oracle) {
                let got = sim.rate_gbps(k);
                prop_assert!(
                    (got - want).abs() < 1e-6 * (1.0 + want),
                    "flow {}->{}: sim rate {} vs oracle {}", s, d, got, want
                );
            }
        }
    }

    /// Capacity-churn-heavy differential check: `set_capacity` dominates the
    /// interleaving, so nearly every step dirties a link pair and forces a
    /// scoped refill whose result must still match the from-scratch
    /// oracle. This pins the dirty-link bookkeeping (mask reset, union-find
    /// scoping, full-fill fallback) under sustained capacity movement.
    #[test]
    fn flowsim_matches_oracle_under_capacity_churn(
        (up, down) in caps_strategy(),
        ops in proptest::collection::vec((0usize..8, 0usize..7, 0usize..7, 1u32..40), 1..60),
    ) {
        use tetrium::net::{FlowKey, FlowSim};
        let n = up.len();
        let mut sim = FlowSim::new(up.clone(), down.clone());
        let (mut up, mut down) = (up, down);
        let mut live: Vec<(FlowKey, usize, usize)> = Vec::new();
        for (op, a, b, v) in ops {
            match op {
                0 => {
                    let s = a % n;
                    let mut d = b % n;
                    if s == d {
                        d = (d + 1) % n;
                    }
                    let k = sim.add_flow(SiteId(s), SiteId(d), v as f64 * 0.1);
                    live.push((k, s, d));
                }
                1 => {
                    if live.is_empty() {
                        continue;
                    }
                    let (k, _, _) = live.swap_remove(a % live.len());
                    prop_assert!(sim.remove_flow(k) >= 0.0);
                }
                // Ops 2..=7: capacity churn on some site — three times the
                // weight of every other mutation combined.
                _ => {
                    let s = a % n;
                    up[s] = (v as f64) * 0.05;
                    down[s] = (b + 1) as f64 * 0.05;
                    sim.set_capacity(SiteId(s), up[s], down[s]);
                }
            }
            let flows: Vec<FlowSpec> = live
                .iter()
                .map(|&(_, s, d)| FlowSpec { src: SiteId(s), dst: SiteId(d) })
                .collect();
            let oracle = max_min_rates(&flows, &up, &down);
            for (&(k, s, d), &want) in live.iter().zip(&oracle) {
                let got = sim.rate_gbps(k);
                prop_assert!(
                    (got - want).abs() < 1e-6 * (1.0 + want),
                    "flow {}->{}: sim rate {} vs oracle {}", s, d, got, want
                );
            }
        }
    }

    /// Same-pair churn: every add/remove hits the *same* `(src, dst)` group
    /// (with one static background pair for contention), repeatedly driving
    /// the group's flow count through 0 and back. This pins the live-list
    /// insert/remove path, group reuse after emptying, and the pruned-group
    /// drain clocks: a group revived after going empty must behave exactly
    /// like a fresh one.
    #[test]
    fn flowsim_matches_oracle_under_same_pair_churn(
        (up, down) in caps_strategy(),
        pair in (0usize..7, 1usize..7),
        ops in proptest::collection::vec((0usize..3, 0usize..13, 1u32..40), 1..60),
    ) {
        use tetrium::net::{FlowKey, FlowSim};
        let n = up.len();
        let s = pair.0 % n;
        let d = (s + (pair.1 % (n - 1)) + 1) % n;
        let mut sim = FlowSim::new(up.clone(), down.clone());
        // One background flow on a different pair keeps the component
        // non-trivial so the churned group contends for links.
        let (bs, bd) = (d, s);
        let bg = sim.add_flow(SiteId(bs), SiteId(bd), 1e6);
        let mut live: Vec<FlowKey> = Vec::new();
        for (op, a, v) in ops {
            match op {
                0 => live.push(sim.add_flow(SiteId(s), SiteId(d), v as f64 * 0.1)),
                1 => {
                    if live.is_empty() {
                        continue;
                    }
                    let k = live.swap_remove(a % live.len());
                    prop_assert!(sim.remove_flow(k) >= 0.0);
                }
                _ => {
                    if let Some((_, t)) = sim.next_completion() {
                        let target = sim.now() + (t - sim.now()) * (v as f64 / 40.0);
                        sim.advance_to(target);
                        while let Some((k, tc)) = sim.next_completion() {
                            if tc > sim.now() + 1e-12 {
                                break;
                            }
                            sim.remove_flow(k);
                            live.retain(|&lk| lk != k);
                        }
                    }
                }
            }
            let mut flows: Vec<FlowSpec> =
                vec![FlowSpec { src: SiteId(bs), dst: SiteId(bd) }];
            flows.extend(live.iter().map(|_| FlowSpec { src: SiteId(s), dst: SiteId(d) }));
            let oracle = max_min_rates(&flows, &up, &down);
            let got_bg = sim.rate_gbps(bg);
            prop_assert!(
                (got_bg - oracle[0]).abs() < 1e-6 * (1.0 + oracle[0]),
                "background flow rate {} vs oracle {}", got_bg, oracle[0]
            );
            for (&k, &want) in live.iter().zip(&oracle[1..]) {
                let got = sim.rate_gbps(k);
                prop_assert!(
                    (got - want).abs() < 1e-6 * (1.0 + want),
                    "churned flow: sim rate {} vs oracle {}", got, want
                );
            }
        }
    }

    /// Zeroing a site's links (`set_capacity(_, 0, 0)`, the engine's outage
    /// and link-failure model) must *stall* its flows explicitly: rate
    /// exactly zero, no inf/NaN ETA, excluded from `next_completion` — and
    /// the flows keep their drained progress, resuming to exact byte
    /// conservation once capacity is restored.
    #[test]
    fn zero_capacity_stalls_flows_and_restore_resumes(
        (up, down) in caps_strategy(),
        specs in proptest::collection::vec((0usize..7, 0usize..7, 1u32..50), 1..20),
        dead in 0usize..7,
        frac in 1u32..39,
    ) {
        use tetrium::net::FlowSim;
        let n = up.len();
        let dead = dead % n;
        let mut sim = FlowSim::new(up.clone(), down.clone());
        let mut keys = Vec::new();
        let mut expected = 0.0;
        for (s, d, gb10) in specs {
            let (s, d) = (s % n, d % n);
            let gb = gb10 as f64 * 0.1;
            if s != d {
                expected += gb;
            }
            keys.push((sim.add_flow(SiteId(s), SiteId(d), gb), s, d));
        }
        // Drain partway so stalled flows carry partial progress.
        if let Some((_, t)) = sim.next_completion() {
            let target = sim.now() + (t - sim.now()) * (frac as f64 / 40.0);
            sim.advance_to(target);
        }
        sim.set_capacity(SiteId(dead), 0.0, 0.0);
        for &(k, s, d) in &keys {
            if s == d {
                continue;
            }
            let r = sim.rate_gbps(k);
            prop_assert!(r.is_finite(), "flow {}->{} rate {} not finite", s, d, r);
            if s == dead || d == dead {
                prop_assert_eq!(r, 0.0, "flow {}->{} must stall", s, d);
            }
        }
        if let Some((k, t)) = sim.next_completion() {
            prop_assert!(t.is_finite(), "stalled flows must not produce inf ETAs");
            let &(_, s, d) = keys.iter().find(|&&(kk, _, _)| kk == k).unwrap();
            prop_assert!(
                s == d || (s != dead && d != dead),
                "stalled flow {}->{} offered as next completion", s, d
            );
        }
        // Restore the site and drive everything to completion: the ledger
        // must account every byte exactly once, stall included.
        sim.set_capacity(SiteId(dead), up[dead], down[dead]);
        let mut guard = 0;
        while let Some((k, t)) = sim.next_completion() {
            sim.advance_to(t);
            let rem = sim.remove_flow(k);
            prop_assert!(rem < 1e-6, "removed with {} GB left", rem);
            keys.retain(|&(kk, _, _)| kk != k);
            guard += 1;
            prop_assert!(guard < 10_000, "completion loop runaway");
        }
        prop_assert!(keys.is_empty(), "{} flows never completed", keys.len());
        prop_assert!((sim.total_wan_gb() - expected).abs() < 1e-6 * (1.0 + expected));
    }

    /// The fluid simulator conserves bytes: every flow driven to completion
    /// accounts exactly its size of WAN traffic.
    #[test]
    fn flowsim_conserves_bytes(
        (up, down) in caps_strategy(),
        specs in proptest::collection::vec((0usize..7, 0usize..7, 1u32..50), 1..30),
    ) {
        use tetrium::net::FlowSim;
        let n = up.len();
        let mut sim = FlowSim::new(up, down);
        let mut expected = 0.0;
        let mut live = 0usize;
        for (s, d, gb10) in specs {
            let (s, d) = (s % n, d % n);
            let gb = gb10 as f64 * 0.1;
            if s != d {
                expected += gb;
            }
            sim.add_flow(SiteId(s), SiteId(d), gb);
            live += 1;
        }
        let mut guard = 0;
        while let Some((k, t)) = sim.next_completion() {
            sim.advance_to(t);
            let rem = sim.remove_flow(k);
            prop_assert!(rem < 1e-6, "removed with {} GB left", rem);
            live -= 1;
            guard += 1;
            prop_assert!(guard < 10_000, "completion loop runaway");
        }
        prop_assert_eq!(live, 0);
        prop_assert!((sim.total_wan_gb() - expected).abs() < 1e-6 * (1.0 + expected));
    }
}

// Fewer cases: each one churns a 1000-site waterfiller and cross-checks
// against from-scratch fills, so 16 cases already cover hundreds of
// incremental refills at full scale.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 1000-site churn: a persistent [`Waterfiller`] fed a *sparse* live
    /// pair set (the regime the sorted sparse pair index exists for) under
    /// count mutations and capacity-independent dirty marking must match
    /// the from-scratch [`waterfill_groups`] fill bit for bit at every
    /// step. Guards the O(live pairs) group state against scale: dense
    /// n²-pair scratch would OOM or crawl at this site count long before
    /// the assertions fire.
    #[test]
    fn thousand_site_incremental_refill_matches_full_fill(
        pair_seeds in proptest::collection::vec((0usize..1000, 1usize..1000), 20..60),
        caps in proptest::collection::vec(1u32..80, 64),
        steps in proptest::collection::vec((0usize..60, 0u8..3, 1u32..4), 30..80),
    ) {
        use tetrium::net::{waterfill_groups, GroupSpec, Waterfiller};
        let n = 1000;
        let up: Vec<f64> = (0..n).map(|i| caps[i % caps.len()] as f64 * 0.05).collect();
        let down: Vec<f64> = (0..n).map(|i| caps[(i * 7 + 3) % caps.len()] as f64 * 0.05).collect();
        // Sparse live pair universe: tens of pairs over a thousand sites.
        let mut pairs: Vec<(usize, usize)> = pair_seeds
            .into_iter()
            .map(|(s, off)| (s, (s + off) % n))
            .filter(|&(s, d)| s != d)
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assume!(!pairs.is_empty());
        let mut counts = vec![0usize; pairs.len()];
        let mut rates = vec![0.0f64; pairs.len()];
        let mut wf = Waterfiller::new(n);
        for (step, (pick, op, delta)) in steps.into_iter().enumerate() {
            let g = pick % pairs.len();
            match op {
                0 => counts[g] += delta as usize,
                1 if counts[g] > 0 => counts[g] -= 1,
                _ => counts[g] += 1,
            }
            let (s, d) = pairs[g];
            wf.mark_pair_dirty(s, d);
            let live: Vec<usize> = (0..pairs.len()).filter(|&g| counts[g] > 0).collect();
            wf.refill(&live, |g| (pairs[g].0, pairs[g].1, counts[g]), &up, &down);
            for &(g, r) in wf.refilled() {
                rates[g] = r;
            }
            let specs: Vec<GroupSpec> = pairs
                .iter()
                .zip(&counts)
                .map(|(&(src, dst), &count)| GroupSpec { src, dst, count })
                .collect();
            let want = waterfill_groups(&specs, &up, &down);
            for &g in &live {
                prop_assert!(
                    rates[g].to_bits() == want[g].to_bits(),
                    "step {}: group {} incremental {} != full {}",
                    step, g, rates[g], want[g]
                );
            }
        }
    }
}
