//! Offline stand-in for `rand_distr` (0.4 API subset).
//!
//! Provides the three distributions the workspace samples — log-normal,
//! Pareto and Zipf — implemented with textbook inverse-CDF / Box-Muller
//! methods on top of the vendored `rand`. Streams differ from upstream, but
//! sampling is deterministic for a given generator state and the marginal
//! distributions match the upstream parameterizations.

// Stand-in code tracks upstream's API shape, not current clippy idiom.
#![allow(clippy::all)]

use rand::Rng;

pub use rand::distributions::Distribution;

/// Parameter-validation error returned by distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Uniform draw from the open-closed interval `(0, 1]`, safe for `ln`/powers.
#[inline]
fn open_closed01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    1.0 - rng.gen::<f64>()
}

/// Standard normal deviate via the Box-Muller transform.
#[inline]
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open_closed01(rng);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal distribution: `exp(mu + sigma * Z)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given location and scale of the
    /// underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !(mu.is_finite() && sigma.is_finite() && sigma >= 0.0) {
            return Err(Error("LogNormal requires finite mu and sigma >= 0"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto distribution with the given scale (minimum) and shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    inv_neg_shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution; both parameters must be positive.
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if !(scale > 0.0 && shape > 0.0 && scale.is_finite() && shape.is_finite()) {
            return Err(Error("Pareto requires positive finite scale and shape"));
        }
        Ok(Pareto {
            scale,
            inv_neg_shape: -1.0 / shape,
        })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * open_closed01(rng).powf(self.inv_neg_shape)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`; samples are the
/// ranks as `f64`, matching upstream `rand_distr::Zipf`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s >= 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, Error> {
        if n == 0 || !(s.is_finite() && s >= 0.0) {
            return Err(Error("Zipf requires n >= 1 and finite s >= 0"));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c <= u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_matches_moments() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        // E[X] = exp(mu + sigma^2/2) = exp(0.125) ~= 1.133
        assert!((mean - 1.133f64).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(2.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let d = Zipf::new(100, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            let r = d.sample(&mut rng) as usize;
            assert!((1..=100).contains(&r));
            counts[r - 1] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[0] > counts[49]);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Zipf::new(0, 1.0).is_err());
    }
}
