//! Offline stand-in for `proptest` (API subset).
//!
//! Supports the combinators this workspace's property tests use —
//! numeric-range strategies, tuples, `Just`, `prop_map`/`prop_flat_map`,
//! `proptest::collection::vec`, `proptest::bool::ANY` — and the `proptest!`
//! macro with `#![proptest_config(...)]`. Cases are sampled from a
//! deterministic per-test seed; there is no shrinking, so a failure reports
//! the raw failing case via the standard assert message.

// Stand-in code tracks upstream's API shape, not current clippy idiom.
#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

// Re-export for macro expansions in dependent crates, which may not depend
// on the vendored `rand` directly.
#[doc(hidden)]
pub use rand as __rand;

pub mod prelude {
    //! The glob-import surface: traits, config, and macros.
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

/// Why a test case did not pass: rejected by an assumption (resampled) or
/// an explicit failure. Property bodies may `return Err(...)` with this,
/// mirroring upstream's `Result`-style test bodies.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case did not satisfy a precondition; it is skipped, not failed.
    Reject(String),
    /// The property does not hold for this case.
    Fail(String),
}

impl TestCaseError {
    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Per-block configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test case seed: FNV-1a of the test name mixed with the
/// case index.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then samples from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

pub mod bool {
    //! Boolean strategies.
    use super::*;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            rng.gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::*;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies producing `Option` values.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `Some` with probability 1/2, sampled from `inner`; `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            rng.gen_bool(0.5).then(|| self.inner.sample(rng))
        }
    }
}

/// Defines property tests: each `fn` runs `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// One test fn per step, sharing the block's config (recursion keeps the
/// optional `#![proptest_config]` at a single repetition depth).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_case_rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::
                        seed_from_u64($crate::case_seed(stringify!($name), case));
                // A `Result` body mirrors upstream: `prop_assume!` rejects
                // (the case is skipped), `return Err(...)` fails.
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_case_rng);
                    )+
                    { $body };
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(reason)) => {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, reason)
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// `assert!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10).prop_flat_map(|n| (Just(n), 0.0..n as f64))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_vec_sizes_hold(
            x in 3i32..9,
            v in crate::collection::vec(0.0f64..1.0, 2..5),
            b in crate::bool::ANY,
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|y| (0.0..1.0).contains(y)));
            prop_assert_eq!(b || !b, true);
        }

        #[test]
        fn flat_map_ties_values(p in pair()) {
            let (n, f) = p;
            prop_assert!(f < n as f64);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
