//! Offline stand-in for `crossbeam` (0.8 API subset).
//!
//! Only `crossbeam::thread::scope`/`Scope::spawn` are provided, implemented
//! on top of `std::thread::scope` (stable since Rust 1.63, which makes the
//! external dependency unnecessary here). As in crossbeam, `scope` returns
//! `Err` with the panic payload if any spawned thread panicked, instead of
//! propagating the panic.

// Stand-in code tracks upstream's API shape, not current clippy idiom.
#![allow(clippy::all)]

pub mod thread {
    //! Scoped threads.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of joining: `Err` carries a panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle onto a scope within which threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Creates a scope in which threads borrowing non-`'static` data can be
    /// spawned; all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_stack_data() {
            let counter = AtomicUsize::new(0);
            let out = super::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                            7usize
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum::<usize>()
            })
            .unwrap();
            assert_eq!(out, 28);
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
