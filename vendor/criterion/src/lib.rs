//! Offline stand-in for `criterion` (API subset).
//!
//! Provides `Criterion`, benchmark groups, `Bencher::iter`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros. Measurement is a
//! simple calibrated loop: after a short warm-up the target is timed over
//! enough iterations to fill a measurement window, and the mean per-call
//! time (plus derived throughput, when configured) is printed. There are no
//! statistical comparisons or HTML reports.

// Stand-in code tracks upstream's API shape, not current clippy idiom.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

/// Throughput basis for a benchmark, used to derive a per-second rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs the timing loop for one benchmark target.
pub struct Bencher {
    /// Mean seconds per iteration, filled by `iter`.
    mean_secs: f64,
    /// Fastest observed batch mean, in seconds.
    min_secs: f64,
}

impl Bencher {
    /// Measures `f`, recording mean and minimum per-call time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-call cost.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_calls as f64;

        // Size batches at roughly 1/10 of the measurement window.
        let batch = ((MEASURE.as_secs_f64() / 10.0 / per_call.max(1e-9)) as u64).clamp(1, 1 << 24);
        let mut total = Duration::ZERO;
        let mut calls = 0u64;
        let mut min_batch = f64::INFINITY;
        while total < MEASURE {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            min_batch = min_batch.min(elapsed.as_secs_f64() / batch as f64);
            total += elapsed;
            calls += batch;
        }
        self.mean_secs = total.as_secs_f64() / calls as f64;
        self.min_secs = min_batch;
    }
}

fn format_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn run_one(id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mean_secs: 0.0,
        min_secs: 0.0,
    };
    f(&mut b);
    let mut line = format!(
        "{id:<40} time: [{} mean, {} min]",
        format_secs(b.mean_secs),
        format_secs(b.min_secs)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / b.mean_secs.max(1e-12);
        line.push_str(&format!(" thrpt: {rate:.0} {unit}/s"));
    }
    println!("{line}");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(id, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput basis.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for compatibility; the stand-in sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stand-in uses fixed windows.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput basis for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&id, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&id, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Conversion of `&str` / `String` / [`BenchmarkId`] into a display id.
pub trait IntoBenchmarkId {
    /// The printable benchmark id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
