//! Task spawning and [`JoinHandle`].

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Why a join failed. The stand-in only produces cancellation (the task was
/// dropped at runtime shutdown before completing); panics in spawned tasks
/// propagate to the worker thread instead of being caught.
#[derive(Debug)]
pub struct JoinError {
    _private: (),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task was cancelled")
    }
}

impl std::error::Error for JoinError {}

impl JoinError {
    /// Whether the task was cancelled (always true for stand-in errors).
    pub fn is_cancelled(&self) -> bool {
        true
    }
}

enum JoinState<T> {
    Pending(Option<Waker>),
    Ready(T),
    Cancelled,
    Taken,
}

struct JoinShared<T> {
    state: Mutex<JoinState<T>>,
}

impl<T> JoinShared<T> {
    fn complete(&self, value: T) {
        let mut st = self.state.lock().unwrap();
        let prev = std::mem::replace(&mut *st, JoinState::Ready(value));
        drop(st);
        if let JoinState::Pending(Some(w)) = prev {
            w.wake();
        }
    }

    fn cancel(&self) {
        let mut st = self.state.lock().unwrap();
        if let JoinState::Pending(w) = &mut *st {
            let w = w.take();
            *st = JoinState::Cancelled;
            drop(st);
            if let Some(w) = w {
                w.wake();
            }
        }
    }
}

/// Marks the handle cancelled if the task's future is dropped before
/// completing (e.g. at runtime shutdown), so joiners observe an error
/// instead of hanging.
struct CancelOnDrop<T>(Arc<JoinShared<T>>);

impl<T> Drop for CancelOnDrop<T> {
    fn drop(&mut self) {
        self.0.cancel();
    }
}

/// Awaits a spawned task's output, yielding `Result<T, JoinError>`.
pub struct JoinHandle<T> {
    shared: Arc<JoinShared<T>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has completed (or been cancelled).
    pub fn is_finished(&self) -> bool {
        !matches!(*self.shared.state.lock().unwrap(), JoinState::Pending(_))
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.shared.state.lock().unwrap();
        match &mut *st {
            JoinState::Pending(w) => {
                *w = Some(cx.waker().clone());
                Poll::Pending
            }
            JoinState::Ready(_) => {
                let JoinState::Ready(v) = std::mem::replace(&mut *st, JoinState::Taken) else {
                    unreachable!()
                };
                Poll::Ready(Ok(v))
            }
            JoinState::Cancelled => Poll::Ready(Err(JoinError { _private: () })),
            JoinState::Taken => panic!("JoinHandle polled after completion"),
        }
    }
}

pub(crate) fn spawn_on<F>(shared: &Arc<crate::runtime::Shared>, fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let join = Arc::new(JoinShared {
        state: Mutex::new(JoinState::Pending(None)),
    });
    let join2 = join.clone();
    let wrapped: Pin<Box<dyn Future<Output = ()> + Send>> = Box::pin(async move {
        let guard = CancelOnDrop(join2);
        let out = fut.await;
        guard.0.complete(out);
        // `complete` replaced Pending, so the guard's `cancel` is a no-op.
        drop(guard);
    });
    shared.spawn_dyn(wrapped);
    JoinHandle { shared: join }
}

/// Spawns `fut` onto the current runtime's pool.
///
/// # Panics
///
/// Panics when called outside a runtime context (inside
/// [`crate::runtime::Runtime::block_on`] or a spawned task), like tokio.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let shared =
        crate::runtime::current().expect("tokio::spawn called from outside of a runtime context");
    spawn_on(&shared, fut)
}

/// Cooperatively yields back to the executor once.
pub async fn yield_now() {
    struct YieldNow(bool);
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow(false).await;
}
