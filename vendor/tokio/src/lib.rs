//! Offline stand-in for [tokio](https://docs.rs/tokio) implementing the API
//! subset the workspace uses (this build environment has no crates.io
//! access; see the workspace `Cargo.toml` for the vendoring contract).
//!
//! Provided surface:
//!
//! - [`runtime::Builder`] / [`runtime::Runtime`] — a thread-pool executor
//!   with `block_on` and task spawning. No IO/timer reactor: futures make
//!   progress through wakers alone, which is exactly what a virtual-time
//!   scheduler service needs (wall-clock timers would violate the repo's
//!   L3 determinism lint anyway).
//! - [`task::spawn`] / [`task::JoinHandle`] — spawn onto the current
//!   runtime (panics outside one, like real tokio).
//! - [`sync::mpsc`] — bounded/unbounded multi-producer single-consumer
//!   channels with async `send`/`recv`.
//! - [`sync::broadcast`] — multi-consumer fan-out with a bounded ring
//!   buffer and `Lagged` semantics for slow receivers.
//!
//! Everything is built on `std::sync::{Mutex, Condvar}` + `std::task::Wake`;
//! there is no unsafe code. Executor tasks use a four-state machine
//! (idle/queued/running/notified) so a wake that lands while the task is
//! mid-poll re-queues it instead of being lost.

pub mod runtime;
pub mod sync;
pub mod task;

pub use task::spawn;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn rt(workers: usize) -> crate::runtime::Runtime {
        crate::runtime::Builder::new_multi_thread()
            .worker_threads(workers)
            .enable_all()
            .build()
            .expect("build runtime")
    }

    #[test]
    fn block_on_plain_future() {
        assert_eq!(rt(2).block_on(async { 40 + 2 }), 42);
    }

    #[test]
    fn spawn_and_join() {
        let rt = rt(4);
        let out = rt.block_on(async {
            let handles: Vec<_> = (0..16)
                .map(|i| crate::spawn(async move { i * i }))
                .collect();
            let mut sum = 0;
            for h in handles {
                sum += h.await.expect("task completed");
            }
            sum
        });
        assert_eq!(out, (0..16).map(|i| i * i).sum());
    }

    #[test]
    fn spawn_outside_block_on_via_handle() {
        let rt = rt(2);
        let h = rt.spawn(async { "done" });
        assert_eq!(rt.block_on(h).expect("task completed"), "done");
    }

    #[test]
    fn yield_now_requeues_instead_of_losing_wakeup() {
        let rt = rt(2);
        let n = rt.block_on(async {
            let mut n = 0u32;
            for _ in 0..100 {
                crate::task::yield_now().await;
                n += 1;
            }
            n
        });
        assert_eq!(n, 100);
    }

    #[test]
    fn dropped_runtime_cancels_pending_tasks() {
        let polled = Arc::new(AtomicUsize::new(0));
        let h = {
            let rt = rt(1);
            let polled_in_task = polled.clone();
            let h = rt.spawn(async move {
                polled_in_task.fetch_add(1, Ordering::SeqCst);
                // Never wakes: dropped at runtime shutdown.
                std::future::pending::<()>().await;
            });
            // Give the worker a chance to reach the pending await.
            while polled.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            h
            // Runtime dropped here; the in-flight future is dropped with it.
        };
        let err = rt(1).block_on(h).expect_err("task was cancelled");
        assert!(err.is_cancelled());
    }

    #[test]
    fn mpsc_bounded_backpressure_roundtrip() {
        let rt = rt(4);
        let total: u64 = rt.block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::channel::<u64>(2);
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    crate::spawn(async move {
                        for i in 0..50 {
                            tx.send(p * 100 + i).await.expect("receiver alive");
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut sum = 0;
            while let Some(v) = rx.recv().await {
                sum += v;
            }
            for p in producers {
                p.await.expect("producer finished");
            }
            sum
        });
        let expect: u64 = (0..4u64)
            .flat_map(|p| (0..50u64).map(move |i| p * 100 + i))
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn mpsc_recv_none_after_senders_drop() {
        let rt = rt(1);
        rt.block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::channel(8);
            tx.send(1).await.expect("receiver alive");
            drop(tx);
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn mpsc_try_send_full_and_closed() {
        use crate::sync::mpsc::TrySendError;
        let (tx, rx) = crate::sync::mpsc::channel(1);
        tx.try_send(1).expect("room for one");
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        drop(rx);
        assert!(tx.is_closed());
        assert_eq!(tx.try_send(3), Err(TrySendError::Closed(3)));
    }

    #[test]
    fn unbounded_channel_roundtrip() {
        let rt = rt(1);
        rt.block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::unbounded_channel();
            for i in 0..1000 {
                tx.send(i).expect("receiver alive");
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
        });
    }

    #[test]
    fn broadcast_every_receiver_sees_every_value() {
        let rt = rt(4);
        rt.block_on(async {
            let (tx, rx0) = crate::sync::broadcast::channel::<u32>(64);
            let readers: Vec<_> = std::iter::once(rx0)
                .chain((0..2).map(|_| tx.subscribe()))
                .map(|mut rx| {
                    crate::spawn(async move {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv().await {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..32 {
                tx.send(i).expect("receivers alive");
            }
            drop(tx);
            for r in readers {
                assert_eq!(
                    r.await.expect("reader finished"),
                    (0..32).collect::<Vec<_>>()
                );
            }
        });
    }

    #[test]
    fn broadcast_lagged_receiver_fast_forwards() {
        use crate::sync::broadcast::error::RecvError;
        let rt = rt(1);
        rt.block_on(async {
            let (tx, mut rx) = crate::sync::broadcast::channel::<u32>(4);
            for i in 0..10 {
                tx.send(i).expect("receiver alive");
            }
            assert_eq!(rx.recv().await, Err(RecvError::Lagged(6)));
            assert_eq!(rx.recv().await, Ok(6));
            drop(tx);
            assert_eq!(rx.recv().await, Ok(7));
            assert_eq!(rx.recv().await, Ok(8));
            assert_eq!(rx.recv().await, Ok(9));
            assert_eq!(rx.recv().await, Err(RecvError::Closed));
        });
    }

    #[test]
    fn broadcast_send_without_receivers_errors() {
        let (tx, rx) = crate::sync::broadcast::channel::<u32>(4);
        assert_eq!(tx.receiver_count(), 1);
        drop(rx);
        assert_eq!(tx.receiver_count(), 0);
        assert!(tx.send(1).is_err());
    }
}
