//! Thread-pool executor: [`Builder`], [`Runtime`], `block_on`.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};

/// Per-task run state. Transitions:
///
/// ```text
/// Idle --wake--> Queued --worker pops--> Running --Pending--> Idle
///                                        Running --wake--> Notified --Pending--> Queued
///                                        Running --Ready--> Done
/// ```
///
/// A wake during `Running` marks `Notified`; the worker re-queues the task
/// after the poll instead of dropping the notification on the floor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RunState {
    Idle,
    Queued,
    Running,
    Notified,
    Done,
}

/// One spawned task: the future plus its run state.
pub(crate) struct TaskCell {
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    state: Mutex<RunState>,
    shared: Weak<Shared>,
}

impl Wake for TaskCell {
    fn wake(self: Arc<Self>) {
        let Some(shared) = self.shared.upgrade() else {
            return; // Runtime already shut down.
        };
        let requeue = {
            let mut st = self.state.lock().unwrap();
            match *st {
                RunState::Idle => {
                    *st = RunState::Queued;
                    true
                }
                RunState::Running => {
                    *st = RunState::Notified;
                    false
                }
                RunState::Queued | RunState::Notified | RunState::Done => false,
            }
        };
        if requeue {
            shared.push(self.clone());
        }
    }
}

/// State shared between the runtime handle and its worker threads.
pub(crate) struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    ready: VecDeque<Arc<TaskCell>>,
    shutdown: bool,
}

impl Shared {
    fn push(&self, task: Arc<TaskCell>) {
        let mut q = self.queue.lock().unwrap();
        if q.shutdown {
            return; // Dropped: the runtime is going away.
        }
        q.ready.push_back(task);
        drop(q);
        self.cv.notify_one();
    }

    /// Pops the next ready task, blocking until one arrives or shutdown.
    fn pop(&self) -> Option<Arc<TaskCell>> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(t) = q.ready.pop_front() {
                return Some(t);
            }
            if q.shutdown {
                return None;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    pub(crate) fn spawn_dyn(self: &Arc<Self>, fut: Pin<Box<dyn Future<Output = ()> + Send>>) {
        let task = Arc::new(TaskCell {
            future: Mutex::new(Some(fut)),
            state: Mutex::new(RunState::Queued),
            shared: Arc::downgrade(self),
        });
        self.push(task);
    }
}

std::thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<Shared>>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with `shared` installed as the thread's current runtime.
fn with_current<R>(shared: &Arc<Shared>, f: impl FnOnce() -> R) -> R {
    struct Reset(Option<Arc<Shared>>);
    impl Drop for Reset {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(shared.clone()));
    let _reset = Reset(prev);
    f()
}

/// The current thread's runtime, for [`crate::task::spawn`].
pub(crate) fn current() -> Option<Arc<Shared>> {
    CURRENT.with(|c| c.borrow().clone())
}

fn worker_loop(shared: Arc<Shared>) {
    with_current(&shared.clone(), || {
        while let Some(task) = shared.pop() {
            // Take the future out of its slot for the poll; the state
            // machine (not this slot) guards against concurrent polls.
            let Some(mut fut) = task.future.lock().unwrap().take() else {
                continue;
            };
            *task.state.lock().unwrap() = RunState::Running;
            let waker = Waker::from(task.clone());
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    *task.state.lock().unwrap() = RunState::Done;
                }
                Poll::Pending => {
                    *task.future.lock().unwrap() = Some(fut);
                    let requeue = {
                        let mut st = task.state.lock().unwrap();
                        if *st == RunState::Notified {
                            *st = RunState::Queued;
                            true
                        } else {
                            *st = RunState::Idle;
                            false
                        }
                    };
                    if requeue {
                        shared.push(task);
                    }
                }
            }
        }
    });
}

/// Builds a [`Runtime`], mirroring tokio's builder surface.
pub struct Builder {
    workers: usize,
}

impl Builder {
    /// A thread-pool runtime (defaults to the machine's parallelism).
    pub fn new_multi_thread() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        Self { workers }
    }

    /// A minimal runtime: one worker thread services every spawned task.
    /// (Real tokio polls spawned tasks inside `block_on` on the caller
    /// thread; a dedicated worker has the same observable behavior for
    /// reactor-free futures.)
    pub fn new_current_thread() -> Self {
        Self { workers: 1 }
    }

    /// Number of worker threads.
    pub fn worker_threads(&mut self, n: usize) -> &mut Self {
        self.workers = n.max(1);
        self
    }

    /// Accepted for API compatibility; there is no IO/timer reactor to
    /// enable in the stand-in.
    pub fn enable_all(&mut self) -> &mut Self {
        self
    }

    /// Builds the runtime, starting its worker threads.
    ///
    /// # Errors
    ///
    /// Never fails in the stand-in; the `Result` mirrors tokio's signature.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                ready: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("tokio-worker-{i}"))
                    .spawn(move || worker_loop(sh))
                    .expect("spawn runtime worker")
            })
            .collect();
        Ok(Runtime { shared, workers })
    }
}

/// Wakes the `block_on` caller thread.
struct Parker {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl Wake for Parker {
    fn wake(self: Arc<Self>) {
        *self.ready.lock().unwrap() = true;
        self.cv.notify_one();
    }
}

/// A handle to the executor; dropping it shuts the workers down (pending
/// spawned tasks are dropped, as in tokio).
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Polls `fut` on the caller thread until completion, parking between
    /// polls. Tasks spawned from inside run on the pool.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        with_current(&self.shared, || {
            let mut fut = std::pin::pin!(fut);
            let parker = Arc::new(Parker {
                ready: Mutex::new(false),
                cv: Condvar::new(),
            });
            let waker = Waker::from(parker.clone());
            let mut cx = Context::from_waker(&waker);
            loop {
                if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
                    return out;
                }
                let mut ready = parker.ready.lock().unwrap();
                while !*ready {
                    ready = parker.cv.wait(ready).unwrap();
                }
                *ready = false;
            }
        })
    }

    /// Spawns a future onto the pool from outside async context.
    pub fn spawn<F>(&self, fut: F) -> crate::task::JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        crate::task::spawn_on(&self.shared, fut)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
            q.ready.clear(); // Drop pending tasks (their futures with them).
        }
        self.cv_notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Runtime {
    fn cv_notify_all(&self) {
        self.shared.cv.notify_all();
    }
}
