//! Multi-producer multi-consumer fan-out channel with a bounded ring
//! buffer. Every receiver sees every value sent after it subscribed; a
//! receiver that falls more than `cap` values behind observes
//! [`error::RecvError::Lagged`] and is fast-forwarded, like real tokio.

use std::collections::VecDeque;
use std::future::poll_fn;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

pub mod error {
    /// Error returned by [`super::Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvError {
        /// Every sender was dropped and the backlog is drained.
        Closed,
        /// The receiver fell behind; `n` values were skipped.
        Lagged(u64),
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Closed => write!(f, "channel closed"),
                Self::Lagged(n) => write!(f, "channel lagged by {n}"),
            }
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`super::Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No new value is available yet.
        Empty,
        /// Every sender was dropped and the backlog is drained.
        Closed,
        /// The receiver fell behind; `n` values were skipped.
        Lagged(u64),
    }

    /// Error returned by [`super::Sender::send`] when no receiver exists;
    /// carries the value back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "channel closed")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}
}

use error::{RecvError, SendError, TryRecvError};

struct RingState<T> {
    /// Retained values; the front has sequence number `head_seq`.
    buf: VecDeque<T>,
    /// Sequence number of `buf.front()`.
    head_seq: u64,
    /// Sequence number the next `send` will assign (`head_seq + buf.len()`).
    next_seq: u64,
    cap: usize,
    senders: usize,
    receivers: usize,
    rx_wakers: Vec<Waker>,
}

struct Ring<T> {
    state: Mutex<RingState<T>>,
}

/// Sending half; cloneable.
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.ring.state.lock().unwrap().senders += 1;
        Self {
            ring: self.ring.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let wakers = {
            let mut st = self.ring.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                std::mem::take(&mut st.rx_wakers)
            } else {
                Vec::new()
            }
        };
        for w in wakers {
            w.wake();
        }
    }
}

impl<T: Clone> Sender<T> {
    /// Broadcasts a value to all current receivers, returning how many
    /// there are.
    ///
    /// # Errors
    ///
    /// Returns the value back when no receiver exists.
    pub fn send(&self, value: T) -> Result<usize, SendError<T>> {
        let (n, wakers) = {
            let mut st = self.ring.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.buf.len() == st.cap {
                st.buf.pop_front();
                st.head_seq += 1;
            }
            st.buf.push_back(value);
            st.next_seq += 1;
            (st.receivers, std::mem::take(&mut st.rx_wakers))
        };
        for w in wakers {
            w.wake();
        }
        Ok(n)
    }
}

impl<T> Sender<T> {
    /// Creates a new receiver that sees values sent from now on.
    pub fn subscribe(&self) -> Receiver<T> {
        let mut st = self.ring.state.lock().unwrap();
        st.receivers += 1;
        let next = st.next_seq;
        drop(st);
        Receiver {
            ring: self.ring.clone(),
            next,
        }
    }

    /// Number of active receivers.
    pub fn receiver_count(&self) -> usize {
        self.ring.state.lock().unwrap().receivers
    }
}

/// Receiving half; each receiver independently sees every broadcast value.
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
    /// Sequence number of the next value this receiver will observe.
    next: u64,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.ring.state.lock().unwrap().receivers -= 1;
    }
}

impl<T: Clone> Receiver<T> {
    /// Receives the next broadcast value.
    ///
    /// # Errors
    ///
    /// `Closed` once every sender is dropped and the backlog is drained;
    /// `Lagged(n)` when this receiver fell behind by `n` values (its cursor
    /// is fast-forwarded to the oldest retained value).
    pub async fn recv(&mut self) -> Result<T, RecvError> {
        poll_fn(|cx| self.poll_step(Some(cx))).await
    }

    /// Receives without waiting.
    ///
    /// # Errors
    ///
    /// Like [`Self::recv`], plus `Empty` when no new value is available.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        match self.poll_step(None) {
            Poll::Ready(Ok(v)) => Ok(v),
            Poll::Ready(Err(RecvError::Closed)) => Err(TryRecvError::Closed),
            Poll::Ready(Err(RecvError::Lagged(n))) => Err(TryRecvError::Lagged(n)),
            Poll::Pending => Err(TryRecvError::Empty),
        }
    }

    fn poll_step(&mut self, cx: Option<&mut Context<'_>>) -> Poll<Result<T, RecvError>> {
        let mut st = self.ring.state.lock().unwrap();
        if self.next < st.head_seq {
            let missed = st.head_seq - self.next;
            self.next = st.head_seq;
            return Poll::Ready(Err(RecvError::Lagged(missed)));
        }
        if self.next < st.next_seq {
            let idx = usize::try_from(self.next - st.head_seq).expect("ring index fits usize");
            let v = st.buf[idx].clone();
            self.next += 1;
            return Poll::Ready(Ok(v));
        }
        if st.senders == 0 {
            return Poll::Ready(Err(RecvError::Closed));
        }
        if let Some(cx) = cx {
            st.rx_wakers.push(cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Creates a broadcast channel retaining at most `cap` undelivered values
/// per receiver.
///
/// # Panics
///
/// Panics when `cap` is 0, like tokio.
pub fn channel<T: Clone>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "broadcast channel requires capacity > 0");
    let ring = Arc::new(Ring {
        state: Mutex::new(RingState {
            buf: VecDeque::new(),
            head_seq: 0,
            next_seq: 0,
            cap,
            senders: 1,
            receivers: 1,
            rx_wakers: Vec::new(),
        }),
    });
    (Sender { ring: ring.clone() }, Receiver { ring, next: 0 })
}
