//! Bounded and unbounded multi-producer single-consumer async channels.

use std::collections::VecDeque;
use std::future::poll_fn;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Error returned by `send` when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by `try_send`.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity.
    Full(T),
    /// The receiver was dropped.
    Closed(T),
}

/// Error returned by `try_recv`.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    rx_alive: bool,
    rx_waker: Option<Waker>,
    tx_wakers: Vec<Waker>,
}

struct Chan<T> {
    state: Mutex<ChanState<T>>,
}

impl<T> Chan<T> {
    fn wake_rx(state: &mut ChanState<T>) -> Option<Waker> {
        state.rx_waker.take()
    }
}

/// Sending half; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().senders += 1;
        Self {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                Chan::wake_rx(&mut st)
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Sender<T> {
    /// Sends a value, waiting for capacity on a bounded channel.
    ///
    /// # Errors
    ///
    /// Returns the value back when the receiver has been dropped.
    pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut slot = Some(value);
        poll_fn(|cx| self.poll_send(cx, &mut slot)).await
    }

    fn poll_send(
        &self,
        cx: &mut Context<'_>,
        slot: &mut Option<T>,
    ) -> Poll<Result<(), SendError<T>>> {
        let waker = {
            let mut st = self.chan.state.lock().unwrap();
            if !st.rx_alive {
                let v = slot.take().expect("send polled after completion");
                return Poll::Ready(Err(SendError(v)));
            }
            if st.queue.len() < st.cap {
                let v = slot.take().expect("send polled after completion");
                st.queue.push_back(v);
                Chan::wake_rx(&mut st)
            } else {
                st.tx_wakers.push(cx.waker().clone());
                return Poll::Pending;
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
        Poll::Ready(Ok(()))
    }

    /// Sends without waiting.
    ///
    /// # Errors
    ///
    /// `Full` when the bounded queue is at capacity, `Closed` when the
    /// receiver is gone; both return the value.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let waker = {
            let mut st = self.chan.state.lock().unwrap();
            if !st.rx_alive {
                return Err(TrySendError::Closed(value));
            }
            if st.queue.len() >= st.cap {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            Chan::wake_rx(&mut st)
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }

    /// Whether the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.chan.state.lock().unwrap().rx_alive
    }
}

/// Receiving half.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let wakers = {
            let mut st = self.chan.state.lock().unwrap();
            st.rx_alive = false;
            std::mem::take(&mut st.tx_wakers)
        };
        for w in wakers {
            w.wake();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next value; `None` once every sender is dropped and the
    /// queue is drained.
    pub async fn recv(&mut self) -> Option<T> {
        poll_fn(|cx| self.poll_recv(cx)).await
    }

    /// Poll-level receive (what `recv` awaits).
    pub fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let (out, wakers) = {
            let mut st = self.chan.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => (Some(v), std::mem::take(&mut st.tx_wakers)),
                None if st.senders == 0 => return Poll::Ready(None),
                None => {
                    st.rx_waker = Some(cx.waker().clone());
                    return Poll::Pending;
                }
            }
        };
        for w in wakers {
            w.wake();
        }
        Poll::Ready(out)
    }

    /// Receives without waiting.
    ///
    /// # Errors
    ///
    /// `Empty` when nothing is queued, `Disconnected` when additionally no
    /// sender remains.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        let (out, wakers) = {
            let mut st = self.chan.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => (v, std::mem::take(&mut st.tx_wakers)),
                None if st.senders == 0 => return Err(TryRecvError::Disconnected),
                None => return Err(TryRecvError::Empty),
            }
        };
        for w in wakers {
            w.wake();
        }
        Ok(out)
    }

    /// Closes the channel: subsequent sends fail, queued values can still
    /// be received.
    pub fn close(&mut self) {
        let wakers = {
            let mut st = self.chan.state.lock().unwrap();
            st.rx_alive = false;
            std::mem::take(&mut st.tx_wakers)
        };
        for w in wakers {
            w.wake();
        }
    }
}

/// Creates a bounded channel.
///
/// # Panics
///
/// Panics when `cap` is 0, like tokio.
pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "mpsc bounded channel requires capacity > 0");
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            rx_alive: true,
            rx_waker: None,
            tx_wakers: Vec::new(),
        }),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Unbounded sending half; cloneable, sends never wait.
pub struct UnboundedSender<T>(Sender<T>);

impl<T> Clone for UnboundedSender<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> UnboundedSender<T> {
    /// Sends a value immediately.
    ///
    /// # Errors
    ///
    /// Returns the value back when the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.try_send(value).map_err(|e| match e {
            TrySendError::Closed(v) => SendError(v),
            TrySendError::Full(_) => unreachable!("unbounded channel is never full"),
        })
    }
}

/// Unbounded receiving half.
pub struct UnboundedReceiver<T>(Receiver<T>);

impl<T> UnboundedReceiver<T> {
    /// See [`Receiver::recv`].
    pub async fn recv(&mut self) -> Option<T> {
        self.0.recv().await
    }

    /// See [`Receiver::try_recv`].
    ///
    /// # Errors
    ///
    /// See [`Receiver::try_recv`].
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }
}

/// Creates an unbounded channel.
pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState {
            queue: VecDeque::new(),
            cap: usize::MAX,
            senders: 1,
            rx_alive: true,
            rx_waker: None,
            tx_wakers: Vec::new(),
        }),
    });
    (
        UnboundedSender(Sender { chan: chan.clone() }),
        UnboundedReceiver(Receiver { chan }),
    )
}
