//! Synchronization primitives: async [`mpsc`] and [`broadcast`] channels.

pub mod broadcast;
pub mod mpsc;
