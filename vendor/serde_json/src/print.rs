//! Compact and pretty JSON printers over `serde::Content`.

use serde::Content;

pub fn to_compact(c: &Content) -> String {
    let mut out = String::new();
    write_value(&mut out, c, None, 0);
    out
}

pub fn to_pretty(c: &Content) -> String {
    let mut out = String::new();
    write_value(&mut out, c, Some(2), 0);
    out
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_value(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; degrade to null like `Value::from(f64)`.
        out.push_str("null");
        return;
    }
    // Rust's Display gives the shortest string that round-trips, but elides
    // the decimal point for integral floats; keep it so the value re-parses
    // as a float.
    let s = v.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
