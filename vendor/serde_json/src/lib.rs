//! Offline stand-in for `serde_json`.
//!
//! Implements the JSON value model (`Value`, `Number`, `Map`), a strict
//! recursive-descent parser, compact and pretty printers, the `json!`
//! macro, and `to_string`/`to_string_pretty`/`from_str` over the vendored
//! `serde`'s tree data model. Numbers round-trip exactly: integers are kept
//! as integers and floats print via Rust's shortest-round-trip formatting
//! (the behavior upstream gates behind `float_roundtrip`).

// Stand-in code tracks upstream's API shape, not current clippy idiom.
#![allow(clippy::all)]

mod macros;
mod parse;
mod print;

use serde::Content;

/// A JSON number: integer or floating point.
#[derive(Debug, Clone, Copy)]
pub struct Number {
    n: N,
}

#[derive(Debug, Clone, Copy)]
enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    /// Creates a number from a float, rejecting non-finite values.
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number { n: N::F(v) })
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.n {
            N::I(v) => v as f64,
            N::U(v) => v as f64,
            N::F(v) => v,
        })
    }

    /// The value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::I(v) => Some(v),
            N::U(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    /// The value as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::I(v) => u64::try_from(v).ok(),
            N::U(v) => Some(v),
            N::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.n, other.n) {
            (N::I(a), N::I(b)) => a == b,
            (N::U(a), N::U(b)) => a == b,
            (N::I(a), N::U(b)) | (N::U(b), N::I(a)) => a >= 0 && a as u64 == b,
            (N::F(a), N::F(b)) => a == b,
            (N::F(f), N::I(i)) | (N::I(i), N::F(f)) => f == i as f64,
            (N::F(f), N::U(u)) | (N::U(u), N::F(f)) => f == u as f64,
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.n {
            N::I(v) => write!(f, "{v}"),
            N::U(v) => write!(f, "{v}"),
            N::F(v) => match f.precision() {
                Some(p) => write!(f, "{v:.p$}"),
                None => write!(f, "{v}"),
            },
        }
    }
}

macro_rules! number_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                let wide = v as i128;
                if let Ok(i) = i64::try_from(wide) {
                    Number { n: N::I(i) }
                } else {
                    Number { n: N::U(wide as u64) }
                }
            }
        }
    )*};
}

number_from_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// An ordered JSON object preserving insertion order.
///
/// Generic parameters exist only for signature compatibility with
/// `serde_json::Map<String, Value>`; all functionality targets string keys
/// and [`Value`] values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts a key-value pair, replacing and returning any previous value
    /// for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Returns the value for a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Returns a mutable reference to the value for a key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// `&str` view of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Object member write access, with `serde_json`'s auto-vivification:
    /// indexing `Null` turns it into an empty object first, and a missing
    /// key is inserted as `Null`.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        let Value::Object(map) = self else {
            panic!("cannot index a non-object value with a string key");
        };
        if !map.contains_key(key) {
            map.insert(key.to_string(), Value::Null);
        }
        map.get_mut(key).expect("key just inserted")
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            _ => panic!("cannot index a non-array value with a usize"),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&print::to_compact(&value_to_content(self)))
    }
}

// --- conversions into Value ------------------------------------------------

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::from(v))
            }
        }
    )*};
}

value_from_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map_or(Value::Null, Value::Number)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

// --- equality against plain Rust values ------------------------------------

macro_rules! value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::from(*other))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

// --- bridge to the serde tree ----------------------------------------------

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(n) => match n.n {
            N::I(i) => Content::I64(i),
            N::U(u) => Content::U64(u),
            N::F(f) => Content::F64(f),
        },
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => Content::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::I64(i) => Value::Number(Number { n: N::I(*i) }),
        Content::U64(u) => Value::Number(Number { n: N::U(*u) }),
        Content::F64(f) => Value::Number(Number { n: N::F(*f) }),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

impl serde::Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl serde::Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, serde::DeError> {
        Ok(content_to_value(content))
    }
}

impl serde::Serialize for Map<String, Value> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        )
    }
}

// --- errors and entry points ------------------------------------------------

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::to_compact(&value.to_content()))
}

/// Serializes a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::to_pretty(&value.to_content()))
}

/// Converts any serializable value into a [`Value`] tree. Never fails for
/// the tree data model; the `Result` matches the upstream signature.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(content_to_value(&value.to_content()))
}

/// Parses a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse::parse(s)?;
    T::from_content(&content).map_err(|e| Error::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v: Value = json!({
            "name": "run",
            "count": 3,
            "ratio": 0.25,
            "flags": [true, false, null],
            "nested": {"a": 1, "b": [1.5, -2]},
        });
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_accepts_expressions() {
        let label = format!("s{}", 1);
        let xs = vec![1.0f64, 2.0];
        let v = json!({"label": label, "xs": xs, "sum": 1.0 + 2.0});
        assert_eq!(v["label"], "s1");
        assert_eq!(v["xs"][1], 2.0);
        assert_eq!(v["sum"], 3.0);
    }

    #[test]
    fn indexing_missing_yields_null() {
        let v = json!({"a": 1});
        assert!(v["b"].is_null());
        assert!(v["a"][4].is_null());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 12345.678901234567, -0.0] {
            let s = to_string(&Value::from(x)).unwrap();
            let back: Value = from_str(&s).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1F600}\u{0007}";
        let v = Value::from(s);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("k".into(), json!(1)).is_none());
        assert_eq!(m.insert("k".into(), json!(2)), Some(json!(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&json!(2)));
    }
}
