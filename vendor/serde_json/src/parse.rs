//! Strict recursive-descent JSON parser producing `serde::Content`.

use crate::Error;
use serde::Content;

pub fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Content)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            match entries.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v = value,
                None => entries.push((key, value)),
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired low one.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 advanced past the digits; skip the +1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digit"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}
