//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled token parsing (no `syn`/`quote`, which are unavailable in
//! this offline build environment) covering the shapes this workspace
//! derives on: named-field structs, tuple structs, and enums with unit
//! variants. Generated impls target the tree-based `Serialize`/`Deserialize`
//! traits of the vendored `serde` and reproduce upstream's JSON mapping
//! (structs as objects, newtype structs transparent, unit variants as
//! strings).

// Stand-in code tracks upstream's API shape, not current clippy idiom.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T, ...)` — field count.
    Tuple(usize),
    /// `enum E { A, B }` — variant names.
    UnitEnum(Vec<String>),
}

/// Derives tree-based `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "::serde::Content::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives tree-based `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match content.get_field(\"{f}\") {{\n\
                            ::std::option::Option::Some(v) => \
                                ::serde::Deserialize::from_content(v)?,\n\
                            ::std::option::Option::None => \
                                ::serde::Deserialize::missing_field(\"{f}\")?,\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "match content {{\n\
                    ::serde::Content::Map(_) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                    other => ::std::result::Result::Err(::serde::DeError::custom(\
                        ::std::format!(\"expected map for {name}, got {{other:?}}\"))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "match content {{\n\
                    ::serde::Content::Seq(items) if items.len() == {n} => \
                        ::std::result::Result::Ok({name}({})),\n\
                    other => ::std::result::Result::Err(::serde::DeError::custom(\
                        ::std::format!(\"expected {n}-element array for {name}, \
                         got {{other:?}}\"))),\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "match content {{\n\
                    ::serde::Content::Str(s) => match s.as_str() {{\n\
                        {},\n\
                        other => ::std::result::Result::Err(::serde::DeError::custom(\
                            ::std::format!(\"unknown variant {{other}} for {name}\"))),\n\
                    }},\n\
                    other => ::std::result::Result::Err(::serde::DeError::custom(\
                        ::std::format!(\"expected string for {name}, got {{other:?}}\"))),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_content(content: &::serde::Content) \
                -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// Parses a derive input item into its name and shape.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(crate)`, ...).
    let keyword = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => break id.to_string(),
            other => panic!("serde derive: unexpected token {other:?}"),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde derive stand-in: generic types are not supported");
        }
    }

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde derive: expected item body, got {other:?}"),
    };

    match (keyword.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => (name, Shape::Named(parse_named_fields(body.stream()))),
        ("struct", Delimiter::Parenthesis) => {
            (name, Shape::Tuple(count_tuple_fields(body.stream())))
        }
        ("enum", Delimiter::Brace) => (name, Shape::UnitEnum(parse_unit_variants(body.stream()))),
        (kw, _) => panic!("serde derive stand-in: unsupported item `{kw}`"),
    }
}

/// Extracts field names from a named-struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde derive: unexpected field token {other:?}"),
            }
        };
        fields.push(field);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
            }
        }
    }
}

/// Counts the fields of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut in_field = false;
    let mut depth = 0i32;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    count += 1;
                    in_field = true;
                }
            }
        }
    }
    count
}

/// Extracts variant names from an enum body, rejecting data-carrying
/// variants (not needed by this workspace).
fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        match tokens.next() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Ident(id)) => {
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    panic!("serde derive stand-in: only unit enum variants are supported");
                }
                variants.push(id.to_string());
            }
            Some(other) => panic!("serde derive: unexpected enum token {other:?}"),
        }
    }
}
