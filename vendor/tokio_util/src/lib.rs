//! Offline stand-in for [tokio-util](https://docs.rs/tokio-util)
//! implementing the API subset the workspace uses (no crates.io access in
//! this build environment; see the workspace `Cargo.toml`).
//!
//! Provides [`sync::CancellationToken`] with `cancel`, `cancelled`,
//! `child_token`, and `run_until_cancelled` — the structured-shutdown
//! surface the serve crate relies on in place of `tokio::select!`.

pub mod sync;

#[cfg(test)]
mod tests {
    use crate::sync::CancellationToken;

    fn rt() -> tokio::runtime::Runtime {
        tokio::runtime::Builder::new_multi_thread()
            .worker_threads(2)
            .build()
            .expect("build runtime")
    }

    #[test]
    fn cancel_wakes_waiters() {
        let rt = rt();
        rt.block_on(async {
            let token = CancellationToken::new();
            let t2 = token.clone();
            let waiter = tokio::spawn(async move {
                t2.cancelled().await;
                "woke"
            });
            assert!(!token.is_cancelled());
            token.cancel();
            assert!(token.is_cancelled());
            assert_eq!(waiter.await.expect("waiter finished"), "woke");
        });
    }

    #[test]
    fn child_cancelled_by_parent_not_vice_versa() {
        let parent = CancellationToken::new();
        let child = parent.child_token();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());

        let parent = CancellationToken::new();
        let child = parent.child_token();
        parent.cancel();
        assert!(child.is_cancelled());

        // Child minted after the parent cancelled starts cancelled.
        assert!(parent.child_token().is_cancelled());
    }

    #[test]
    fn run_until_cancelled_prefers_completion() {
        let rt = rt();
        rt.block_on(async {
            let token = CancellationToken::new();
            assert_eq!(token.run_until_cancelled(async { 7 }).await, Some(7));
            token.cancel();
            let out = token
                .run_until_cancelled(std::future::pending::<u32>())
                .await;
            assert_eq!(out, None);
        });
    }

    #[test]
    fn run_until_cancelled_interrupts_blocked_recv() {
        let rt = rt();
        rt.block_on(async {
            let token = CancellationToken::new();
            let (tx, mut rx) = tokio::sync::mpsc::channel::<u32>(1);
            let t2 = token.clone();
            let worker = tokio::spawn(async move {
                let mut seen = Vec::new();
                while let Some(Some(v)) = t2.run_until_cancelled(rx.recv()).await {
                    seen.push(v);
                }
                seen
            });
            tx.send(5).await.expect("receiver alive");
            // Worker is (or will be) parked in recv; cancellation must
            // unblock it without another send.
            token.cancel();
            let seen = worker.await.expect("worker finished");
            assert!(seen.len() <= 1, "at most the one queued value: {seen:?}");
            drop(tx);
        });
    }
}
