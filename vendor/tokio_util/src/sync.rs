//! [`CancellationToken`]: cooperative, hierarchical cancellation.

use std::future::{poll_fn, Future};
use std::pin::pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

#[derive(Default)]
struct TokenState {
    cancelled: bool,
    wakers: Vec<Waker>,
    children: Vec<Arc<Mutex<TokenState>>>,
}

fn cancel_state(state: &Arc<Mutex<TokenState>>) {
    let (wakers, children) = {
        let mut st = state.lock().unwrap();
        if st.cancelled {
            return;
        }
        st.cancelled = true;
        (
            std::mem::take(&mut st.wakers),
            std::mem::take(&mut st.children),
        )
    };
    for w in wakers {
        w.wake();
    }
    for child in children {
        cancel_state(&child);
    }
}

/// A token for signalling cancellation to any number of holders.
/// Cloning shares the same state; [`Self::child_token`] creates a token
/// cancelled with (but not cancelling) its parent.
#[derive(Clone, Default)]
pub struct CancellationToken {
    state: Arc<Mutex<TokenState>>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancels this token, every clone, and every child token.
    pub fn cancel(&self) {
        cancel_state(&self.state);
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.state.lock().unwrap().cancelled
    }

    /// A token that is cancelled when `self` is, but whose own `cancel`
    /// does not affect `self`.
    pub fn child_token(&self) -> Self {
        let child = Self::new();
        {
            let mut st = self.state.lock().unwrap();
            if st.cancelled {
                child.state.lock().unwrap().cancelled = true;
            } else {
                st.children.push(child.state.clone());
            }
        }
        child
    }

    /// Resolves once the token is cancelled.
    pub async fn cancelled(&self) {
        poll_fn(|cx| self.poll_cancelled(cx)).await;
    }

    fn poll_cancelled(&self, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.state.lock().unwrap();
        if st.cancelled {
            Poll::Ready(())
        } else {
            st.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }

    /// Runs `fut` until it completes or the token is cancelled, whichever
    /// comes first; `None` means cancellation won. This is the stand-in's
    /// replacement for `tokio::select!` over `token.cancelled()`.
    pub async fn run_until_cancelled<F: Future>(&self, fut: F) -> Option<F::Output> {
        let mut fut = pin!(fut);
        poll_fn(|cx| {
            if let Poll::Ready(out) = fut.as_mut().poll(cx) {
                return Poll::Ready(Some(out));
            }
            match self.poll_cancelled(cx) {
                Poll::Ready(()) => Poll::Ready(None),
                Poll::Pending => Poll::Pending,
            }
        })
        .await
    }
}
