//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Upstream `rand`'s `StdRng` is ChaCha12; this stand-in trades the exact
/// stream for a dependency-free implementation with the same interface and
/// the same determinism guarantee (identical seed, identical stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        out
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        StdRng { s }
    }
}
