//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the small slice of `rand` it actually uses: a
//! seedable deterministic generator (`StdRng`, here xoshiro256++ seeded via
//! SplitMix64 rather than ChaCha12), the `Rng`/`RngCore`/`SeedableRng`
//! traits, and uniform range sampling. Streams differ from upstream `rand`,
//! but every generator is fully deterministic for a given seed, which is the
//! property the simulation relies on.

// Stand-in code tracks upstream's API shape, not current clippy idiom.
#![allow(clippy::all)]

pub mod distributions;
pub mod rngs;

pub use distributions::Distribution;

/// Core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type has a standard uniform distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
    {
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&y));
            let z = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&z));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
