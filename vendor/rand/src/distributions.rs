//! The `Standard` distribution and uniform range sampling.

use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<'a, T, D: Distribution<T> + ?Sized> Distribution<T> for &'a D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The standard uniform distribution (`rng.gen()`).
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Range sampling for `Rng::gen_range`.

    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let v = rng.next_u64() as u128 % width;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let v = rng.next_u64() as u128 % width;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + (self.end - self.start) * u as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    lo + (hi - lo) * u as $t
                }
            }
        )*};
    }

    float_range!(f32, f64);
}
