//! Offline stand-in for `serde`.
//!
//! Upstream serde streams values through visitor-based serializers; this
//! stand-in instead converts values to and from a small in-memory tree
//! ([`Content`]), which is all the workspace needs (its only format is JSON
//! via the vendored `serde_json`). The `#[derive(Serialize, Deserialize)]`
//! macros from the vendored `serde_derive` target these traits with the same
//! JSON mapping upstream derive produces: structs as objects with fields in
//! declaration order, newtype structs as their inner value, unit enum
//! variants as strings.

// Stand-in code tracks upstream's API shape, not current clippy idiom.
#![allow(clippy::all)]

// Let the derive macro's generated `::serde::` paths resolve inside this
// crate's own tests (the same trick upstream serde uses).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// In-memory serialization tree: the common denominator between Rust values
/// and the wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when a value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered map with string keys (field declaration order for structs).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a `Map`.
    pub fn get_field(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A value that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` to its serialization tree.
    fn to_content(&self) -> Content;
}

/// A value that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value from its serialization tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the input. `Option` treats
    /// a missing field as `None` (matching upstream derive); everything else
    /// errors.
    fn missing_field(field: &'static str) -> Result<Self, DeError> {
        Err(DeError::custom(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Content::I64(v as i64)
                } else {
                    Content::U64(v)
                }
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let out = match content {
                    Content::I64(v) => <$t>::try_from(*v).ok(),
                    Content::U64(v) => <$t>::try_from(*v).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    DeError::custom(format!(
                        "expected {}, got {content:?}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn missing_field(_field: &'static str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(DeError::custom(format!(
                "expected 2-element array, got {other:?}"
            ))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 3 => Ok((
                A::from_content(&items[0])?,
                B::from_content(&items[1])?,
                C::from_content(&items[2])?,
            )),
            other => Err(DeError::custom(format!(
                "expected 3-element array, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(
            f64::from_content(&1.5f64.to_content()).unwrap().to_bits(),
            1.5f64.to_bits()
        );
        assert_eq!(
            String::from_content(&"hi".to_content()).unwrap(),
            "hi".to_string()
        );
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_content(&v.to_content()).unwrap(), v);
    }

    #[test]
    fn option_handles_null_and_missing() {
        assert_eq!(
            Option::<u32>::from_content(&Content::Null).unwrap(),
            None::<u32>
        );
        assert_eq!(Option::<u32>::missing_field("x").unwrap(), None::<u32>);
        assert!(u32::missing_field("x").is_err());
    }

    #[test]
    fn derive_round_trips_struct_enum_and_newtype() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Inner(usize);

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Kind {
            Alpha,
            Beta,
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Outer {
            id: Inner,
            kind: Kind,
            weights: Option<Vec<f64>>,
            name: String,
        }

        let x = Outer {
            id: Inner(7),
            kind: Kind::Beta,
            weights: Some(vec![0.5, 0.5]),
            name: "q".into(),
        };
        let tree = x.to_content();
        // Newtype structs serialize transparently.
        assert_eq!(tree.get_field("id"), Some(&Content::I64(7)));
        // Unit variants serialize as strings.
        assert_eq!(tree.get_field("kind"), Some(&Content::Str("Beta".into())));
        assert_eq!(Outer::from_content(&tree).unwrap(), x);
    }
}
