//! Criterion benches for the simplex substrate: the Fig 4 map/reduce LPs
//! and a 50-site map placement (the largest LP Tetrium solves per stage).

use criterion::{criterion_group, criterion_main, Criterion};
use tetrium_core::{solve_map_placement, solve_reduce_placement, MapProblem, ReduceProblem};

fn fig4_map() -> MapProblem {
    MapProblem {
        input_gb: vec![20.0, 30.0, 50.0],
        tasks_from: vec![200, 300, 500],
        task_secs: 2.0,
        up_gbps: vec![5.0, 1.0, 2.0],
        down_gbps: vec![5.0, 1.0, 5.0],
        slots: vec![40, 10, 20],
        wan_budget_gb: None,
        forced_dest_gb: None,
        next_stage_ratio: Some(0.5),
        dest_limit: None,
    }
}

fn big_map(n: usize) -> MapProblem {
    MapProblem {
        input_gb: (0..n).map(|i| 1.0 + (i % 7) as f64).collect(),
        tasks_from: (0..n).map(|i| 10 + (i * 13) % 40).collect(),
        task_secs: 2.0,
        up_gbps: (0..n).map(|i| 0.0125 + 0.01 * (i % 11) as f64).collect(),
        down_gbps: (0..n)
            .map(|i| 0.0125 + 0.01 * ((i + 3) % 11) as f64)
            .collect(),
        slots: (0..n).map(|i| 25 + (i * 97) % 1000).collect(),
        wan_budget_gb: None,
        forced_dest_gb: None,
        next_stage_ratio: Some(0.5),
        dest_limit: Some(12),
    }
}

fn big_reduce(n: usize) -> ReduceProblem {
    ReduceProblem {
        shuffle_gb: (0..n).map(|i| 0.5 + (i % 5) as f64).collect(),
        num_tasks: 500,
        task_secs: 1.0,
        up_gbps: (0..n).map(|i| 0.0125 + 0.01 * (i % 11) as f64).collect(),
        down_gbps: (0..n)
            .map(|i| 0.0125 + 0.01 * ((i + 3) % 11) as f64)
            .collect(),
        slots: (0..n).map(|i| 25 + (i * 97) % 1000).collect(),
        wan_budget_gb: None,
        network_only: false,
        next_stage_out_gb: Some(10.0),
    }
}

fn bench_lps(c: &mut Criterion) {
    c.bench_function("map_lp_3_sites_fig4", |b| {
        let p = fig4_map();
        b.iter(|| solve_map_placement(&p).unwrap())
    });
    c.bench_function("map_lp_50_sites", |b| {
        let p = big_map(50);
        b.iter(|| solve_map_placement(&p).unwrap())
    });
    c.bench_function("reduce_lp_50_sites", |b| {
        let p = big_reduce(50);
        b.iter(|| solve_reduce_placement(&p).unwrap())
    });
}

criterion_group!(benches, bench_lps);
criterion_main!(benches);
