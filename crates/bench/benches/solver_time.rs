//! Criterion bench pinning per-instance LP solve latency: the sparse
//! revised simplex (`Problem::solve`) against the retained dense tableau
//! (`Problem::solve_dense`) on the same 100-site map-placement-shaped
//! instance. The `perf_snapshot` binary times this instance too and gates
//! the sparse/dense speedup at ≥5x.

use criterion::{criterion_group, criterion_main, Criterion};
use tetrium_bench::map_like_lp;

fn bench_solver(c: &mut Criterion) {
    let lp = map_like_lp(100);
    c.bench_function("solver_sparse_100_sites", |b| {
        b.iter(|| lp.solve().unwrap())
    });
    let mut dense = c.benchmark_group("dense_oracle");
    dense.sample_size(10);
    dense.bench_function("solver_dense_100_sites", |b| {
        b.iter(|| lp.solve_dense().unwrap())
    });
    dense.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
