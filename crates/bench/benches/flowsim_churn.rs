//! Criterion bench for the WAN flow simulator's churn path: bursts of
//! shuffle fan-out, completion-driven removals and capacity movement over
//! 30 sites, isolating incremental rate recomputation from the rest of the
//! engine. The committed number lives in `benchmarks/perf_baseline.json`
//! (regenerate with the `perf_snapshot` binary).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tetrium_bench::churn::run_flowsim_churn;

fn bench_flowsim_churn(c: &mut Criterion) {
    let events = run_flowsim_churn(30, 2_000, 7);
    let mut group = c.benchmark_group("flowsim_churn");
    group.sample_size(20);
    group.throughput(Throughput::Elements(events as u64));
    group.bench_function("churn_30_sites", |b| {
        b.iter(|| run_flowsim_churn(30, 2_000, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_flowsim_churn);
criterion_main!(benches);
