//! Criterion bench for the full scheduling decision (Fig 7's quantity):
//! one cold `schedule()` pass over 50 sites at varying job counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tetrium_bench::figs::fig7::snapshot;
use tetrium_core::TetriumScheduler;
use tetrium_sim::Scheduler;

fn bench_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_decision");
    group.sample_size(10);
    for n_jobs in [25usize, 50, 100] {
        let snap = snapshot(n_jobs, 100);
        group.bench_with_input(BenchmarkId::from_parameter(n_jobs), &snap, |b, snap| {
            b.iter(|| {
                let mut sched = TetriumScheduler::standard();
                sched.schedule(snap)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
