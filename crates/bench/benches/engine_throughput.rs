//! Criterion bench for raw engine throughput: tasks simulated per second
//! on a 30-site trace workload (the hot path the de-allocation work in
//! `tetrium-sim` targets). The committed baseline lives in
//! `benchmarks/perf_baseline.json`; regenerate it with the
//! `perf_snapshot` binary after intentional engine changes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::ec2_thirty_instances;
use tetrium::{run_workload, SchedulerKind};
use tetrium_jobs::Job;
use tetrium_sim::EngineConfig;
use tetrium_workload::{trace_like_jobs, TraceParams};

/// The 30-site workload the throughput numbers are quoted against.
fn workload() -> (tetrium_cluster::Cluster, Vec<Job>) {
    let cluster = ec2_thirty_instances();
    let params = TraceParams {
        median_input_gb: 10.0,
        mean_interarrival_secs: 30.0,
        mean_task_secs: 5.0,
        tasks_per_gb: 4.0,
        max_tasks: 150,
        ..TraceParams::default()
    };
    let mut rng = StdRng::seed_from_u64(30);
    let jobs = trace_like_jobs(&cluster, 8, &params, &mut rng);
    (cluster, jobs)
}

fn bench_engine_throughput(c: &mut Criterion) {
    let (cluster, jobs) = workload();
    let total_tasks: usize = jobs.iter().map(|j| j.total_tasks()).sum();
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_tasks as u64));
    group.bench_function("tetrium_30_sites", |b| {
        b.iter(|| {
            run_workload(
                cluster.clone(),
                jobs.clone(),
                SchedulerKind::Tetrium,
                EngineConfig::trace_like(30),
            )
            .expect("completes")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
