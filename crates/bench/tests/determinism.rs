//! The parallel runner's determinism contract: the same cell grid run on
//! one worker and on four produces byte-identical formatted output (see
//! DESIGN.md — everything simulation-derived is covered; only measured
//! wall-clock values, like Fig 7's decision times, are excluded).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::{run_workload, run_workload_dynamic, SchedulerKind};
use tetrium_bench::runner::CellFn;
use tetrium_bench::{cell, run_cells_with, thread_count, Cell};
use tetrium_cluster::{Cluster, DynamicsChange, DynamicsEvent, DynamicsTimeline, Site, SiteId};
use tetrium_sim::EngineConfig;
use tetrium_workload::{trace_like_jobs, TraceParams};

fn small_cluster() -> Cluster {
    Cluster::new(
        (0..4)
            .map(|i| Site::new(format!("s{i}"), 6 + i, 0.5, 0.5))
            .collect(),
    )
}

/// Runs a small scheduler × seed grid and renders it the way a figure
/// would: fixed-width rows in cell order.
fn render_grid(threads: usize) -> String {
    let cluster = small_cluster();
    let params = TraceParams {
        median_input_gb: 2.0,
        mean_interarrival_secs: 10.0,
        mean_task_secs: 1.0,
        tasks_per_gb: 2.0,
        max_tasks: 20,
        ..TraceParams::default()
    };
    let workloads: Vec<(u64, Vec<tetrium_jobs::Job>)> = [2u64, 3]
        .into_iter()
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (seed, trace_like_jobs(&cluster, 4, &params, &mut rng))
        })
        .collect();

    let mut grid: Vec<(Cell, CellFn<'_, _>)> = Vec::new();
    for (seed, jobs) in &workloads {
        for (name, kind) in [
            ("tetrium", SchedulerKind::Tetrium),
            ("in-place", SchedulerKind::InPlace),
            ("iridium", SchedulerKind::Iridium),
        ] {
            grid.push(cell(Cell::new("det-test", name, "mini-trace", *seed), {
                let cluster = &cluster;
                move || {
                    let mut cfg = EngineConfig::trace_like(*seed);
                    cfg.record_obs = true;
                    let r =
                        run_workload(cluster.clone(), jobs.clone(), kind, cfg).expect("completes");
                    // Obs records are part of the determinism contract
                    // (DESIGN.md §8): serialize them into the rendered row
                    // so any thread-count-dependent divergence fails the
                    // byte-identity assertion below.
                    let obs =
                        serde_json::to_string(&r.obs.as_ref().unwrap().to_json(false)).unwrap();
                    // The OTel span export is part of the same contract: its
                    // ids and timestamps derive only from simulation state,
                    // so the rendered document must be byte-identical too.
                    let otel = tetrium::obs::to_otel_string(
                        r.obs.as_ref().unwrap(),
                        &format!("det/{name}/seed-{seed}"),
                    );
                    format!(
                        "{name:<10} seed={seed} avg={:.6} wan={:.6} obs={obs} otel={otel}",
                        r.avg_response(),
                        r.total_wan_gb
                    )
                }
            }));
        }
    }
    let mut out = String::new();
    for line in run_cells_with(threads, grid) {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Same contract with an active [`DynamicsTimeline`]: a capacity drop plus
/// an outage-with-recovery exercise the failure/retry path, whose obs
/// records (failures, refunds, re-placements) must also be byte-identical
/// across worker counts.
fn render_dynamic_grid(threads: usize) -> String {
    let cluster = small_cluster();
    let params = TraceParams {
        median_input_gb: 2.0,
        mean_interarrival_secs: 10.0,
        mean_task_secs: 1.0,
        tasks_per_gb: 2.0,
        max_tasks: 20,
        ..TraceParams::default()
    };
    let timeline = DynamicsTimeline::new(vec![
        DynamicsEvent::new(SiteId(3), 8.0, DynamicsChange::Capacity { keep: 0.5 }),
        DynamicsEvent::new(SiteId(0), 12.0, DynamicsChange::Outage),
        DynamicsEvent::new(SiteId(0), 25.0, DynamicsChange::Recover),
    ]);
    let workloads: Vec<(u64, Vec<tetrium_jobs::Job>)> = [2u64, 3]
        .into_iter()
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (seed, trace_like_jobs(&cluster, 4, &params, &mut rng))
        })
        .collect();

    let mut grid: Vec<(Cell, CellFn<'_, _>)> = Vec::new();
    for (seed, jobs) in &workloads {
        for (name, kind) in [
            ("tetrium", SchedulerKind::Tetrium),
            ("in-place", SchedulerKind::InPlace),
            ("iridium", SchedulerKind::Iridium),
        ] {
            grid.push(cell(Cell::new("det-dyn", name, "mini-dynamics", *seed), {
                let cluster = &cluster;
                let timeline = timeline.clone();
                move || {
                    let mut cfg = EngineConfig::trace_like(*seed);
                    cfg.record_obs = true;
                    let r =
                        run_workload_dynamic(cluster.clone(), jobs.clone(), kind, cfg, timeline)
                            .expect("completes");
                    let obs =
                        serde_json::to_string(&r.obs.as_ref().unwrap().to_json(false)).unwrap();
                    format!(
                        "{name:<10} seed={seed} avg={:.6} wan={:.6} dyn={} fail={} obs={obs}",
                        r.avg_response(),
                        r.total_wan_gb,
                        r.dynamics_events,
                        r.task_failures,
                    )
                }
            }));
        }
    }
    let mut out = String::new();
    for line in run_cells_with(threads, grid) {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[test]
fn one_and_four_workers_render_identical_output() {
    let sequential = render_grid(1);
    let parallel = render_grid(4);
    assert!(
        sequential.lines().count() >= 6,
        "grid should produce one row per cell"
    );
    assert_eq!(
        sequential, parallel,
        "output must not depend on thread count"
    );
}

#[test]
fn dynamics_grid_renders_identical_output_across_worker_counts() {
    let sequential = render_dynamic_grid(1);
    let parallel = render_dynamic_grid(4);
    assert!(
        sequential.lines().count() >= 6,
        "grid should produce one row per cell"
    );
    // The timeline must actually have fired in every cell, otherwise this
    // is just the static grid again.
    for line in sequential.lines() {
        assert!(line.contains("dyn=3"), "timeline not applied: {line}");
    }
    assert_eq!(
        sequential, parallel,
        "dynamics-active output must not depend on thread count"
    );
}

#[test]
fn tetrium_threads_env_var_controls_worker_count() {
    // Process-global env: this is the only test in the workspace that sets
    // TETRIUM_THREADS.
    std::env::set_var("TETRIUM_THREADS", "3");
    assert_eq!(thread_count(), 3);
    std::env::set_var("TETRIUM_THREADS", "0");
    assert_eq!(thread_count(), 1, "floor at one worker");
    std::env::set_var("TETRIUM_THREADS", "not-a-number");
    assert_eq!(thread_count(), 1, "garbage falls back to sequential");
    std::env::remove_var("TETRIUM_THREADS");
    assert!(thread_count() >= 1);
}
