//! Fig-11-style acceptance check for the mid-run dynamics subsystem: when
//! the most capable site loses half its capacity mid-run, the adaptive
//! scheduler (Tetrium) must degrade strictly less than the static
//! placements (In-Place, Centralized), and the sweep itself must be
//! byte-deterministic across worker counts.
//!
//! Runs a debug-friendly scale (8 sites, a handful of jobs) through the
//! same `sweep` core the full-scale `resilience` binary uses.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::{Cluster, DynamicsTimeline, Site};
use tetrium_bench::figs::resilience::{half_drop_at_biggest_site, sweep, ResilienceRow};
use tetrium_jobs::Job;
use tetrium_workload::{trace_like_jobs, TraceParams};

/// Compute-bound, well-connected sites so the slot drop — not the WAN — is
/// the binding resource: one big site carrying over half the slots, three
/// small ones, uniform input.
fn setup() -> (Cluster, Vec<Job>, DynamicsTimeline) {
    let mut sites = vec![Site::new("big", 16, 1.0, 1.0)];
    for i in 0..3 {
        sites.push(Site::new(format!("s{i}"), 4, 1.0, 1.0));
    }
    let cluster = Cluster::new(sites);
    let params = TraceParams {
        mean_interarrival_secs: 0.0,
        median_input_gb: 2.0,
        input_skew_exponent: (0.0, 0.0),
        output_ratio: (0.2, 0.5),
        early_growth_prob: 0.0,
        key_skew_prob: 0.0,
        key_skew_severity: 1.0,
        stages: (2, 3),
        mean_task_secs: 5.0,
        tasks_per_gb: 4.0,
        max_tasks: 60,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let jobs = trace_like_jobs(&cluster, 5, &params, &mut rng);
    let timeline = half_drop_at_biggest_site(&cluster, 10.0);
    (cluster, jobs, timeline)
}

fn render(rows: &[ResilienceRow]) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "{} clean={} degraded={} pct={}\n",
                r.scheduler,
                r.clean_avg.to_bits(),
                r.degraded_avg.to_bits(),
                r.degradation_pct()
            )
        })
        .collect()
}

#[test]
fn tetrium_degrades_least_under_mid_run_drop() {
    let (cluster, jobs, timeline) = setup();
    let rows = sweep(2, &cluster, &jobs, &timeline, 11);
    for r in &rows {
        eprintln!(
            "{:<13} clean={:.2} degraded={:.2} pct={:.2}",
            r.scheduler,
            r.clean_avg,
            r.degraded_avg,
            r.degradation_pct()
        );
    }
    let pct = |name: &str| {
        rows.iter()
            .find(|r| r.scheduler == name)
            .unwrap()
            .degradation_pct()
    };
    let degraded = |name: &str| {
        rows.iter()
            .find(|r| r.scheduler == name)
            .unwrap()
            .degraded_avg
    };
    let (tet, cen) = (pct("tetrium"), pct("centralized"));
    assert!(
        tet < cen,
        "tetrium degradation {tet:.2}% not below centralized {cen:.2}%"
    );
    // Relative degradation is a noisy yardstick against In-Place: its clean
    // baseline is already slot-starved, so the drop often costs it little
    // (even negative pct on some traces). The load-bearing claim is
    // absolute: under the drop the adaptive scheduler still delivers the
    // best average response.
    let (dt, di, dc) = (
        degraded("tetrium"),
        degraded("in-place"),
        degraded("centralized"),
    );
    assert!(
        dt < di && dt < dc,
        "tetrium degraded avg {dt:.2} not best (in-place {di:.2}, centralized {dc:.2})"
    );
}

#[test]
fn sweep_is_byte_identical_across_worker_counts() {
    let (cluster, jobs, timeline) = setup();
    let one = render(&sweep(1, &cluster, &jobs, &timeline, 11));
    let four = render(&sweep(4, &cluster, &jobs, &timeline, 11));
    assert_eq!(one, four, "sweep output differs across worker counts");
}
