//! Deterministic flow-churn workload driving [`FlowSim`] directly — the
//! micro-benchmark behind `benches/flowsim_churn.rs` and the
//! `flowsim_churn` entry of `perf_snapshot`.
//!
//! The pattern mirrors what the engine does to the simulator on the 30-site
//! trace: bursts of same-instant shuffle fan-out (many `add_flow` calls
//! before the next rate query), completion-driven removals, and occasional
//! capacity movement. It isolates the incremental rate-recomputation path
//! (`Waterfiller` refills plus the completion-ETA index) from scheduling
//! and placement cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tetrium_cluster::SiteId;
use tetrium_net::FlowSim;

/// Runs `rounds` churn rounds over `sites` sites and returns the number of
/// flow events (adds + completions) processed. Deterministic in `seed`.
pub fn run_flowsim_churn(sites: usize, rounds: usize, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let up: Vec<f64> = (0..sites).map(|_| rng.gen_range(0.5..2.0)).collect();
    let down: Vec<f64> = (0..sites).map(|_| rng.gen_range(0.5..2.0)).collect();
    let mut sim = FlowSim::new(up, down);
    let mut events = 0usize;
    for round in 0..rounds {
        // A same-instant burst of shuffle-like fan-out from one source.
        let src = rng.gen_range(0..sites);
        let fan_out = rng.gen_range(4..12);
        for _ in 0..fan_out {
            let mut dst = rng.gen_range(0..sites);
            if dst == src {
                dst = (dst + 1) % sites;
            }
            sim.add_flow(SiteId(src), SiteId(dst), rng.gen_range(0.1..4.0));
            events += 1;
        }
        // Occasionally move a site's capacity (resource dynamics, §4.2).
        if round % 16 == 0 {
            let s = rng.gen_range(0..sites);
            sim.set_capacity(SiteId(s), rng.gen_range(0.5..2.0), rng.gen_range(0.5..2.0));
        }
        // Drain a few completions so the live set stays bounded.
        for _ in 0..rng.gen_range(2..8) {
            let Some((k, t)) = sim.next_completion() else {
                break;
            };
            sim.advance_to(t);
            sim.remove_flow(k);
            events += 1;
        }
    }
    // Drain the tail so every byte is accounted for.
    while let Some((k, t)) = sim.next_completion() {
        sim.advance_to(t);
        sim.remove_flow(k);
        events += 1;
    }
    events
}
