//! Deterministic parallel execution of experiment grids.
//!
//! Every figure's work decomposes into independent *cells* — one
//! `(figure, scheduler, workload, seed)` simulation each. A figure first
//! builds its full cell list (closures over pre-generated clusters and job
//! lists), hands it to [`run_cells`], and only then formats the results.
//! [`run_cells`] executes the cells across scoped worker threads pulling
//! from a shared atomic work index, but returns the results **in
//! cell-index order**, so the figure's console output and JSON records are
//! byte-identical to a sequential run regardless of thread count or
//! scheduling interleaving.
//!
//! The worker count comes from `TETRIUM_THREADS` (default: the number of
//! available cores). Set `TETRIUM_TRACE_CELLS=1` to log cell completions
//! to stderr (stderr only — stdout is part of the determinism contract,
//! see DESIGN.md).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Descriptor of one independent unit of experiment work.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Figure/table id the cell belongs to (e.g. `"fig8"`).
    pub figure: &'static str,
    /// Scheduler or variant label (e.g. `"tetrium+fs"`).
    pub scheduler: String,
    /// Workload label (e.g. `"trace-50"`, `"TPC-DS/8-site"`).
    pub workload: String,
    /// Engine/workload seed the cell runs under.
    pub seed: u64,
}

impl Cell {
    /// Creates a cell descriptor.
    pub fn new(
        figure: &'static str,
        scheduler: impl Into<String>,
        workload: impl Into<String>,
        seed: u64,
    ) -> Self {
        Self {
            figure,
            scheduler: scheduler.into(),
            workload: workload.into(),
            seed,
        }
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{} seed={}",
            self.figure, self.scheduler, self.workload, self.seed
        )
    }
}

/// A cell's work: runs once, off the main thread, borrowing figure-local
/// data (clusters, job lists) for the duration of [`run_cells`].
pub type CellFn<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Pairs a descriptor with its work closure (saves the `Box::new` noise at
/// call sites).
pub fn cell<'a, T, F>(desc: Cell, f: F) -> (Cell, CellFn<'a, T>)
where
    F: FnOnce() -> T + Send + 'a,
{
    (desc, Box::new(f))
}

/// Worker-thread count: `TETRIUM_THREADS` if set (minimum 1), otherwise the
/// number of available cores.
pub fn thread_count() -> usize {
    match std::env::var("TETRIUM_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

fn trace_cells() -> bool {
    std::env::var_os("TETRIUM_TRACE_CELLS").is_some()
}

/// Runs the cells on [`thread_count`] workers and returns results in
/// cell-index order.
pub fn run_cells<T: Send>(cells: Vec<(Cell, CellFn<'_, T>)>) -> Vec<T> {
    run_cells_with(thread_count(), cells)
}

/// [`run_cells`] with an explicit worker count. `threads == 1` runs the
/// cells inline on the calling thread (used by timing figures, where
/// concurrent cells would contend with the quantity being measured).
pub fn run_cells_with<T: Send>(threads: usize, cells: Vec<(Cell, CellFn<'_, T>)>) -> Vec<T> {
    let n = cells.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return cells
            .into_iter()
            .map(|(desc, f)| {
                let out = f();
                if trace_cells() {
                    eprintln!("[runner] done {desc}");
                }
                out
            })
            .collect();
    }

    // Each worker claims the next unclaimed cell index, takes ownership of
    // that cell's closure, and deposits the result in the cell's slot.
    // Ordering lives entirely in the slot index, so the output is
    // independent of which worker ran what.
    let (descs, fns): (Vec<Cell>, Vec<CellFn<'_, T>>) = cells.into_iter().unzip();
    let work: Vec<Mutex<Option<CellFn<'_, T>>>> =
        fns.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let joined = crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let f = work[i]
                    .lock()
                    .expect("cell mutex poisoned")
                    .take()
                    .expect("cell claimed twice");
                let out = f();
                if trace_cells() {
                    eprintln!("[runner] done {}", descs[i]);
                }
                *slots[i].lock().expect("slot mutex poisoned") = Some(out);
            });
        }
    });
    if let Err(payload) = joined {
        std::panic::resume_unwind(payload);
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("all cells completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<(Cell, CellFn<'static, usize>)> {
        (0..n)
            .map(|i| {
                cell(
                    Cell::new("test", format!("s{i}"), "w", i as u64),
                    move || i * i,
                )
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_cell_index_order() {
        for threads in [1, 2, 4, 16] {
            let out = run_cells_with(threads, grid(23));
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<usize> = run_cells_with(4, Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn cells_borrow_caller_data() {
        let base = [10usize, 20, 30];
        let cells: Vec<(Cell, CellFn<'_, usize>)> = base
            .iter()
            .enumerate()
            .map(|(i, v)| cell(Cell::new("test", "borrow", "w", i as u64), move || v + 1))
            .collect();
        assert_eq!(run_cells_with(2, cells), vec![11, 21, 31]);
    }

    #[test]
    fn worker_panics_propagate() {
        let cells: Vec<(Cell, CellFn<'static, ()>)> = vec![
            cell(Cell::new("test", "ok", "w", 0), || ()),
            cell(Cell::new("test", "boom", "w", 1), || panic!("cell failed")),
        ];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cells_with(2, cells);
        }));
        assert!(r.is_err());
    }
}
