//! Benchmark harness regenerating every table and figure of the Tetrium
//! evaluation (§6).
//!
//! Each figure has a module under [`figs`] exposing a `run()` that prints
//! the same rows/series the paper reports and appends a JSON record under
//! `target/experiments/`; the `fig*` binaries are thin wrappers, and
//! `all_figures` runs the whole suite.
//!
//! Scale control: set `TETRIUM_QUICK=1` to shrink workloads for smoke runs;
//! absolute numbers are not comparable to the paper's testbed either way —
//! the *shape* (who wins, rough factors, trends over knobs) is the
//! reproduction target (see EXPERIMENTS.md).
//!
//! Parallelism: figures run their simulation cells across worker threads
//! (`TETRIUM_THREADS`, default all cores) via [`runner`]; output stays
//! byte-identical to a sequential run.

pub mod churn;
pub mod figs;
mod record;
pub mod runner;

pub use record::{quick_mode, write_obs_record, write_record};
pub use runner::{cell, run_cells, run_cells_with, thread_count, Cell};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::{run_workload, SchedulerKind};
use tetrium_cluster::Cluster;
use tetrium_jobs::Job;
use tetrium_metrics::reduction_pct;
use tetrium_sim::{EngineConfig, RunReport};
use tetrium_workload::TraceParams;

/// The 50-site trace-driven cluster used by Figs 8–12 (§6.1).
pub fn fifty_sites(seed: u64) -> Cluster {
    let mut rng = StdRng::seed_from_u64(seed);
    tetrium_cluster::trace_fifty_sites(&mut rng)
}

/// Trace-workload parameters calibrated so the 50-site simulation is
/// compute-constrained with heavy WAN contention — the regime in which the
/// paper's trends (Fig 8, Fig 10) manifest. `TETRIUM_QUICK` shrinks tasks.
pub fn calibrated_trace() -> TraceParams {
    let quick = quick_mode();
    TraceParams {
        median_input_gb: if quick { 20.0 } else { 40.0 },
        mean_interarrival_secs: 45.0,
        mean_task_secs: 20.0,
        tasks_per_gb: if quick { 6.0 } else { 10.0 },
        max_tasks: if quick { 250 } else { 500 },
        ..TraceParams::default()
    }
}

/// Lighter-contention parameters for the WAN-knob sweep (Fig 10): under
/// heavy queueing byte-frugality dominates and the rho trend flattens, so
/// the sweep runs at the load level where the knob's trade-off is visible.
pub fn fig10_trace() -> TraceParams {
    let quick = quick_mode();
    TraceParams {
        median_input_gb: if quick { 30.0 } else { 60.0 },
        mean_interarrival_secs: 90.0,
        mean_task_secs: 20.0,
        tasks_per_gb: if quick { 6.0 } else { 14.0 },
        max_tasks: if quick { 250 } else { 800 },
        ..TraceParams::default()
    }
}

/// Number of jobs for 50-site experiments.
pub fn trace_job_count() -> usize {
    if quick_mode() {
        8
    } else {
        16
    }
}

/// Whether figure runs collect observability records (`TETRIUM_OBS=1`);
/// when set, each figure also writes `target/experiments/<fig>.obs.json`.
pub fn obs_mode() -> bool {
    std::env::var_os("TETRIUM_OBS").is_some()
}

/// Engine noise configuration for trace-driven runs (§6.1). Observability
/// recording follows [`obs_mode`] so `TETRIUM_OBS=1` flows through every
/// figure cell without per-figure plumbing.
pub fn trace_engine(seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::trace_like(seed);
    cfg.record_obs = obs_mode();
    cfg
}

/// Extracts a figure cell's obs record as a `(label, json)` entry for
/// [`write_obs_record`]. Serializes with `include_wall = false` so the obs
/// file is byte-identical for any `TETRIUM_THREADS` (DESIGN.md §8).
pub fn obs_entry(
    label: impl Into<String>,
    report: &RunReport,
) -> Option<(String, serde_json::Value)> {
    report
        .obs
        .as_ref()
        .map(|o| (label.into(), o.to_json(false)))
}

/// Generates the standard 50-site workload for a seed.
pub fn trace_workload(cluster: &Cluster, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    tetrium_workload::trace_like_jobs(cluster, trace_job_count(), &calibrated_trace(), &mut rng)
}

/// Runs one scheduler on a workload and returns the report.
pub fn run(cluster: &Cluster, jobs: &[Job], kind: SchedulerKind, seed: u64) -> RunReport {
    run_workload(cluster.clone(), jobs.to_vec(), kind, trace_engine(seed))
        .expect("scheduler completes the workload")
}

/// Percentage reduction in average response time of `x` vs `base`.
pub fn rt_reduction(base: &RunReport, x: &RunReport) -> f64 {
    reduction_pct(base.avg_response(), x.avg_response())
}

/// Pretty separator line for the console output.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// A map-placement-shaped LP at `n` sites: one variable per admissible
/// `(source, destination)` pair (each source may ship to itself plus 12
/// pruned destinations, matching the scheduler's `dest_limit`), plus the
/// three makespan variables, with the row structure of
/// `solve_map_placement` (row sums, upload, download, compute). Shared by
/// `benches/solver_time.rs` and `perf_snapshot` so the criterion bench and
/// the perf gate time the same instance.
pub fn map_like_lp(n: usize) -> tetrium_lp::Problem {
    use tetrium_lp::{Problem, Relation};
    assert!(n > 13, "the pruned-destination layout needs n > 13");
    let input_gb: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let tasks_from: Vec<f64> = (0..n).map(|i| (10 + (i * 13) % 40) as f64).collect();
    let up: Vec<f64> = (0..n).map(|i| 0.0125 + 0.01 * (i % 11) as f64).collect();
    let down: Vec<f64> = (0..n)
        .map(|i| 0.0125 + 0.01 * ((i + 3) % 11) as f64)
        .collect();
    let slots: Vec<f64> = (0..n).map(|i| (25 + (i * 97) % 1000) as f64).collect();
    // Destinations 0..12 are admissible for everyone (stand-in for the
    // pruned top-k); every source may also stay home.
    let dest_ok = |y: usize| y < 12;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for x in 0..n {
        for y in 0..n {
            if y == x || dest_ok(y) {
                pairs.push((x, y));
            }
        }
    }
    let var = |x: usize, y: usize| pairs.binary_search(&(x, y)).expect("admissible");
    let nv = pairs.len();
    let (t_aggr, t_map) = (nv, nv + 1);
    let mut lp = Problem::minimize(nv + 2);
    lp.set_objective(&[(t_aggr, 1.0), (t_map, 1.0)]);
    for x in 0..n {
        let terms: Vec<(usize, f64)> = (0..n)
            .filter(|&y| y == x || dest_ok(y))
            .map(|y| (var(x, y), 1.0))
            .collect();
        lp.add_constraint(&terms, Relation::Eq, 1.0);
    }
    for x in 0..n {
        let mut terms: Vec<(usize, f64)> = (0..n)
            .filter(|&y| y != x && dest_ok(y))
            .map(|y| (var(x, y), input_gb[x]))
            .collect();
        terms.push((t_aggr, -up[x]));
        lp.add_constraint(&terms, Relation::Le, 0.0);
    }
    for x in 0..n.min(12) {
        let mut terms: Vec<(usize, f64)> = (0..n)
            .filter(|&y| y != x)
            .map(|y| (var(y, x), input_gb[y]))
            .collect();
        terms.push((t_aggr, -down[x]));
        lp.add_constraint(&terms, Relation::Le, 0.0);
    }
    for y in 0..n {
        let mut terms: Vec<(usize, f64)> = (0..n)
            .filter(|&x| x == y || dest_ok(y))
            .map(|x| (var(x, y), 2.0 * tasks_from[x]))
            .collect();
        terms.push((t_map, -slots[y]));
        lp.add_constraint(&terms, Relation::Le, 0.0);
    }
    lp
}
