//! Experiment records: JSON files consumed by EXPERIMENTS.md.

use serde_json::Value;
use std::fs;
use std::path::PathBuf;

/// Whether the harness runs in shrunk smoke-test mode.
pub fn quick_mode() -> bool {
    std::env::var_os("TETRIUM_QUICK").is_some()
}

/// Writes an experiment's JSON record to `target/experiments/<id>.json`,
/// returning the path. Failures are reported but non-fatal (the console
/// output remains the primary artifact).
pub fn write_record(id: &str, value: &Value) -> Option<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{id}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
                return None;
            }
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot serialize record for {id}: {e}");
            None
        }
    }
}

/// Writes a figure's observability records to
/// `target/experiments/<id>.obs.json` as `{"cells": [{"cell", "obs"}]}` in
/// cell-index order — the order is part of the determinism contract
/// (DESIGN.md §8), so callers must pass cells in their fixed grid order.
/// No-op when `cells` is empty (obs collection disabled).
pub fn write_obs_record(id: &str, cells: &[(String, Value)]) -> Option<PathBuf> {
    if cells.is_empty() {
        return None;
    }
    let body = serde_json::json!({
        "cells": cells
            .iter()
            .map(|(label, obs)| serde_json::json!({"cell": label, "obs": obs}))
            .collect::<Vec<_>>(),
    });
    write_record(&format!("{id}.obs"), &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip() {
        let v = serde_json::json!({"id": "test", "rows": [1, 2, 3]});
        let path = write_record("_harness_selftest", &v).expect("writable target dir");
        let back: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back["rows"][2], 3);
        let _ = std::fs::remove_file(path);
    }
}
