//! Fig 3 / Fig 4: the three-site worked example.
//!
//! Reproduces the paper's exact arithmetic (worst-case accounting):
//! Iridium 88.5 s, the better (Tetrium-style) placement 59.83 s, the
//! Centralized strawman 93 s — and then runs the same job through the
//! discrete-event engine under each scheduler.

use crate::runner::{cell, run_cells, Cell};
use crate::{banner, write_record};
use tetrium::core::analytic::{evaluate_map_counts, evaluate_reduce_counts};
use tetrium::core::reduce_placement::{solve_reduce_placement, ReduceProblem};
use tetrium::sim::EngineConfig;
use tetrium::workload::{fig4_cluster, fig4_job};
use tetrium::{run_workload, SchedulerKind};

const UP: [f64; 3] = [5.0, 1.0, 2.0];
const DOWN: [f64; 3] = [5.0, 1.0, 5.0];
const SLOTS: [usize; 3] = [40, 10, 20];

/// Prints the analytic tables and the engine replication.
pub fn run() {
    banner("fig3", "three-site worked example (Fig 3/4)");

    // (a) Iridium: maps local; reduce placement from its network-only LP.
    let iridium_map = evaluate_map_counts(
        &vec![vec![0.0; 3]; 3],
        &[200, 300, 500],
        2.0,
        &UP,
        &DOWN,
        &SLOTS,
        true,
    );
    let red = solve_reduce_placement(&ReduceProblem {
        shuffle_gb: vec![10.0, 15.0, 25.0],
        num_tasks: 500,
        task_secs: 1.0,
        up_gbps: UP.to_vec(),
        down_gbps: DOWN.to_vec(),
        slots: SLOTS.to_vec(),
        wan_budget_gb: None,
        network_only: true,
        next_stage_out_gb: None,
    })
    .expect("feasible");
    let iridium_red = evaluate_reduce_counts(
        &[10.0, 15.0, 25.0],
        &red.fractions,
        &red.tasks_at,
        1.0,
        &UP,
        &DOWN,
        &SLOTS,
        true,
    );
    let iridium_total = iridium_map.total() + iridium_red.total();

    // (b) The better approach: the paper's plan (Fig 3 right).
    let mut moved = vec![vec![0.0; 3]; 3];
    moved[1][0] = 15.7;
    moved[2][0] = 21.4;
    let better_map = evaluate_map_counts(&moved, &[571, 143, 286], 2.0, &UP, &DOWN, &SLOTS, true);
    let better_red = evaluate_reduce_counts(
        &[28.55, 7.15, 14.3],
        &[0.571, 0.143, 0.286],
        &[286, 71, 143],
        1.0,
        &UP,
        &DOWN,
        &SLOTS,
        true,
    );
    let better_total = better_map.total() + better_red.total();

    // (c) Centralized: aggregate everything at site 1.
    let mut agg = vec![vec![0.0; 3]; 3];
    agg[1][0] = 30.0;
    agg[2][0] = 50.0;
    let central_map = evaluate_map_counts(&agg, &[1000, 0, 0], 2.0, &UP, &DOWN, &SLOTS, true);
    let central_red = evaluate_reduce_counts(
        &[25.0, 0.0, 0.0],
        &[1.0, 0.0, 0.0],
        &[500, 0, 0],
        1.0,
        &UP,
        &DOWN,
        &SLOTS,
        true,
    );
    let central_total = central_map.total() + central_red.total();

    println!("analytic (paper accounting)     transfer+compute per stage        total   paper");
    println!(
        "  iridium      map {:5.1}+{:5.1}  reduce {:5.2}+{:5.1}   -> {:6.2}   88.50",
        iridium_map.transfer,
        iridium_map.compute,
        iridium_red.transfer,
        iridium_red.compute,
        iridium_total
    );
    println!(
        "  better       map {:5.1}+{:5.1}  reduce {:5.2}+{:5.1}   -> {:6.2}   59.83",
        better_map.transfer,
        better_map.compute,
        better_red.transfer,
        better_red.compute,
        better_total
    );
    println!(
        "  centralized  map {:5.1}+{:5.1}  reduce {:5.2}+{:5.1}   -> {:6.2}   93.00",
        central_map.transfer,
        central_map.compute,
        central_red.transfer,
        central_red.compute,
        central_total
    );

    // Engine replication (fetch/compute overlap, so values sit below the
    // worst-case bounds while preserving the ordering). One cell per
    // scheduler; formatting consumes the results in cell order.
    println!("\nengine (discrete-event, overlap allowed)");
    let kinds = [
        ("tetrium", SchedulerKind::Tetrium),
        ("iridium", SchedulerKind::Iridium),
        ("centralized", SchedulerKind::Centralized),
        ("in-place", SchedulerKind::InPlace),
    ];
    let cells = kinds
        .iter()
        .map(|(name, kind)| {
            cell(
                Cell::new("fig3", *name, "fig4-worked-example", 0),
                move || {
                    run_workload(
                        fig4_cluster(),
                        vec![fig4_job()],
                        kind.clone(),
                        EngineConfig::default(),
                    )
                    .expect("completes")
                },
            )
        })
        .collect();
    let mut engine = serde_json::Map::new();
    for r in run_cells(cells) {
        println!(
            "  {:12} response {:7.2} s   wan {:6.1} GB",
            r.scheduler, r.jobs[0].response, r.total_wan_gb
        );
        engine.insert(
            r.scheduler.clone(),
            serde_json::json!({"response_s": r.jobs[0].response, "wan_gb": r.total_wan_gb}),
        );
    }

    write_record(
        "fig3",
        &serde_json::json!({
            "analytic": {
                "iridium": {"total_s": iridium_total, "paper_s": 88.5},
                "better": {"total_s": better_total, "paper_s": 59.83},
                "centralized": {"total_s": central_total, "paper_s": 93.0},
            },
            "engine": engine,
        }),
    );
}
