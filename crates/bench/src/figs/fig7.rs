//! Fig 7: scheduler running time vs number of concurrent jobs.
//!
//! The paper reports ~950 ms for 50 concurrent jobs and ~8 s for 400 on a
//! 50-site deployment, noting that bounding LP work to high-priority jobs
//! keeps scaling sane. We time one full `schedule()` pass over synthetic
//! snapshots of 25..400 concurrent jobs on 50 sites.

use crate::runner::{cell, run_cells_with, Cell};
use crate::{banner, write_record};
use std::time::Instant;
use tetrium::core::TetriumScheduler;
use tetrium_cluster::SiteId;
use tetrium_jobs::{JobId, StageKind};
use tetrium_sim::{
    JobSnapshot, Scheduler, SiteState, Snapshot, StageMeta, StageSnapshot, TaskPhase, TaskSnapshot,
};

/// Builds a synthetic scheduling snapshot with `n_jobs` single-stage jobs of
/// `tasks_per_job` map tasks over 50 heterogeneous sites.
pub fn snapshot(n_jobs: usize, tasks_per_job: usize) -> Snapshot {
    let n_sites = 50;
    let sites: Vec<SiteState> = (0..n_sites)
        .map(|i| SiteState {
            slots: 25 + (i * 97) % 1000,
            free_slots: 25 + (i * 97) % 1000,
            up_gbps: 0.0125 + 0.005 * (i % 13) as f64,
            down_gbps: 0.0125 + 0.005 * ((i + 4) % 13) as f64,
        })
        .collect();
    let jobs = (0..n_jobs)
        .map(|j| {
            let tasks: Vec<TaskSnapshot> = (0..tasks_per_job)
                .map(|t| TaskSnapshot {
                    index: t,
                    phase: TaskPhase::Unlaunched,
                    input_site: Some(SiteId((t * 31 + j * 7) % n_sites)),
                    input_gb: 0.1,
                    share: 1.0 / tasks_per_job as f64,
                    running_site: None,
                })
                .collect();
            let mut input_gb = vec![0.0; n_sites];
            for t in &tasks {
                input_gb[t.input_site.unwrap().index()] += t.input_gb;
            }
            JobSnapshot {
                id: JobId(j),
                arrival: j as f64,
                total_stages: 2,
                remaining_stages: 2,
                stages: vec![
                    StageMeta {
                        kind: StageKind::Map,
                        deps: vec![],
                        num_tasks: tasks_per_job,
                        task_secs: 2.0,
                        output_ratio: 0.5,
                        done: false,
                    },
                    StageMeta {
                        kind: StageKind::Reduce,
                        deps: vec![0],
                        num_tasks: tasks_per_job / 2,
                        task_secs: 1.0,
                        output_ratio: 0.1,
                        done: false,
                    },
                ],
                runnable: vec![StageSnapshot {
                    stage_index: 0,
                    kind: StageKind::Map,
                    est_task_secs: 2.0,
                    num_tasks: tasks_per_job,
                    input_gb: input_gb.clone(),
                    tasks,
                }],
            }
        })
        .collect();
    Snapshot {
        now: 0.0,
        sites,
        jobs,
    }
}

/// Times one cold `schedule()` pass per job count. The cells run on a
/// single worker — this figure measures decision latency, and concurrent
/// cells would contend with the quantity being measured.
pub fn run() {
    banner(
        "fig7",
        "scheduler running time vs concurrent jobs (50 sites)",
    );
    println!("{:>10} {:>16}", "jobs", "decision time");
    let cells = [25usize, 50, 100, 200, 400]
        .into_iter()
        .map(|n_jobs| {
            cell(
                Cell::new("fig7", "tetrium", format!("{n_jobs}-jobs"), 0),
                move || {
                    let snap = snapshot(n_jobs, 100);
                    // Fresh scheduler per measurement: cold caches, like a
                    // burst of new arrivals.
                    let mut sched = TetriumScheduler::standard();
                    let t0 = Instant::now();
                    let plans = sched.schedule(&snap);
                    let elapsed = t0.elapsed();
                    assert!(!plans.is_empty());
                    (n_jobs, elapsed)
                },
            )
        })
        .collect();
    let mut rows = Vec::new();
    for (n_jobs, elapsed) in run_cells_with(1, cells) {
        println!("{:>10} {:>13.0} ms", n_jobs, elapsed.as_secs_f64() * 1e3);
        rows.push(serde_json::json!({
            "jobs": n_jobs,
            "decision_ms": elapsed.as_secs_f64() * 1e3,
        }));
    }
    println!("(paper: ~950 ms at 50 jobs, ~8 s at 400 jobs, Gurobi + Spark prototype)");
    write_record("fig7", &serde_json::json!({ "rows": rows }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium_sim::Scheduler;

    #[test]
    fn snapshot_builder_is_consistent() {
        let snap = snapshot(10, 40);
        assert_eq!(snap.sites.len(), 50);
        assert_eq!(snap.jobs.len(), 10);
        for job in &snap.jobs {
            assert_eq!(job.runnable.len(), 1);
            assert_eq!(job.runnable[0].tasks.len(), 40);
            let input_total: f64 = job.runnable[0].input_gb.iter().sum();
            assert!((input_total - 4.0).abs() < 1e-9, "40 tasks x 0.1 GB");
        }
    }

    #[test]
    fn a_decision_over_the_synthetic_snapshot_assigns_everything() {
        let snap = snapshot(4, 25);
        let mut sched = tetrium_core::TetriumScheduler::standard();
        let plans = sched.schedule(&snap);
        let assigned: usize = plans.iter().map(|p| p.assignments.len()).sum();
        assert_eq!(assigned, 4 * 25);
    }
}
