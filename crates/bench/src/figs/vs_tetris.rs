//! §6.3.1 (text): Tetrium vs Tetris.
//!
//! The paper reports 33% average and 47% 90th-percentile improvement over
//! Tetris, attributed to Tetris's pre-configured static resource demands
//! versus Tetrium's treatment of bandwidth as fungible.

use crate::runner::{cell, run_cells, Cell};
use crate::{banner, fifty_sites, run, trace_workload, write_record};
use tetrium::metrics::{per_job_reduction, reduction_pct, Cdf};
use tetrium::SchedulerKind;

/// Runs the comparison — two parallel cells.
pub fn run_fig() {
    banner("vs_tetris", "Tetrium vs Tetris packing");
    let cluster = fifty_sites(1);
    let jobs = trace_workload(&cluster, 6);
    let cells = vec![
        cell(Cell::new("vs_tetris", "tetris", "trace-50", 14), || {
            run(&cluster, &jobs, SchedulerKind::Tetris, 14)
        }),
        cell(Cell::new("vs_tetris", "tetrium", "trace-50", 14), || {
            run(&cluster, &jobs, SchedulerKind::Tetrium, 14)
        }),
    ];
    let mut results = run_cells(cells).into_iter();
    let tetris = results.next().unwrap();
    let tetrium = results.next().unwrap();
    let avg = reduction_pct(tetris.avg_response(), tetrium.avg_response());
    let per_job = Cdf::new(
        per_job_reduction(&tetris, &tetrium)
            .into_iter()
            .map(|(_, v)| v)
            .collect(),
    );
    let p90 = per_job
        .quantile(0.9)
        .expect("trace workload has at least one job");
    println!("  average reduction  {avg:>6.0}%   (paper: 33%)");
    println!("  p90 reduction      {p90:>6.0}%   (paper: 47%)");
    write_record(
        "vs_tetris",
        &serde_json::json!({"avg_pct": avg, "p90_pct": p90}),
    );
}
