//! One module per table/figure of the paper's evaluation.

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fwd_rev;
pub mod resilience;
pub mod scale;
pub mod skew_sweep;
pub mod trace_replay;
pub mod vs_tetris;
