//! §6.4 (text): sensitivity to resource skew.
//!
//! Slot and bandwidth capacities follow Zipf distributions with exponent
//! `e`; the paper reports gains growing with skew (slot skew 0→1.6 adds
//! ~51%, bandwidth skew ~37%), since imbalance is what placement can fix.

use crate::runner::{cell, run_cells, Cell, CellFn};
use crate::{banner, calibrated_trace, quick_mode, rt_reduction, run, write_record};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::zipf_cluster;
use tetrium::SchedulerKind;
use tetrium_cluster::Cluster;
use tetrium_jobs::Job;
use tetrium_workload::trace_like_jobs;

/// Sweeps the Zipf exponent for slots and for bandwidth independently.
/// Clusters and workloads are generated up front; the (skew, scheduler)
/// grid then runs as parallel cells.
pub fn run_fig() {
    banner("skew_sweep", "gains vs resource skew (Zipf exponent)");
    let exponents: &[f64] = if quick_mode() {
        &[0.0, 1.6]
    } else {
        &[0.0, 0.8, 1.6]
    };
    let n_jobs = if quick_mode() { 6 } else { 14 };
    println!("{:>18} {:>14}", "skew", "RT vs In-Place");
    let configs: Vec<(String, f64, f64, Cluster, Vec<Job>)> = exponents
        .iter()
        .map(|&e| (format!("slots e={e}"), e, 0.0))
        .chain(exponents.iter().map(|&e| (format!("bw    e={e}"), 0.0, e)))
        .map(|(label, slot_e, bw_e)| {
            let mut crng = StdRng::seed_from_u64(64);
            let cluster = zipf_cluster(20, slot_e, bw_e, 4000, &mut crng);
            let mut params = calibrated_trace();
            params.max_tasks = params.max_tasks.min(400);
            // The 20-site Zipf clusters have ~4x fewer slots than the
            // 50-site preset; tighten arrivals so contention stays
            // comparable.
            params.mean_interarrival_secs = 30.0;
            params.median_input_gb = 30.0;
            let mut rng = StdRng::seed_from_u64(65);
            let jobs = trace_like_jobs(&cluster, n_jobs, &params, &mut rng);
            (label, slot_e, bw_e, cluster, jobs)
        })
        .collect();
    let mut grid: Vec<(Cell, CellFn<'_, _>)> = Vec::new();
    for (label, _, _, cluster, jobs) in &configs {
        for (sname, kind) in [
            ("in-place", SchedulerKind::InPlace),
            ("tetrium", SchedulerKind::Tetrium),
        ] {
            grid.push(cell(Cell::new("skew_sweep", sname, label.clone(), 15), {
                move || run(cluster, jobs, kind, 15)
            }));
        }
    }
    let mut results = run_cells(grid).into_iter();

    let mut rows = Vec::new();
    for (label, slot_e, bw_e, _, _) in &configs {
        let inplace = results.next().unwrap();
        let tetrium = results.next().unwrap();
        let red = rt_reduction(&inplace, &tetrium);
        println!("{label:>18} {red:>13.0}%");
        rows.push(serde_json::json!({
            "label": label, "slot_exponent": slot_e, "bw_exponent": bw_e,
            "vs_inplace_pct": red,
        }));
    }
    println!("(paper: gains grow with skew; slot skew matters more than bandwidth skew)");
    write_record("skew_sweep", &serde_json::json!({ "rows": rows }));
}
