//! §3.4 / §6.3.1: forward vs best-of-forward/reverse stage planning.
//!
//! The paper reports 42% reduction vs In-Place for the forward planner and
//! 45% for the method that evaluates both directions and keeps the better,
//! concluding the improvement is marginal and adopting forward.

use crate::runner::{cell, run_cells, Cell};
use crate::{banner, fifty_sites, rt_reduction, run, trace_workload, write_record};
use tetrium::core::scheduler::StagePlanning;
use tetrium::core::TetriumConfig;
use tetrium::SchedulerKind;

/// Runs both planners against In-Place — three parallel cells.
pub fn run_fig() {
    banner("fwd_rev", "forward vs best-of-forward/reverse planning");
    let cluster = fifty_sites(1);
    let jobs = trace_workload(&cluster, 5);
    let cells = vec![
        cell(Cell::new("fwd_rev", "in-place", "trace-50", 13), || {
            run(&cluster, &jobs, SchedulerKind::InPlace, 13)
        }),
        cell(Cell::new("fwd_rev", "forward", "trace-50", 13), || {
            run(&cluster, &jobs, SchedulerKind::Tetrium, 13)
        }),
        cell(
            Cell::new("fwd_rev", "best-of-fwd-rev", "trace-50", 13),
            || {
                run(
                    &cluster,
                    &jobs,
                    SchedulerKind::TetriumWith(TetriumConfig {
                        planning: StagePlanning::BestOfForwardReverse,
                        ..TetriumConfig::default()
                    }),
                    13,
                )
            },
        ),
    ];
    let mut results = run_cells(cells).into_iter();
    let inplace = results.next().unwrap();
    let forward = results.next().unwrap();
    let mixed = results.next().unwrap();
    let f = rt_reduction(&inplace, &forward);
    let m = rt_reduction(&inplace, &mixed);
    println!("  forward            {f:>6.0}%   (paper: 42%)");
    println!("  best of fwd/rev    {m:>6.0}%   (paper: 45%)");
    println!(
        "  difference         {:>6.1} points (paper: ~3, 'marginal')",
        m - f
    );
    write_record(
        "fwd_rev",
        &serde_json::json!({
            "forward_vs_inplace_pct": f,
            "mixed_vs_inplace_pct": m,
        }),
    );
}
