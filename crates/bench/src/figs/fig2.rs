//! Fig 2: CDFs of compute and bandwidth heterogeneity across the OSP's
//! sites (compute spread ~200×, bandwidth spread ~18×, both normalized to
//! the smallest value).

use crate::{banner, write_record};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium_cluster::HeterogeneityProfile;
use tetrium_metrics::Cdf;

/// Regenerates both CDFs over a synthetic population of hundreds of sites.
pub fn run() {
    banner("fig2", "heterogeneity in compute and network capacities");
    let mut rng = StdRng::seed_from_u64(2);
    let compute = HeterogeneityProfile::osp_compute().sample(300, &mut rng);
    let network = HeterogeneityProfile::osp_bandwidth().sample(300, &mut rng);

    let mut record = serde_json::json!({});
    for (name, data, spread) in [("compute", &compute, 200.0), ("network", &network, 18.0)] {
        let cdf = Cdf::new(data.clone());
        println!("\n(normalized {name} capacity, CDF) — target spread {spread}x");
        let mut points = Vec::new();
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = cdf.quantile(q).expect("300-site sample is non-empty");
            println!("  p{:>4}: {:8.1}x", (q * 100.0) as u32, v);
            points.push(serde_json::json!({"q": q, "value": v}));
        }
        let max = cdf.quantile(1.0).expect("300-site sample is non-empty");
        let min = cdf.quantile(0.0).expect("300-site sample is non-empty");
        println!("  spread (max/min): {:.1}x", max / min);
        record[name] = serde_json::json!({"points": points, "spread": max / min});
    }
    write_record("fig2", &record);
}
