//! Resilience sweep (Fig 11 companion): completion-time degradation under
//! a mid-run 50% capacity drop at the most capable site.
//!
//! Each scheduler runs the same workload twice — clean, and with a
//! [`DynamicsTimeline`] halving the most capable site's slots and links
//! mid-run — and the table reports the relative degradation in average
//! response time. Tetrium reschedules around the drop (its scheduling
//! instance fires on the dynamics event), so its degradation stays below
//! the static placements of In-Place and Centralized, which keep feeding
//! the shrunken site.

use crate::runner::{cell, run_cells_with, Cell, CellFn};
use crate::{banner, fifty_sites, thread_count, trace_engine, trace_workload, write_record};
use tetrium::cluster::{Cluster, DynamicsChange, DynamicsEvent, DynamicsTimeline, SiteId};
use tetrium::sim::Engine;
use tetrium::SchedulerKind;
use tetrium_jobs::Job;

/// One scheduler's clean-vs-degraded outcome.
#[derive(Debug, Clone)]
pub struct ResilienceRow {
    /// Scheduler label.
    pub scheduler: &'static str,
    /// Average response time without dynamics, in seconds.
    pub clean_avg: f64,
    /// Average response time under the mid-run drop, in seconds.
    pub degraded_avg: f64,
}

impl ResilienceRow {
    /// Relative completion-time degradation, in percent.
    pub fn degradation_pct(&self) -> f64 {
        if self.clean_avg <= 0.0 {
            return 0.0;
        }
        100.0 * (self.degraded_avg - self.clean_avg) / self.clean_avg
    }
}

/// The sweep's scheduler lineup: the adaptive system vs the two static
/// placements the acceptance experiment compares against.
fn kinds() -> [(&'static str, SchedulerKind); 3] {
    [
        ("tetrium", SchedulerKind::Tetrium),
        ("in-place", SchedulerKind::InPlace),
        ("centralized", SchedulerKind::Centralized),
    ]
}

/// Builds the sweep's drop: half the capacity of the most capable site
/// (the site every scheduler leans on) at `at_time`.
pub fn half_drop_at_biggest_site(cluster: &Cluster, at_time: f64) -> DynamicsTimeline {
    let biggest = (0..cluster.len())
        .max_by_key(|&i| cluster.site(SiteId(i)).slots)
        .expect("non-empty cluster");
    DynamicsTimeline::new(vec![DynamicsEvent::new(
        SiteId(biggest),
        at_time,
        DynamicsChange::Capacity { keep: 0.5 },
    )])
}

/// Runs the clean/degraded pair for every scheduler on `threads` workers.
/// Cells execute in parallel but the rows come back in lineup order, so
/// the output is byte-identical for any worker count.
pub fn sweep(
    threads: usize,
    cluster: &Cluster,
    jobs: &[Job],
    timeline: &DynamicsTimeline,
    seed: u64,
) -> Vec<ResilienceRow> {
    let mut grid: Vec<(Cell, CellFn<'_, f64>)> = Vec::new();
    for (name, kind) in kinds() {
        for degraded in [false, true] {
            let workload = if degraded { "drop=0.5" } else { "clean" };
            grid.push(cell(Cell::new("resilience", name, workload, seed), {
                let kind = kind.clone();
                let timeline = timeline.clone();
                move || {
                    let mut engine = Engine::new(
                        cluster.clone(),
                        jobs.to_vec(),
                        kind.build(),
                        trace_engine(seed),
                    );
                    if degraded {
                        engine = engine.with_dynamics(timeline);
                    }
                    engine.run().expect("run completes").avg_response()
                }
            }));
        }
    }
    let mut avgs = run_cells_with(threads, grid).into_iter();
    kinds()
        .into_iter()
        .map(|(name, _)| {
            let clean_avg = avgs.next().expect("clean cell");
            let degraded_avg = avgs.next().expect("degraded cell");
            ResilienceRow {
                scheduler: name,
                clean_avg,
                degraded_avg,
            }
        })
        .collect()
}

/// Runs the full-scale sweep and prints/records the table.
pub fn run_fig() {
    banner(
        "resilience",
        "mid-run 50% drop at the most capable site: degradation by scheduler",
    );
    let cluster = fifty_sites(1);
    let jobs = trace_workload(&cluster, 11);
    let timeline = half_drop_at_biggest_site(&cluster, 120.0);
    let rows = sweep(thread_count(), &cluster, &jobs, &timeline, 11);
    println!(
        "{:<13} {:>11} {:>11} {:>12}",
        "scheduler", "clean (s)", "dropped (s)", "degradation"
    );
    let mut recs = Vec::new();
    for r in &rows {
        println!(
            "{:<13} {:>11.1} {:>11.1} {:>11.1}%",
            r.scheduler,
            r.clean_avg,
            r.degraded_avg,
            r.degradation_pct()
        );
        recs.push(serde_json::json!({
            "scheduler": r.scheduler,
            "clean_avg_s": r.clean_avg,
            "degraded_avg_s": r.degraded_avg,
            "degradation_pct": r.degradation_pct(),
        }));
    }
    println!("(expected: tetrium re-places around the drop and degrades least)");
    write_record("resilience", &serde_json::json!({ "rows": recs }));
}
