//! Fig 10: balancing response time against WAN usage (ρ) and fairness (ε).
//!
//! (a)(b) sweep the WAN-budget knob ρ and report reduction in average
//! response time and in WAN usage vs In-Place and Centralized; (c) sweeps
//! the fairness knob ε and reports response-time reduction vs In-Place.

use crate::runner::{cell, run_cells, Cell, CellFn};
use crate::{banner, fifty_sites, fig10_trace, quick_mode, rt_reduction, run, write_record};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::core::{TetriumConfig, WanKnob};
use tetrium::metrics::wan_reduction_pct;
use tetrium::SchedulerKind;

/// Runs both sweeps. The two baselines plus every rho and epsilon point
/// are independent cells over the same workload and run in parallel.
pub fn run_fig() {
    banner("fig10", "WAN-budget knob rho and fairness knob epsilon");
    let cluster = fifty_sites(1);
    let jobs = {
        let mut rng = StdRng::seed_from_u64(4);
        tetrium_workload::trace_like_jobs(&cluster, 14, &fig10_trace(), &mut rng)
    };
    let rhos: &[f64] = if quick_mode() {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };
    let epsilons: &[f64] = if quick_mode() {
        &[0.0, 0.6, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };

    let mut cells: Vec<(Cell, CellFn<'_, _>)> = vec![
        cell(Cell::new("fig10", "in-place", "trace-50-light", 10), || {
            run(&cluster, &jobs, SchedulerKind::InPlace, 10)
        }),
        cell(
            Cell::new("fig10", "centralized", "trace-50-light", 10),
            || run(&cluster, &jobs, SchedulerKind::Centralized, 10),
        ),
    ];
    for &rho in rhos {
        cells.push(cell(
            Cell::new("fig10", format!("tetrium rho={rho}"), "trace-50-light", 10),
            {
                let cluster = &cluster;
                let jobs = &jobs;
                move || {
                    run(
                        cluster,
                        jobs,
                        SchedulerKind::TetriumWith(TetriumConfig {
                            wan: WanKnob::new(rho),
                            ..TetriumConfig::default()
                        }),
                        10,
                    )
                }
            },
        ));
    }
    for &eps in epsilons {
        cells.push(cell(
            Cell::new("fig10", format!("tetrium eps={eps}"), "trace-50-light", 10),
            {
                let cluster = &cluster;
                let jobs = &jobs;
                move || {
                    run(
                        cluster,
                        jobs,
                        SchedulerKind::TetriumWith(TetriumConfig {
                            epsilon: eps,
                            ..TetriumConfig::default()
                        }),
                        10,
                    )
                }
            },
        ));
    }
    let mut results = run_cells(cells).into_iter();
    let inplace = results.next().unwrap();
    let central = results.next().unwrap();

    println!("\n(a)(b) rho sweep");
    println!(
        "{:>6} {:>12} {:>12} | {:>12} {:>12}",
        "rho", "RT vs I-P", "WAN vs I-P", "RT vs Cen", "WAN vs Cen"
    );
    let mut rho_rows = Vec::new();
    for &rho in rhos {
        let r = results.next().unwrap();
        let rt_ip = rt_reduction(&inplace, &r);
        let wan_ip = wan_reduction_pct(&inplace, &r);
        let rt_ce = rt_reduction(&central, &r);
        let wan_ce = wan_reduction_pct(&central, &r);
        println!("{rho:>6.2} {rt_ip:>11.0}% {wan_ip:>11.0}% | {rt_ce:>11.0}% {wan_ce:>11.0}%");
        rho_rows.push(serde_json::json!({
            "rho": rho,
            "rt_vs_inplace_pct": rt_ip,
            "wan_vs_inplace_pct": wan_ip,
            "rt_vs_centralized_pct": rt_ce,
            "wan_vs_centralized_pct": wan_ce,
            "avg_response_s": r.avg_response(),
            "wan_gb": r.total_wan_gb,
        }));
    }
    println!("(paper: response reduction grows with rho, WAN savings shrink; sweet spot ~0.75)");

    println!("\n(c) epsilon sweep (RT reduction vs In-Place)");
    let mut eps_rows = Vec::new();
    for &eps in epsilons {
        let r = results.next().unwrap();
        let red = rt_reduction(&inplace, &r);
        println!("  eps={eps:>4.2}  {red:>6.0}%");
        eps_rows.push(serde_json::json!({"epsilon": eps, "rt_vs_inplace_pct": red}));
    }
    println!("(paper: gains grow from ~0 at eps=0 to the full SRPT gain at eps=1; knee ~0.6)");
    write_record(
        "fig10",
        &serde_json::json!({"rho": rho_rows, "epsilon": eps_rows}),
    );
}
