//! Fig 11 (table): gains under resource dynamics.
//!
//! Five random sites lose a fraction of their compute and network capacity
//! mid-run; Tetrium reacts with the limited re-assignment heuristic of §4.2
//! that updates at most `k` sites. Rows are the drop fraction, columns the
//! update budget `k`; cells report reduction in average response time vs
//! In-Place under the same drops. The paper sees gains grow with `k`
//! (saturating by k≈10) and shrink as drops deepen.

use crate::runner::{cell, run_cells, Cell, CellFn};
use crate::{banner, calibrated_trace, fifty_sites, quick_mode, trace_engine, write_record};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tetrium::cluster::{CapacityDrop, SiteId};
use tetrium::core::TetriumConfig;
use tetrium::metrics::reduction_pct;
use tetrium::sim::Engine;
use tetrium::SchedulerKind;
use tetrium_workload::trace_like_jobs;

/// Runs the drop × k grid.
pub fn run_fig() {
    banner("fig11", "resource dynamics: drop % x update budget k");
    let cluster = fifty_sites(1);
    // Full calibrated scale: under-scaled workloads erase the
    // Tetrium-vs-In-Place gap this table modulates.
    let params = calibrated_trace();
    let n_jobs = if quick_mode() { 6 } else { 16 };
    let mut rng = StdRng::seed_from_u64(11);
    let jobs = trace_like_jobs(&cluster, n_jobs, &params, &mut rng);

    // Degrade the five most capable sites: those carry the bulk of every
    // scheduler's placements, so the drop actually forces re-assignment
    // (random small sites are usually not load-bearing).
    let mut by_slots: Vec<usize> = (0..cluster.len()).collect();
    by_slots.sort_by_key(|&i| std::cmp::Reverse(cluster.site(SiteId(i)).slots));
    let targets: Vec<SiteId> = by_slots[..5].iter().map(|&i| SiteId(i)).collect();
    let drops_for = |frac: f64, rng: &mut StdRng| -> Vec<CapacityDrop> {
        targets
            .iter()
            .map(|&site| CapacityDrop::new(site, rng.gen_range(50.0..250.0), frac))
            .collect()
    };
    let fractions: &[f64] = if quick_mode() {
        &[0.1, 0.5]
    } else {
        &[0.1, 0.3, 0.5]
    };
    let ks: &[usize] = if quick_mode() {
        &[3, 50]
    } else {
        &[3, 7, 20, 50]
    };

    print!("{:>8}", "drop");
    for &k in ks {
        print!("{:>9}", format!("k={k}"));
    }
    println!();

    // Drop schedules are derived per fraction up front (same rng stream as
    // before); every (fraction, scheduler) pair is then an independent cell.
    let drop_sets: Vec<(f64, Vec<CapacityDrop>)> = fractions
        .iter()
        .map(|&frac| {
            let mut drop_rng = StdRng::seed_from_u64(1100 + (frac * 10.0) as u64);
            (frac, drops_for(frac, &mut drop_rng))
        })
        .collect();
    let mut grid: Vec<(Cell, CellFn<'_, _>)> = Vec::new();
    for (frac, drops) in &drop_sets {
        let workload = format!("trace-50 drop={frac}");
        grid.push(cell(
            Cell::new("fig11", "in-place", workload.clone(), 11),
            {
                let cluster = &cluster;
                let jobs = &jobs;
                move || {
                    Engine::new(
                        cluster.clone(),
                        jobs.clone(),
                        SchedulerKind::InPlace.build(),
                        trace_engine(11),
                    )
                    .with_drops(drops.clone())
                    .run()
                    .expect("in-place completes")
                }
            },
        ));
        for &k in ks {
            grid.push(cell(
                Cell::new("fig11", format!("tetrium k={k}"), workload.clone(), 11),
                {
                    let cluster = &cluster;
                    let jobs = &jobs;
                    move || {
                        Engine::new(
                            cluster.clone(),
                            jobs.clone(),
                            SchedulerKind::TetriumWith(TetriumConfig {
                                dynamics_k: Some(k),
                                ..TetriumConfig::default()
                            })
                            .build(),
                            trace_engine(11),
                        )
                        .with_drops(drops.clone())
                        .run()
                        .expect("tetrium completes")
                    }
                },
            ));
        }
    }
    let mut results = run_cells(grid).into_iter();

    let mut rows = Vec::new();
    for (frac, _) in &drop_sets {
        let baseline = results.next().unwrap();
        print!("{:>7.0}%", frac * 100.0);
        let mut cells = Vec::new();
        for &k in ks {
            let r = results.next().unwrap();
            let red = reduction_pct(baseline.avg_response(), r.avg_response());
            print!("{red:>8.0}%");
            cells.push(serde_json::json!({"k": k, "vs_inplace_pct": red}));
        }
        println!();
        rows.push(serde_json::json!({"drop_frac": frac, "cells": cells}));
    }
    println!("(paper: e.g. 30% drop: 16/26/32/34% for k=3/7/20/50; gains rise with k, fall with drop depth)");
    write_record("fig11", &serde_json::json!({ "rows": rows }));
}
