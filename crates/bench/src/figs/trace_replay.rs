//! Trace-replay sweep: the ingestion pipeline end to end, then a
//! fig5-style scheduler comparison on the replayed workload.
//!
//! The workload takes the long way into the engine on purpose: generated
//! jobs are exported to the on-disk `tetrium-trace/v1` rendering, parsed
//! back, pushed through the full validation gate (with the trace's own
//! profile as the drift reference), and only then converted to a scenario
//! — exactly the path `tetrium-cli run --trace` takes with a real cluster
//! trace file. Any constraint regression or lossy round-trip breaks this
//! sweep before it breaks a user. `TETRIUM_QUICK=1` shrinks the job count
//! for the CI trace-smoke job.

use crate::runner::{cell, run_cells, Cell, CellFn};
use crate::{banner, quick_mode, write_record};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tetrium::metrics::reduction_pct;
use tetrium::sim::{EngineConfig, RunReport};
use tetrium::{run_workload, SchedulerKind};
use tetrium_workload::ingest::{
    parse_trace_str, scenario_from_trace, trace_from_jobs, validate, TraceProfile, ValidatorConfig,
};
use tetrium_workload::{trace_like_jobs, TraceParams};

/// Runs the sweep and writes the `trace_replay` record.
pub fn run_fig() {
    banner("trace_replay", "raw-trace ingestion gate + scheduler sweep");
    let cluster = tetrium_cluster::ec2_eight_regions();
    let n_jobs = if quick_mode() { 4 } else { 16 };
    let mut rng = StdRng::seed_from_u64(91);
    let jobs = trace_like_jobs(&cluster, n_jobs, &TraceParams::default(), &mut rng);
    let body = trace_from_jobs(&jobs, cluster.len(), "bench-replay").to_json();
    let trace = parse_trace_str(&body).expect("exported trace parses");
    let cfg = ValidatorConfig {
        profile: TraceProfile::from_trace(&trace),
        ..ValidatorConfig::default()
    };
    validate(&trace, &cfg).unwrap_or_else(|report| {
        panic!("exported trace failed its own validation gate:\n{report}")
    });
    let scenario = scenario_from_trace(&trace, cluster, &cfg).expect("validated trace converts");
    println!(
        "replaying {} rows -> {} jobs over {} sites",
        trace.rows.len(),
        scenario.jobs.len(),
        scenario.cluster.len()
    );

    let schedulers = [
        ("tetrium", SchedulerKind::Tetrium),
        ("in-place", SchedulerKind::InPlace),
        ("iridium", SchedulerKind::Iridium),
    ];
    let t0 = Instant::now();
    let cells: Vec<(Cell, CellFn<'_, RunReport>)> = schedulers
        .iter()
        .map(|(sname, kind)| {
            let (cluster, jobs) = (&scenario.cluster, &scenario.jobs);
            cell(
                Cell::new("trace_replay", *sname, "ingested-trace", 91),
                move || {
                    run_workload(
                        cluster.clone(),
                        jobs.clone(),
                        kind.clone(),
                        EngineConfig::trace_like(91),
                    )
                    .expect("completes")
                },
            )
        })
        .collect();
    let runs = run_cells(cells);
    let wall = t0.elapsed().as_secs_f64();

    let avg: Vec<f64> = runs.iter().map(RunReport::avg_response).collect();
    for (&(sname, _), &a) in schedulers.iter().zip(&avg) {
        println!("{sname:<13} avg response {a:>10.1} s");
    }
    let rt_ip = reduction_pct(avg[1], avg[0]);
    let rt_ir = reduction_pct(avg[2], avg[0]);
    println!(
        "tetrium reduction: {rt_ip:.0}% vs in-place, {rt_ir:.0}% vs iridium \
         ({wall:.1} s wall)"
    );
    write_record(
        "trace_replay",
        &serde_json::json!({
            "rows": trace.rows.len(),
            "jobs": scenario.jobs.len(),
            "sites": scenario.cluster.len(),
            "wall_secs": wall,
            "avg_response_s": {
                "tetrium": avg[0],
                "in-place": avg[1],
                "iridium": avg[2],
            },
            "rt_reduction_vs_inplace_pct": rt_ip,
            "rt_reduction_vs_iridium_pct": rt_ir,
        }),
    );
}
