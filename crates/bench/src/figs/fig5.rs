//! Fig 5 + Fig 6: EC2 deployment comparison.
//!
//! Reduction in average response time (Fig 5) and average slowdown (Fig 6)
//! of Tetrium vs In-Place and Iridium, for the TPC-DS-like and
//! BigData-benchmark-like workloads on the 8-region and 30-instance EC2
//! presets. The paper reports up to 78% vs In-Place and up to 55% vs
//! Iridium, with larger gains for TPC-DS (longer stage chains) and for the
//! 30-site setting (more placement freedom).

use crate::{banner, quick_mode, write_record};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::{ec2_eight_regions, ec2_thirty_instances};
use tetrium::metrics::reduction_pct;
use tetrium::sim::EngineConfig;
use tetrium::workload::{bigdata_like_jobs, tpcds_like_jobs};
use tetrium::{isolated_service_times, run_workload, SchedulerKind};
use tetrium_cluster::Cluster;
use tetrium_jobs::Job;

fn workloads(cluster: &Cluster, seed: u64) -> Vec<(&'static str, Vec<Job>)> {
    let n = if quick_mode() { 6 } else { 10 };
    let mut rng = StdRng::seed_from_u64(seed);
    let tpcds = tpcds_like_jobs(cluster, n, 30.0, 8.0, &mut rng);
    let bigdata = bigdata_like_jobs(cluster, n, 15.0, 20.0, &mut rng);
    vec![("TPC-DS", tpcds), ("Big-Data", bigdata)]
}

/// Runs the four workload × cluster combinations under the three schedulers
/// and prints both figures' reductions.
pub fn run() {
    banner("fig5+fig6", "EC2 comparison: response time and slowdown");
    let clusters = [
        ("8-site", ec2_eight_regions()),
        ("30-site", ec2_thirty_instances()),
    ];
    println!(
        "{:<22} {:>14} {:>14} | {:>14} {:>14}",
        "workload,cluster", "RT vs In-Place", "RT vs Iridium", "SD vs In-Place", "SD vs Iridium"
    );
    let mut rows = Vec::new();
    for (cname, cluster) in clusters {
        for (wname, jobs) in workloads(&cluster, 50) {
            let cfg = EngineConfig::trace_like(5);
            let runs: Vec<_> = [
                SchedulerKind::Tetrium,
                SchedulerKind::InPlace,
                SchedulerKind::Iridium,
            ]
            .into_iter()
            .map(|k| {
                run_workload(cluster.clone(), jobs.clone(), k, cfg.clone()).expect("completes")
            })
            .collect();
            let isolated =
                isolated_service_times(&cluster, &jobs, SchedulerKind::Tetrium).unwrap();
            let slowdown = |r: &tetrium::sim::RunReport| -> f64 {
                let s = tetrium::metrics::slowdowns(r, &isolated);
                s.iter().sum::<f64>() / s.len() as f64
            };
            let rt_ip = reduction_pct(runs[1].avg_response(), runs[0].avg_response());
            let rt_ir = reduction_pct(runs[2].avg_response(), runs[0].avg_response());
            let sd_ip = reduction_pct(slowdown(&runs[1]), slowdown(&runs[0]));
            let sd_ir = reduction_pct(slowdown(&runs[2]), slowdown(&runs[0]));
            println!(
                "{:<22} {:>13.0}% {:>13.0}% | {:>13.0}% {:>13.0}%",
                format!("{wname}, {cname}"),
                rt_ip,
                rt_ir,
                sd_ip,
                sd_ir
            );
            rows.push(serde_json::json!({
                "workload": wname,
                "cluster": cname,
                "rt_reduction_vs_inplace_pct": rt_ip,
                "rt_reduction_vs_iridium_pct": rt_ir,
                "slowdown_reduction_vs_inplace_pct": sd_ip,
                "slowdown_reduction_vs_iridium_pct": sd_ir,
                "tetrium_avg_response_s": runs[0].avg_response(),
            }));
        }
    }
    println!("(paper: Fig 5 up to 78% vs In-Place / 55% vs Iridium; Fig 6 up to 45% / 16%)");
    write_record("fig5", &serde_json::json!({ "rows": rows }));
    write_record("fig6", &serde_json::json!({ "rows": rows }));
}
