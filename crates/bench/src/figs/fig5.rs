//! Fig 5 + Fig 6: EC2 deployment comparison.
//!
//! Reduction in average response time (Fig 5) and average slowdown (Fig 6)
//! of Tetrium vs In-Place and Iridium, for the TPC-DS-like and
//! BigData-benchmark-like workloads on the 8-region and 30-instance EC2
//! presets. The paper reports up to 78% vs In-Place and up to 55% vs
//! Iridium, with larger gains for TPC-DS (longer stage chains) and for the
//! 30-site setting (more placement freedom).

use crate::runner::{cell, run_cells, Cell, CellFn};
use crate::{banner, obs_entry, quick_mode, trace_engine, write_obs_record, write_record};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::{ec2_eight_regions, ec2_thirty_instances};
use tetrium::metrics::reduction_pct;
use tetrium::workload::{bigdata_like_jobs, tpcds_like_jobs};
use tetrium::{isolated_service_times, run_workload, SchedulerKind};
use tetrium_cluster::Cluster;
use tetrium_jobs::Job;

fn workloads(cluster: &Cluster, seed: u64) -> Vec<(&'static str, Vec<Job>)> {
    let n = if quick_mode() { 6 } else { 10 };
    let mut rng = StdRng::seed_from_u64(seed);
    let tpcds = tpcds_like_jobs(cluster, n, 30.0, 8.0, &mut rng);
    let bigdata = bigdata_like_jobs(cluster, n, 15.0, 20.0, &mut rng);
    vec![("TPC-DS", tpcds), ("Big-Data", bigdata)]
}

/// A fig5 cell's result: either a scheduler run or the isolated-service
/// baseline used by the slowdown metric.
enum Out {
    Run(Box<tetrium::sim::RunReport>),
    Isolated(Vec<f64>),
}

impl Out {
    fn run(self) -> tetrium::sim::RunReport {
        match self {
            Out::Run(r) => *r,
            Out::Isolated(_) => unreachable!("cell layout: runs come first"),
        }
    }
    fn isolated(self) -> Vec<f64> {
        match self {
            Out::Isolated(v) => v,
            Out::Run(_) => unreachable!("cell layout: isolated comes last"),
        }
    }
}

/// Runs the four workload × cluster combinations under the three schedulers
/// and prints both figures' reductions. Each combination contributes four
/// cells — Tetrium, In-Place, Iridium, and the isolated-service baseline —
/// all independent, so the whole grid runs in parallel.
pub fn run() {
    banner("fig5+fig6", "EC2 comparison: response time and slowdown");
    let clusters = [
        ("8-site", ec2_eight_regions()),
        ("30-site", ec2_thirty_instances()),
    ];
    println!(
        "{:<22} {:>14} {:>14} | {:>14} {:>14}",
        "workload,cluster", "RT vs In-Place", "RT vs Iridium", "SD vs In-Place", "SD vs Iridium"
    );
    let combos: Vec<(&'static str, &Cluster, &'static str, Vec<Job>)> = clusters
        .iter()
        .flat_map(|(cname, cluster)| {
            workloads(cluster, 50)
                .into_iter()
                .map(move |(wname, jobs)| (*cname, cluster, wname, jobs))
        })
        .collect();
    let mut cells: Vec<(Cell, CellFn<'_, Out>)> = Vec::new();
    for (cname, cluster, wname, jobs) in &combos {
        let workload = format!("{wname}/{cname}");
        for (sname, kind) in [
            ("tetrium", SchedulerKind::Tetrium),
            ("in-place", SchedulerKind::InPlace),
            ("iridium", SchedulerKind::Iridium),
        ] {
            cells.push(cell(
                Cell::new("fig5", sname, workload.clone(), 5),
                move || {
                    let cfg = trace_engine(5);
                    Out::Run(Box::new(
                        run_workload((**cluster).clone(), jobs.clone(), kind, cfg)
                            .expect("completes"),
                    ))
                },
            ));
        }
        cells.push(cell(
            Cell::new("fig5", "isolated", workload.clone(), 5),
            move || {
                Out::Isolated(
                    isolated_service_times(cluster, jobs, SchedulerKind::Tetrium).unwrap(),
                )
            },
        ));
    }
    let mut results = run_cells(cells).into_iter();

    let mut rows = Vec::new();
    let mut obs_cells = Vec::new();
    for (cname, _, wname, _) in &combos {
        let runs: Vec<_> = (0..3).map(|_| results.next().unwrap().run()).collect();
        for (sname, r) in ["tetrium", "in-place", "iridium"].iter().zip(&runs) {
            obs_cells.extend(obs_entry(format!("{sname}/{wname}/{cname}"), r));
        }
        let isolated = results.next().unwrap().isolated();
        let slowdown = |r: &tetrium::sim::RunReport| -> f64 {
            let s = tetrium::metrics::slowdowns(r, &isolated);
            s.iter().sum::<f64>() / s.len() as f64
        };
        let rt_ip = reduction_pct(runs[1].avg_response(), runs[0].avg_response());
        let rt_ir = reduction_pct(runs[2].avg_response(), runs[0].avg_response());
        let sd_ip = reduction_pct(slowdown(&runs[1]), slowdown(&runs[0]));
        let sd_ir = reduction_pct(slowdown(&runs[2]), slowdown(&runs[0]));
        println!(
            "{:<22} {:>13.0}% {:>13.0}% | {:>13.0}% {:>13.0}%",
            format!("{wname}, {cname}"),
            rt_ip,
            rt_ir,
            sd_ip,
            sd_ir
        );
        rows.push(serde_json::json!({
            "workload": wname,
            "cluster": cname,
            "rt_reduction_vs_inplace_pct": rt_ip,
            "rt_reduction_vs_iridium_pct": rt_ir,
            "slowdown_reduction_vs_inplace_pct": sd_ip,
            "slowdown_reduction_vs_iridium_pct": sd_ir,
            "tetrium_avg_response_s": runs[0].avg_response(),
        }));
    }
    println!("(paper: Fig 5 up to 78% vs In-Place / 55% vs Iridium; Fig 6 up to 45% / 16%)");
    write_record("fig5", &serde_json::json!({ "rows": rows }));
    write_record("fig6", &serde_json::json!({ "rows": rows }));
    write_obs_record("fig5", &obs_cells);
}
