//! Substrate-scale sweep: a fig5-style scheduler comparison on the
//! `--sites N` Zipf preset (default 1000 sites).
//!
//! The paper's clusters stop at 30 sites; this sweep exists to prove the
//! sparse substrate (revised simplex + sharded waterfiller) carries a
//! four-digit site count end to end: three schedulers over a trace-like
//! workload, reporting Tetrium's response-time reduction exactly as Fig 5
//! does. `TETRIUM_QUICK=1` (the CI scale-smoke job) shrinks the job count
//! so the sweep stays in smoke-test budget.

use crate::runner::{cell, run_cells, Cell, CellFn};
use crate::{banner, quick_mode, write_record};
use std::time::Instant;
use tetrium::metrics::reduction_pct;
use tetrium::sim::{EngineConfig, RunReport};
use tetrium::{run_workload, SchedulerKind};
use tetrium_workload::ScalePreset;

/// Runs the sweep on a `sites`-site preset and writes the
/// `scale_<sites>` record.
pub fn run(sites: usize) {
    banner(
        "scale",
        &format!("{sites}-site substrate sweep: response time vs baselines"),
    );
    let preset = ScalePreset::new(sites, 83);
    let jobs = preset.jobs(if quick_mode() { 3 } else { 6 }, 84);
    let total_tasks: usize = jobs.iter().map(tetrium_jobs::Job::total_tasks).sum();
    println!("{sites} sites, {} jobs, {total_tasks} tasks", jobs.len());

    let schedulers = [
        ("tetrium", SchedulerKind::Tetrium),
        ("in-place", SchedulerKind::InPlace),
        ("iridium", SchedulerKind::Iridium),
    ];
    let t0 = Instant::now();
    let cells: Vec<(Cell, CellFn<'_, RunReport>)> = schedulers
        .iter()
        .map(|(sname, kind)| {
            let (cluster, jobs) = (&preset.cluster, &jobs);
            cell(
                Cell::new("scale", *sname, format!("{sites}-sites"), 83),
                move || {
                    run_workload(
                        cluster.clone(),
                        jobs.clone(),
                        kind.clone(),
                        EngineConfig::default(),
                    )
                    .expect("completes")
                },
            )
        })
        .collect();
    let runs = run_cells(cells);
    let wall = t0.elapsed().as_secs_f64();

    let avg: Vec<f64> = runs.iter().map(RunReport::avg_response).collect();
    for (&(sname, _), &a) in schedulers.iter().zip(&avg) {
        println!("{sname:<13} avg response {a:>10.1} s");
    }
    let rt_ip = reduction_pct(avg[1], avg[0]);
    let rt_ir = reduction_pct(avg[2], avg[0]);
    println!(
        "tetrium reduction: {rt_ip:.0}% vs in-place, {rt_ir:.0}% vs iridium \
         ({wall:.1} s wall)"
    );
    write_record(
        &format!("scale_{sites}"),
        &serde_json::json!({
            "sites": sites,
            "jobs": jobs.len(),
            "tasks": total_tasks,
            "wall_secs": wall,
            "avg_response_s": {
                "tetrium": avg[0],
                "in-place": avg[1],
                "iridium": avg[2],
            },
            "rt_reduction_vs_inplace_pct": rt_ip,
            "rt_reduction_vs_iridium_pct": rt_ir,
        }),
    );
}
