//! Fig 8: 50-site trace-driven comparison with design-choice ablations.
//!
//! (a) Reduction in average response time of Tetrium vs In-Place and
//! Centralized, plus the ablations Tetrium+FS (fair scheduling instead of
//! SRPT), +I-task (Iridium's placement under Tetrium's job scheduling) and
//! +I-data (Iridium's proactive data placement on top of Tetrium).
//! (b) CDF of per-job response-time reduction vs both baselines.

use crate::runner::{cell, run_cells, Cell, CellFn};
use crate::{
    banner, fifty_sites, obs_entry, rt_reduction, run, trace_workload, write_obs_record,
    write_record,
};
use tetrium::baselines::iridium_data_move;
use tetrium::core::{JobPolicy, PlacementPolicy, TetriumConfig};
use tetrium::metrics::{per_job_reduction, Cdf};
use tetrium::SchedulerKind;

/// Runs the comparison and prints reductions plus CDF quantiles. The six
/// variants (Tetrium, In-Place, Centralized, +FS, +I-task, +I-data) are
/// independent cells over the same workload and run in parallel.
pub fn run_fig() {
    banner("fig8", "trace-driven 50-site comparison and ablations");
    let cluster = fifty_sites(1);
    let jobs = trace_workload(&cluster, 2);

    let mut cells: Vec<(Cell, CellFn<'_, _>)> = Vec::new();
    for (name, kind) in [
        ("tetrium", SchedulerKind::Tetrium),
        ("in-place", SchedulerKind::InPlace),
        ("centralized", SchedulerKind::Centralized),
        (
            "tetrium+fs",
            SchedulerKind::TetriumWith(TetriumConfig {
                job_policy: JobPolicy::Fair,
                ..TetriumConfig::default()
            }),
        ),
        (
            "tetrium+i-task",
            SchedulerKind::TetriumWith(TetriumConfig {
                placement: PlacementPolicy::IridiumNet,
                ..TetriumConfig::default()
            }),
        ),
    ] {
        cells.push(cell(Cell::new("fig8", name, "trace-50", 7), {
            let cluster = &cluster;
            let jobs = &jobs;
            move || run(cluster, jobs, kind, 7)
        }));
    }
    // +I-data: move input data in advance per Iridium's heuristic, charge
    // the moved bytes, then run plain Tetrium on the transformed inputs.
    cells.push(cell(Cell::new("fig8", "tetrium+i-data", "trace-50", 7), {
        let cluster = &cluster;
        let jobs = &jobs;
        move || {
            let up: Vec<f64> = cluster.iter().map(|(_, s)| s.up_gbps).collect();
            let down: Vec<f64> = cluster.iter().map(|(_, s)| s.down_gbps).collect();
            let mut moved = 0.0;
            let idata_jobs: Vec<_> = jobs
                .iter()
                .cloned()
                .map(|mut j| {
                    for st in &mut j.stages {
                        if let Some(input) = st.input.take() {
                            let (new_input, m) = iridium_data_move(&input, &up, &down, 0.5);
                            moved += m;
                            st.input = Some(new_input);
                        }
                    }
                    j
                })
                .collect();
            let mut r = run(cluster, &idata_jobs, SchedulerKind::Tetrium, 7);
            r.total_wan_gb += moved;
            r
        }
    }));
    let mut results = run_cells(cells).into_iter();
    let tetrium = results.next().unwrap();
    let inplace = results.next().unwrap();
    let central = results.next().unwrap();
    let fs = results.next().unwrap();
    let itask = results.next().unwrap();
    let idata = results.next().unwrap();

    let mut obs_cells = Vec::new();
    for (name, r) in [
        ("tetrium", &tetrium),
        ("in-place", &inplace),
        ("centralized", &central),
        ("tetrium+fs", &fs),
        ("tetrium+i-task", &itask),
        ("tetrium+i-data", &idata),
    ] {
        obs_cells.extend(obs_entry(format!("{name}/trace-50"), r));
    }
    write_obs_record("fig8", &obs_cells);

    println!("\n(a) reduction in average response time");
    println!(
        "{:<16} {:>14} {:>16}",
        "variant", "vs In-Place", "vs Centralized"
    );
    let mut rows = Vec::new();
    for (r, name) in [
        (&tetrium, tetrium.scheduler.as_str()),
        (&fs, fs.scheduler.as_str()),
        (&itask, itask.scheduler.as_str()),
        (&idata, "tetrium+i-data"),
    ] {
        let vs_ip = rt_reduction(&inplace, r);
        let vs_ce = rt_reduction(&central, r);
        println!("{name:<16} {vs_ip:>13.0}% {vs_ce:>15.0}%");
        rows.push(serde_json::json!({
            "variant": name,
            "vs_inplace_pct": vs_ip,
            "vs_centralized_pct": vs_ce,
            "avg_response_s": r.avg_response(),
            "wan_gb": r.total_wan_gb,
        }));
    }
    println!("(paper: Tetrium 42% / 50%; Tetrium+FS 26% / 35%; +I-task and +I-data below Tetrium)");

    println!("\n(b) CDF of per-job reduction vs In-Place / vs Centralized");
    let cdf_ip = Cdf::new(
        per_job_reduction(&inplace, &tetrium)
            .into_iter()
            .map(|(_, v)| v)
            .collect(),
    );
    let cdf_ce = Cdf::new(
        per_job_reduction(&central, &tetrium)
            .into_iter()
            .map(|(_, v)| v)
            .collect(),
    );
    let mut cdf_rows = Vec::new();
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let a = cdf_ip.quantile(q).expect("workload has at least one job");
        let b = cdf_ce.quantile(q).expect("workload has at least one job");
        println!("  p{:>2}: {a:>6.0}% / {b:>6.0}%", (q * 100.0) as u32);
        cdf_rows.push(serde_json::json!({"q": q, "vs_inplace_pct": a, "vs_centralized_pct": b}));
    }

    write_record(
        "fig8",
        &serde_json::json!({
            "reductions": rows,
            "cdf": cdf_rows,
            "baselines": {
                "inplace_avg_s": inplace.avg_response(),
                "centralized_avg_s": central.avg_response(),
            },
        }),
    );
}
