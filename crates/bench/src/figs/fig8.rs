//! Fig 8: 50-site trace-driven comparison with design-choice ablations.
//!
//! (a) Reduction in average response time of Tetrium vs In-Place and
//! Centralized, plus the ablations Tetrium+FS (fair scheduling instead of
//! SRPT), +I-task (Iridium's placement under Tetrium's job scheduling) and
//! +I-data (Iridium's proactive data placement on top of Tetrium).
//! (b) CDF of per-job response-time reduction vs both baselines.

use crate::{banner, fifty_sites, run, rt_reduction, trace_workload, write_record};
use tetrium::baselines::iridium_data_move;
use tetrium::core::{JobPolicy, PlacementPolicy, TetriumConfig};
use tetrium::metrics::{per_job_reduction, Cdf};
use tetrium::SchedulerKind;

/// Runs the comparison and prints reductions plus CDF quantiles.
pub fn run_fig() {
    banner("fig8", "trace-driven 50-site comparison and ablations");
    let cluster = fifty_sites(1);
    let jobs = trace_workload(&cluster, 2);

    let tetrium = run(&cluster, &jobs, SchedulerKind::Tetrium, 7);
    let inplace = run(&cluster, &jobs, SchedulerKind::InPlace, 7);
    let central = run(&cluster, &jobs, SchedulerKind::Centralized, 7);
    let fs = run(
        &cluster,
        &jobs,
        SchedulerKind::TetriumWith(TetriumConfig {
            job_policy: JobPolicy::Fair,
            ..TetriumConfig::default()
        }),
        7,
    );
    let itask = run(
        &cluster,
        &jobs,
        SchedulerKind::TetriumWith(TetriumConfig {
            placement: PlacementPolicy::IridiumNet,
            ..TetriumConfig::default()
        }),
        7,
    );
    // +I-data: move input data in advance per Iridium's heuristic, charge
    // the moved bytes, then run plain Tetrium on the transformed inputs.
    let (idata_jobs, moved_gb) = {
        let up: Vec<f64> = cluster.iter().map(|(_, s)| s.up_gbps).collect();
        let down: Vec<f64> = cluster.iter().map(|(_, s)| s.down_gbps).collect();
        let mut moved = 0.0;
        let jobs2: Vec<_> = jobs
            .iter()
            .cloned()
            .map(|mut j| {
                for st in &mut j.stages {
                    if let Some(input) = st.input.take() {
                        let (new_input, m) = iridium_data_move(&input, &up, &down, 0.5);
                        moved += m;
                        st.input = Some(new_input);
                    }
                }
                j
            })
            .collect();
        (jobs2, moved)
    };
    let mut idata = run(&cluster, &idata_jobs, SchedulerKind::Tetrium, 7);
    idata.total_wan_gb += moved_gb;

    println!("\n(a) reduction in average response time");
    println!(
        "{:<16} {:>14} {:>16}",
        "variant", "vs In-Place", "vs Centralized"
    );
    let mut rows = Vec::new();
    for r in [&tetrium, &fs, &itask, &idata] {
        let name = if std::ptr::eq(r, &idata) {
            "tetrium+i-data"
        } else {
            r.scheduler.as_str()
        };
        let vs_ip = rt_reduction(&inplace, r);
        let vs_ce = rt_reduction(&central, r);
        println!("{name:<16} {vs_ip:>13.0}% {vs_ce:>15.0}%");
        rows.push(serde_json::json!({
            "variant": name,
            "vs_inplace_pct": vs_ip,
            "vs_centralized_pct": vs_ce,
            "avg_response_s": r.avg_response(),
            "wan_gb": r.total_wan_gb,
        }));
    }
    println!(
        "(paper: Tetrium 42% / 50%; Tetrium+FS 26% / 35%; +I-task and +I-data below Tetrium)"
    );

    println!("\n(b) CDF of per-job reduction vs In-Place / vs Centralized");
    let cdf_ip = Cdf::new(
        per_job_reduction(&inplace, &tetrium)
            .into_iter()
            .map(|(_, v)| v)
            .collect(),
    );
    let cdf_ce = Cdf::new(
        per_job_reduction(&central, &tetrium)
            .into_iter()
            .map(|(_, v)| v)
            .collect(),
    );
    let mut cdf_rows = Vec::new();
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let a = cdf_ip.quantile(q);
        let b = cdf_ce.quantile(q);
        println!("  p{:>2}: {a:>6.0}% / {b:>6.0}%", (q * 100.0) as u32);
        cdf_rows.push(serde_json::json!({"q": q, "vs_inplace_pct": a, "vs_centralized_pct": b}));
    }

    write_record(
        "fig8",
        &serde_json::json!({
            "reductions": rows,
            "cdf": cdf_rows,
            "baselines": {
                "inplace_avg_s": inplace.avg_response(),
                "centralized_avg_s": central.avg_response(),
            },
        }),
    );
}
