//! Fig 12: distribution of the gains by workload characteristic.
//!
//! Per-job response-time reductions of Tetrium vs In-Place, bucketed by
//! (a) the job's intermediate/input data ratio, (b) input-data skew CV,
//! (c) intermediate (reduce-key) skew CV, and (d) the task-duration
//! estimation error. Each bucket reports the fraction of queries that fall
//! into it and the mean gain within it, matching the paired bars of the
//! paper's figure.

use crate::runner::{cell, run_cells, Cell, CellFn};
use crate::{banner, calibrated_trace, fifty_sites, quick_mode, write_record};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::metrics::{bucket_by, per_job_reduction, Bucket};
use tetrium::sim::EngineConfig;
use tetrium::{run_workload, SchedulerKind};
use tetrium_workload::trace_like_jobs;

fn print_buckets(title: &str, buckets: &[Bucket]) -> Vec<serde_json::Value> {
    println!("\n({title})");
    println!("{:>12} {:>12} {:>12}", "bucket", "queries", "mean gain");
    buckets
        .iter()
        .map(|b| {
            println!(
                "{:>12} {:>11.0}% {:>11.0}%",
                b.label,
                b.fraction * 100.0,
                b.mean_gain
            );
            serde_json::json!({
                "bucket": b.label,
                "queries_pct": b.fraction * 100.0,
                "mean_gain_pct": b.mean_gain,
            })
        })
        .collect()
}

/// Per-job sample carrying the characterization axes and the gain.
struct Sample {
    ratio: f64,
    input_skew: f64,
    key_skew: f64,
    est_error: f64,
    gain: f64,
}

/// Runs several paired comparisons (distinct workload seeds) and buckets
/// the pooled per-job gains four ways. Workloads are generated up front;
/// the (seed, scheduler) simulation pairs run as parallel cells.
pub fn run_fig() {
    banner("fig12", "gain distribution by workload characteristic");
    let cluster = fifty_sites(1);
    let mut params = calibrated_trace();
    params.max_tasks = params.max_tasks.min(300);
    let n_jobs = if quick_mode() { 12 } else { 20 };
    let seeds: &[u64] = if quick_mode() { &[12] } else { &[12, 13, 14] };

    let workloads: Vec<(u64, Vec<tetrium_jobs::Job>)> = seeds
        .iter()
        .map(|&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (seed, trace_like_jobs(&cluster, n_jobs, &params, &mut rng))
        })
        .collect();
    let mut grid: Vec<(Cell, CellFn<'_, _>)> = Vec::new();
    for (seed, jobs) in &workloads {
        for (name, kind) in [
            ("tetrium", SchedulerKind::Tetrium),
            ("in-place", SchedulerKind::InPlace),
        ] {
            grid.push(cell(Cell::new("fig12", name, "trace-50", *seed), {
                let cluster = &cluster;
                move || {
                    // Estimation error must actually vary to populate
                    // Fig 12(d).
                    let mut cfg = EngineConfig::trace_like(*seed);
                    cfg.estimation_error = 0.5;
                    run_workload(cluster.clone(), jobs.clone(), kind, cfg).expect("completes")
                }
            }));
        }
    }
    let mut results = run_cells(grid).into_iter();

    let mut samples: Vec<Sample> = Vec::new();
    for (_, jobs) in &workloads {
        let tetrium = results.next().unwrap();
        let inplace = results.next().unwrap();
        let key_skew: HashMap<usize, f64> = jobs
            .iter()
            .map(|j| {
                let cv = j
                    .stages
                    .iter()
                    .map(|s| s.task_skew_cv())
                    .fold(0.0f64, f64::max);
                (j.id.index(), cv)
            })
            .collect();
        let gains = per_job_reduction(&inplace, &tetrium);
        for j in &tetrium.jobs {
            let gain = gains
                .iter()
                .find(|(id, _)| *id == j.id)
                .map(|(_, g)| *g)
                .unwrap_or(0.0);
            samples.push(Sample {
                ratio: j.intermediate_gb / j.input_gb.max(1e-9),
                input_skew: j.input_skew_cv,
                key_skew: key_skew.get(&j.id.index()).copied().unwrap_or(0.0),
                est_error: j.est_error,
                gain,
            });
        }
    }

    let mut record = serde_json::Map::new();
    #[allow(clippy::type_complexity)]
    let axes: [(&str, &str, fn(&Sample) -> f64, &[f64]); 4] = [
        (
            "intermediate_input_ratio",
            "a: intermediate/input ratio",
            |s| s.ratio,
            &[0.2, 0.5, 1.0],
        ),
        (
            "input_skew_cv",
            "b: input data skew (CV)",
            |s| s.input_skew,
            &[0.5, 1.0, 2.0],
        ),
        (
            "intermediate_skew_cv",
            "c: intermediate data skew (CV)",
            |s| s.key_skew,
            &[0.5, 1.0, 2.0],
        ),
        (
            "estimation_error",
            "d: task estimation error",
            |s| s.est_error,
            &[0.1, 0.25, 0.5],
        ),
    ];
    for (key, title, axis, edges) in axes {
        let pairs: Vec<(f64, f64)> = samples.iter().map(|s| (axis(s), s.gain)).collect();
        record.insert(
            key.into(),
            print_buckets(title, &bucket_by(&pairs, edges)).into(),
        );
    }

    println!(
        "\n(paper: gains rise with the ratio and with skew up to CV~2, fall with estimation error)"
    );
    write_record("fig12", &serde_json::Value::Object(record));
}

use std::collections::HashMap;
