//! Fig 12: distribution of the gains by workload characteristic.
//!
//! Per-job response-time reductions of Tetrium vs In-Place, bucketed by
//! (a) the job's intermediate/input data ratio, (b) input-data skew CV,
//! (c) intermediate (reduce-key) skew CV, and (d) the task-duration
//! estimation error. Each bucket reports the fraction of queries that fall
//! into it and the mean gain within it, matching the paired bars of the
//! paper's figure.

use crate::{banner, calibrated_trace, fifty_sites, quick_mode, write_record};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::metrics::{bucket_by, per_job_reduction, Bucket};
use tetrium::sim::EngineConfig;
use tetrium::{run_workload, SchedulerKind};
use tetrium_workload::trace_like_jobs;

fn print_buckets(title: &str, buckets: &[Bucket]) -> Vec<serde_json::Value> {
    println!("\n({title})");
    println!("{:>12} {:>12} {:>12}", "bucket", "queries", "mean gain");
    buckets
        .iter()
        .map(|b| {
            println!(
                "{:>12} {:>11.0}% {:>11.0}%",
                b.label,
                b.fraction * 100.0,
                b.mean_gain
            );
            serde_json::json!({
                "bucket": b.label,
                "queries_pct": b.fraction * 100.0,
                "mean_gain_pct": b.mean_gain,
            })
        })
        .collect()
}

/// Per-job sample carrying the characterization axes and the gain.
struct Sample {
    ratio: f64,
    input_skew: f64,
    key_skew: f64,
    est_error: f64,
    gain: f64,
}

/// Runs several paired comparisons (distinct workload seeds) and buckets
/// the pooled per-job gains four ways.
pub fn run_fig() {
    banner("fig12", "gain distribution by workload characteristic");
    let cluster = fifty_sites(1);
    let mut params = calibrated_trace();
    params.max_tasks = params.max_tasks.min(300);
    let n_jobs = if quick_mode() { 12 } else { 20 };
    let seeds: &[u64] = if quick_mode() { &[12] } else { &[12, 13, 14] };

    let mut samples: Vec<Sample> = Vec::new();
    for &seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = trace_like_jobs(&cluster, n_jobs, &params, &mut rng);
        remember_key_skew(&jobs);
        // Estimation error must actually vary to populate Fig 12(d).
        let mut cfg = EngineConfig::trace_like(seed);
        cfg.estimation_error = 0.5;
        let tetrium = run_workload(
            cluster.clone(),
            jobs.clone(),
            SchedulerKind::Tetrium,
            cfg.clone(),
        )
        .expect("completes");
        let inplace =
            run_workload(cluster.clone(), jobs, SchedulerKind::InPlace, cfg).expect("completes");
        let gains = per_job_reduction(&inplace, &tetrium);
        for j in &tetrium.jobs {
            let gain = gains
                .iter()
                .find(|(id, _)| *id == j.id)
                .map(|(_, g)| *g)
                .unwrap_or(0.0);
            samples.push(Sample {
                ratio: j.intermediate_gb / j.input_gb.max(1e-9),
                input_skew: j.input_skew_cv,
                key_skew: key_skew_of(j.id),
                est_error: j.est_error,
                gain,
            });
        }
    }

    let mut record = serde_json::Map::new();
    #[allow(clippy::type_complexity)]
    let axes: [(&str, &str, fn(&Sample) -> f64, &[f64]); 4] = [
        (
            "intermediate_input_ratio",
            "a: intermediate/input ratio",
            |s| s.ratio,
            &[0.2, 0.5, 1.0],
        ),
        (
            "input_skew_cv",
            "b: input data skew (CV)",
            |s| s.input_skew,
            &[0.5, 1.0, 2.0],
        ),
        (
            "intermediate_skew_cv",
            "c: intermediate data skew (CV)",
            |s| s.key_skew,
            &[0.5, 1.0, 2.0],
        ),
        (
            "estimation_error",
            "d: task estimation error",
            |s| s.est_error,
            &[0.1, 0.25, 0.5],
        ),
    ];
    for (key, title, axis, edges) in axes {
        let pairs: Vec<(f64, f64)> = samples.iter().map(|s| (axis(s), s.gain)).collect();
        record.insert(key.into(), print_buckets(title, &bucket_by(&pairs, edges)).into());
    }

    println!("\n(paper: gains rise with the ratio and with skew up to CV~2, fall with estimation error)");
    write_record("fig12", &serde_json::Value::Object(record));
}

/// Maximum reduce-key skew CV across a job's stages, re-derived from the
/// same generator stream so it matches the simulated jobs.
fn key_skew_of(id: tetrium_jobs::JobId) -> f64 {
    // The workload above is regenerated deterministically; rather than
    // threading the job list through, look the value up from a cached copy.
    JOBS_SKEW.with(|m| m.borrow().get(&id.index()).copied().unwrap_or(0.0))
}

use std::cell::RefCell;
use std::collections::HashMap;
thread_local! {
    static JOBS_SKEW: RefCell<HashMap<usize, f64>> = RefCell::new(HashMap::new());
}

/// Records per-job key-skew CVs before the runs consume the job list.
pub fn remember_key_skew(jobs: &[tetrium_jobs::Job]) {
    JOBS_SKEW.with(|m| {
        let mut m = m.borrow_mut();
        for j in jobs {
            let cv = j
                .stages
                .iter()
                .map(|s| s.task_skew_cv())
                .fold(0.0f64, f64::max);
            m.insert(j.id.index(), cv);
        }
    });
}
