//! Fig 9: task-ordering strategy combinations.
//!
//! Four combinations of map ordering (Remote-First/Spread vs Local-First)
//! and reduce ordering (Longest-First vs Random), reported as reduction in
//! average response time vs In-Place. The paper finds Remote-First +
//! Longest-First best, with most of the gain from the map-side rule.

use crate::runner::{cell, run_cells, Cell, CellFn};
use crate::{banner, fifty_sites, rt_reduction, run, trace_workload, write_record};
use tetrium::core::{MapOrdering, ReduceOrdering, TetriumConfig};
use tetrium::SchedulerKind;

/// Runs the 2×2 ordering grid plus the In-Place baseline as five parallel
/// cells.
pub fn run_fig() {
    banner("fig9", "task ordering strategies (vs In-Place)");
    let cluster = fifty_sites(1);
    let jobs = trace_workload(&cluster, 3);

    let combos = [
        (
            "remote-first + longest-first",
            MapOrdering::RemoteFirstSpread,
            ReduceOrdering::LongestFirst,
        ),
        (
            "remote-first + random",
            MapOrdering::RemoteFirstSpread,
            ReduceOrdering::Random,
        ),
        (
            "local-first + longest-first",
            MapOrdering::LocalFirst,
            ReduceOrdering::LongestFirst,
        ),
        (
            "local-first + random",
            MapOrdering::LocalFirst,
            ReduceOrdering::Random,
        ),
    ];
    let mut cells: Vec<(Cell, CellFn<'_, _>)> =
        vec![cell(Cell::new("fig9", "in-place", "trace-50", 9), || {
            run(&cluster, &jobs, SchedulerKind::InPlace, 9)
        })];
    for (name, map_o, red_o) in combos {
        cells.push(cell(Cell::new("fig9", name, "trace-50", 9), {
            let cluster = &cluster;
            let jobs = &jobs;
            move || {
                run(
                    cluster,
                    jobs,
                    SchedulerKind::TetriumWith(TetriumConfig {
                        map_ordering: map_o,
                        reduce_ordering: red_o,
                        ..TetriumConfig::default()
                    }),
                    9,
                )
            }
        }));
    }
    let mut results = run_cells(cells).into_iter();
    let inplace = results.next().unwrap();

    let mut rows = Vec::new();
    for ((name, _, _), r) in combos.iter().zip(results) {
        let red = rt_reduction(&inplace, &r);
        println!("  {name:<32} {red:>6.0}%");
        rows.push(serde_json::json!({"combo": name, "vs_inplace_pct": red}));
    }
    println!("(paper: the proposed remote-first + longest-first combination is best)");
    write_record("fig9", &serde_json::json!({ "rows": rows }));
}
