//! Regenerates the paper's vs_tetris artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::vs_tetris::run_fig();
}
