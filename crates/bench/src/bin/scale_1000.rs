//! 1000-site substrate sweep (override with `--sites N`); see
//! `tetrium_bench::figs::scale`.
fn main() {
    let sites = tetrium_workload::sites_from_args(1000);
    tetrium_bench::figs::scale::run(sites);
}
