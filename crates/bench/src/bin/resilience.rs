//! Regenerates the mid-run-dynamics resilience sweep; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::resilience::run_fig();
}
