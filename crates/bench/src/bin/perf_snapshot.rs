//! Records the performance baseline consumed by future PRs: engine
//! throughput (tasks simulated per second on the 30-site trace workload —
//! the same one `benches/engine_throughput.rs` times), the WAN flow
//! simulator's churn micro-benchmark (`benches/flowsim_churn.rs`), the
//! scheduling-instance latency of the recurring dashboard stream with the
//! template plan cache off vs on (DESIGN.md §11), and, when a prior
//! `all_figures` run left `target/experiments/harness_wallclock.json`
//! behind, the harness wall-clock. Writes `benchmarks/perf_baseline.json`
//! (committed to the repo).
//!
//! Usage: `cargo run --release --bin perf_snapshot` (run `all_figures`
//! first to include the harness wall-clock).
//!
//! `--check` compares the measured median against the committed baseline
//! instead of overwriting it, and exits non-zero when the engine (with the
//! no-op obs sink — `record_obs` stays false here) regressed by more than
//! the tolerance. CI runs this to enforce the obs-off overhead contract
//! (DESIGN.md §8).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tetrium::cluster::ec2_thirty_instances;
use tetrium::core::{PlanCacheMode, TetriumConfig};
use tetrium::{run_workload, SchedulerKind};
use tetrium_bench::churn::run_flowsim_churn;
use tetrium_sim::EngineConfig;
use tetrium_workload::ingest::{
    parse_trace_str, scenario_from_trace, trace_from_jobs, validate, TraceProfile, ValidatorConfig,
};
use tetrium_workload::{recurring_dashboard_jobs, trace_like_jobs, RecurringParams, TraceParams};

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    // The perf gate must never time auditor overhead: refuse to measure a
    // build carrying the `audit` feature (DESIGN.md §10).
    assert!(
        !tetrium_sim::audit_enabled() || !check,
        "perf_snapshot --check refuses to run with the `audit` feature \
         enabled; rebuild without it"
    );
    let cluster = ec2_thirty_instances();
    let params = TraceParams {
        median_input_gb: 10.0,
        mean_interarrival_secs: 30.0,
        mean_task_secs: 5.0,
        tasks_per_gb: 4.0,
        max_tasks: 150,
        ..TraceParams::default()
    };
    let mut rng = StdRng::seed_from_u64(30);
    let jobs = trace_like_jobs(&cluster, 8, &params, &mut rng);
    let total_tasks: usize = jobs.iter().map(|j| j.total_tasks()).sum();

    // Median of several full runs: robust to one-off scheduling noise
    // without criterion's multi-second calibration loop.
    let mut secs: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            run_workload(
                cluster.clone(),
                jobs.clone(),
                SchedulerKind::Tetrium,
                EngineConfig::trace_like(30),
            )
            .expect("completes");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.total_cmp(b));
    let median = secs[secs.len() / 2];
    let tasks_per_sec = total_tasks as f64 / median;
    println!(
        "engine_throughput: {total_tasks} tasks in {median:.3} s -> {tasks_per_sec:.0} tasks/s"
    );

    let (churn_events, churn_median) = flowsim_churn_median();
    let churn_events_per_sec = churn_events as f64 / churn_median;
    println!(
        "flowsim_churn: {churn_events} events in {churn_median:.3} s -> {churn_events_per_sec:.0} events/s"
    );

    let resilience_median = resilience_sweep_median();
    println!("resilience_sweep: 6 clean/degraded runs in {resilience_median:.3} s");

    let (sched_cold, sched_cached) = sched_latency_medians();
    let sched_speedup = sched_cold / sched_cached.max(1e-12);
    println!(
        "sched_latency: cold {:.1} us vs cached {:.1} us per planning instance -> {sched_speedup:.1}x",
        sched_cold * 1e6,
        sched_cached * 1e6
    );

    let (serve_jobs, serve_median) = serve_throughput_median();
    let serve_jobs_per_sec = serve_jobs as f64 / serve_median;
    println!(
        "serve_throughput: {serve_jobs} jobs in {serve_median:.3} s -> {serve_jobs_per_sec:.1} jobs/s"
    );

    let (solver_sparse, solver_dense) = solver_time_medians();
    let solver_speedup = solver_dense / solver_sparse.max(1e-12);
    println!(
        "solver_time: sparse {:.2} ms vs dense {:.2} ms per 100-site map LP -> {solver_speedup:.1}x",
        solver_sparse * 1e3,
        solver_dense * 1e3
    );

    let (ingest_rows, ingest_median) = trace_ingest_median();
    let ingest_rows_per_sec = ingest_rows as f64 / ingest_median;
    println!(
        "trace_ingest: {ingest_rows} rows in {ingest_median:.3} s -> {ingest_rows_per_sec:.0} rows/s"
    );

    if check {
        check_against_baseline(
            median,
            churn_median,
            resilience_median,
            serve_median,
            ingest_median,
            sched_speedup,
            solver_speedup,
        );
        return;
    }

    let mut snapshot = serde_json::json!({
        "engine_throughput": {
            "workload": "trace-30-sites",
            "jobs": jobs.len(),
            "tasks": total_tasks,
            "median_run_secs": median,
            "tasks_per_sec": tasks_per_sec,
        },
        "flowsim_churn": {
            "workload": "churn-30-sites",
            "events": churn_events,
            "median_run_secs": churn_median,
            "events_per_sec": churn_events_per_sec,
        },
        "resilience_sweep": {
            "workload": "drop-30-sites",
            "runs": 6,
            "median_run_secs": resilience_median,
        },
        "sched_latency": {
            "workload": "recurring-dashboard-30-sites",
            "instances": 40,
            "cold_median_secs": sched_cold,
            "cached_median_secs": sched_cached,
            "speedup": sched_speedup,
        },
        "serve_throughput": {
            "workload": "serve-trace-30-sites",
            "shards": 2,
            "jobs": serve_jobs,
            "median_run_secs": serve_median,
            "jobs_per_sec": serve_jobs_per_sec,
        },
        "solver_time": {
            "workload": "map-lp-100-sites",
            "sparse_median_secs": solver_sparse,
            "dense_median_secs": solver_dense,
            "speedup": solver_speedup,
        },
        "trace_ingest": {
            "workload": "trace-file-30-sites",
            "rows": ingest_rows,
            "median_run_secs": ingest_median,
            "rows_per_sec": ingest_rows_per_sec,
        },
    });
    match std::fs::read_to_string("target/experiments/harness_wallclock.json") {
        Ok(body) => match serde_json::from_str::<serde_json::Value>(&body) {
            Ok(wallclock) => snapshot["all_figures"] = wallclock,
            Err(e) => eprintln!("warning: unreadable harness_wallclock.json: {e}"),
        },
        Err(_) => eprintln!(
            "note: no target/experiments/harness_wallclock.json; run all_figures first \
             to include the harness wall-clock"
        ),
    }

    std::fs::create_dir_all("benchmarks").expect("create benchmarks/");
    let path = "benchmarks/perf_baseline.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&snapshot).expect("serializable"),
    )
    .expect("write baseline");
    println!("baseline written to {path}");
}

/// Median wall time of the `FlowSim` churn workload (same shape as
/// `benches/flowsim_churn.rs`), plus the per-run event count.
fn flowsim_churn_median() -> (usize, f64) {
    let events = run_flowsim_churn(30, 2_000, 7);
    let mut secs: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            run_flowsim_churn(30, 2_000, 7);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.total_cmp(b));
    (events, secs[secs.len() / 2])
}

/// Median wall time of the mid-run-dynamics resilience sweep (the same
/// core `tests/resilience.rs` and the `resilience` figure run): three
/// schedulers × {clean, degraded} on the 30-site trace workload. Guards
/// the dynamics event path's overhead in the engine hot loop.
fn resilience_sweep_median() -> f64 {
    use tetrium_bench::figs::resilience::{half_drop_at_biggest_site, sweep};
    let cluster = ec2_thirty_instances();
    let params = TraceParams {
        median_input_gb: 10.0,
        mean_interarrival_secs: 30.0,
        mean_task_secs: 5.0,
        tasks_per_gb: 4.0,
        max_tasks: 150,
        ..TraceParams::default()
    };
    let mut rng = StdRng::seed_from_u64(31);
    let jobs = trace_like_jobs(&cluster, 6, &params, &mut rng);
    let timeline = half_drop_at_biggest_site(&cluster, 60.0);
    let mut secs: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            sweep(1, &cluster, &jobs, &timeline, 31);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.total_cmp(b));
    secs[secs.len() / 2]
}

/// Median wall-clock seconds of one *solving* scheduling instance on the
/// recurring dashboard stream, with the template plan cache off vs on
/// (`--plan-cache full`). A solving instance is one whose `PlannerRecord`
/// shows template-cache activity (any of the `tmpl_*` counters — the
/// scheduler counts cold solves symmetrically in every mode); instances
/// that plan nothing or merely replay a per-stage cached plan are the same
/// cheap bookkeeping in both modes and would drown the signal. Returns
/// `(cold, cached)` — each the median of three runs' per-instance medians.
/// The ratio guards the tentpole of DESIGN.md §11: recurring instances
/// should hit the template cache and skip the LP solve entirely.
fn sched_latency_medians() -> (f64, f64) {
    let cluster = ec2_thirty_instances();
    let one_run = |mode: PlanCacheMode| -> f64 {
        // Same seed for both modes: identical job stream, so the two
        // medians time the same planning work modulo the cache. The phase
        // step matches the stream's own period (120 s of an 86400 s day);
        // the default 0.02 would mean half-hour gaps between instances.
        let params = RecurringParams {
            phase_step: 1.0 / 720.0,
            ..RecurringParams::default()
        };
        let mut rng = StdRng::seed_from_u64(42);
        let jobs = recurring_dashboard_jobs(&cluster, 40, &params, &mut rng);
        let cfg = TetriumConfig {
            plan_cache: mode,
            ..TetriumConfig::default()
        };
        let report = run_workload(
            cluster.clone(),
            jobs,
            SchedulerKind::TetriumWith(cfg),
            EngineConfig {
                record_obs: true,
                ..EngineConfig::default()
            },
        )
        .expect("completes");
        let obs = report.obs.expect("record_obs captures a report");
        // The Tetrium scheduler emits exactly one PlannerRecord per
        // scheduling instance, so the two streams are index-aligned.
        assert_eq!(obs.sched.len(), obs.planner.len(), "records misaligned");
        let mut w: Vec<f64> = obs
            .sched
            .iter()
            .zip(&obs.planner)
            .inspect(|(s, p)| assert_eq!(s.at, p.at, "records misaligned"))
            .filter(|(_, p)| p.tmpl_exact + p.tmpl_patched + p.tmpl_warm + p.tmpl_miss > 0)
            .map(|(s, _)| s.wall_secs)
            .collect();
        assert!(!w.is_empty(), "no planning instances recorded");
        w.sort_by(|a, b| a.total_cmp(b));
        w[w.len() / 2]
    };
    let median3 = |mode: PlanCacheMode| -> f64 {
        let mut m: Vec<f64> = (0..3).map(|_| one_run(mode)).collect();
        m.sort_by(|a, b| a.total_cmp(b));
        m[1]
    };
    (median3(PlanCacheMode::Off), median3(PlanCacheMode::Full))
}

/// Median wall time of a full service run through the `tetrium-serve`
/// front end: build a runtime, start a 2-shard service, stream the 30-site
/// trace workload through `submit`, and `join` (which drains the backlog).
/// Times the whole submit→simulate→merge path, so it guards both the
/// vendored async machinery and the engine's resumable driving mode.
/// Returns `(jobs, median_secs)`.
fn serve_throughput_median() -> (usize, f64) {
    let cluster = ec2_thirty_instances();
    let params = TraceParams {
        median_input_gb: 10.0,
        mean_interarrival_secs: 30.0,
        mean_task_secs: 5.0,
        tasks_per_gb: 4.0,
        max_tasks: 150,
        ..TraceParams::default()
    };
    let mut rng = StdRng::seed_from_u64(33);
    let jobs = trace_like_jobs(&cluster, 8, &params, &mut rng);
    let n_jobs = jobs.len();
    let cfg = tetrium_serve::ServeConfig {
        shards: 2,
        engine: EngineConfig::trace_like(33),
        ..tetrium_serve::ServeConfig::default()
    };
    let mut secs: Vec<f64> = (0..5)
        .map(|_| {
            let rt = tokio::runtime::Builder::new_multi_thread()
                .worker_threads(4)
                .enable_all()
                .build()
                .expect("build runtime");
            let jobs = jobs.clone();
            let cluster = cluster.clone();
            let cfg = cfg.clone();
            let t0 = Instant::now();
            rt.block_on(async move {
                let svc = tetrium_serve::TetriumService::start(&cluster, &cfg);
                for job in jobs {
                    svc.submit(job).await.expect("submit accepted");
                }
                let report = svc.join().await.expect("service run completes");
                assert_eq!(report.total_jobs(), n_jobs, "service dropped jobs");
            });
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.total_cmp(b));
    (n_jobs, secs[secs.len() / 2])
}

/// Compares measured medians against the committed baseline without
/// rewriting it. Fails (exit 1) when any measured time exceeds its baseline
/// by more than the tolerance — 2% by default, overridable through
/// `TETRIUM_PERF_TOLERANCE` (a ratio, e.g. `0.10`) for noisy CI machines.
/// Median per-instance solve latency of the sparse revised simplex vs the
/// dense tableau oracle on the shared 100-site map-placement LP
/// (`benches/solver_time.rs` times the same instance). Guards the
/// tentpole of DESIGN.md §13: the sparse substrate must hold a ≥5x
/// per-instance advantage at 100 sites and beyond.
fn solver_time_medians() -> (f64, f64) {
    let lp = tetrium_bench::map_like_lp(100);
    let time = |runs: usize, f: &dyn Fn()| -> f64 {
        let mut secs: Vec<f64> = (0..runs)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(|a, b| a.total_cmp(b));
        secs[secs.len() / 2]
    };
    let sparse = time(9, &|| {
        lp.solve().expect("sparse solve succeeds");
    });
    let dense = time(3, &|| {
        lp.solve_dense().expect("dense solve succeeds");
    });
    (sparse, dense)
}

/// Median wall time of the full trace-ingestion path — parse the on-disk
/// JSON rendering, run the complete validation gate (drift included,
/// against the trace's own profile), and convert to a scenario — on a
/// 60-job trace over 30 sites. Guards the ingestion gate's overhead: the
/// gate runs on every `run --trace` before the engine sees a single job.
/// Returns `(rows, median_secs)`.
fn trace_ingest_median() -> (usize, f64) {
    let cluster = ec2_thirty_instances();
    let params = TraceParams {
        median_input_gb: 10.0,
        mean_interarrival_secs: 30.0,
        mean_task_secs: 5.0,
        tasks_per_gb: 4.0,
        max_tasks: 150,
        ..TraceParams::default()
    };
    let mut rng = StdRng::seed_from_u64(35);
    let jobs = trace_like_jobs(&cluster, 60, &params, &mut rng);
    let n_jobs = jobs.len();
    let body = trace_from_jobs(&jobs, cluster.len(), "perf-snapshot").to_json();
    let rows = parse_trace_str(&body)
        .expect("exported trace parses")
        .rows
        .len();
    let mut secs: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            let trace = parse_trace_str(&body).expect("exported trace parses");
            let cfg = ValidatorConfig {
                profile: TraceProfile::from_trace(&trace),
                ..ValidatorConfig::default()
            };
            validate(&trace, &cfg).expect("exported trace passes the gate");
            let scenario =
                scenario_from_trace(&trace, cluster.clone(), &cfg).expect("trace converts");
            assert_eq!(scenario.jobs.len(), n_jobs, "ingestion dropped jobs");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.total_cmp(b));
    (rows, secs[secs.len() / 2])
}

fn check_against_baseline(
    median: f64,
    churn_median: f64,
    resilience_median: f64,
    serve_median: f64,
    ingest_median: f64,
    sched_speedup: f64,
    solver_speedup: f64,
) {
    let path = "benchmarks/perf_baseline.json";
    let body =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--check requires {path}: {e}"));
    let baseline: serde_json::Value = serde_json::from_str(&body).expect("valid baseline JSON");
    let tolerance = std::env::var("TETRIUM_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.02);
    let mut failed = false;
    for (name, measured) in [
        ("engine_throughput", median),
        ("flowsim_churn", churn_median),
        ("resilience_sweep", resilience_median),
        ("serve_throughput", serve_median),
        ("trace_ingest", ingest_median),
    ] {
        let Some(base) = baseline[name]["median_run_secs"].as_f64() else {
            println!("perf check: no {name}.median_run_secs in baseline, skipping");
            continue;
        };
        let ratio = measured / base;
        println!(
            "perf check [{name}]: measured {measured:.4} s vs baseline {base:.4} s \
             (ratio {ratio:.3}, tolerance {:.0}%)",
            tolerance * 100.0
        );
        if ratio > 1.0 + tolerance {
            eprintln!("FAIL: {name} regressed beyond tolerance");
            failed = true;
        }
    }
    // The plan-cache speedup is a ratio of two medians measured back to
    // back on the same machine, so it resists absolute-speed noise; the
    // floor sits below the recorded baseline ratio to absorb what little
    // noise remains.
    let floor = 8.0;
    println!("perf check [sched_latency]: cached speedup {sched_speedup:.1}x (floor {floor:.0}x)");
    if sched_speedup < floor {
        eprintln!("FAIL: plan-cache scheduling speedup fell below {floor:.0}x");
        failed = true;
    }
    // Same reasoning: the sparse/dense ratio is measured back to back, so
    // the floor guards the ISSUE 8 acceptance bar (≥5x at 100 sites)
    // directly rather than an absolute latency.
    let solver_floor = 5.0;
    println!(
        "perf check [solver_time]: sparse/dense speedup {solver_speedup:.1}x \
         (floor {solver_floor:.0}x)"
    );
    if solver_speedup < solver_floor {
        eprintln!("FAIL: sparse solver speedup over dense fell below {solver_floor:.0}x");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: within tolerance");
}
