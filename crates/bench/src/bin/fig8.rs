//! Regenerates the paper's fig8 artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::fig8::run_fig();
}
