//! Fig 6 (slowdown) shares its runs with Fig 5; this prints both.
fn main() {
    tetrium_bench::figs::fig5::run();
}
