//! Regenerates the paper's fig11 artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::fig11::run_fig();
}
