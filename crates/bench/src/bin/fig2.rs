//! Regenerates the paper's fig2 artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::fig2::run();
}
