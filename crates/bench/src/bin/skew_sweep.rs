//! Regenerates the paper's skew_sweep artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::skew_sweep::run_fig();
}
