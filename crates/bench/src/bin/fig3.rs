//! Regenerates the paper's fig3 artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::fig3::run();
}
