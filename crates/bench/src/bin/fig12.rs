//! Regenerates the paper's fig12 artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::fig12::run_fig();
}
