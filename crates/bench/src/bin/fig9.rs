//! Regenerates the paper's fig9 artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::fig9::run_fig();
}
