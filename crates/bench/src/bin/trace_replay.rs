//! Regenerates the trace-replay ingestion sweep; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::trace_replay::run_fig();
}
