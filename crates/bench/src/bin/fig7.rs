//! Regenerates the paper's fig7 artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::fig7::run();
}
