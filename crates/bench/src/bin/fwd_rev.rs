//! Regenerates the paper's fwd_rev artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::fwd_rev::run_fig();
}
