//! Regenerates the paper's fig5 artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::fig5::run();
}
