//! Runs the entire harness: every table and figure of the evaluation.
//!
//! Set `TETRIUM_QUICK=1` for a shrunk smoke-test pass. JSON records land in
//! `target/experiments/`.
fn main() {
    use tetrium_bench::figs::*;
    fig2::run();
    fig3::run();
    fig5::run();
    fig7::run();
    fig8::run_fig();
    fig9::run_fig();
    fig10::run_fig();
    fig11::run_fig();
    fig12::run_fig();
    fwd_rev::run_fig();
    vs_tetris::run_fig();
    skew_sweep::run_fig();
    println!("\nall figures regenerated; records in target/experiments/");
}
