//! Runs the entire harness: every table and figure of the evaluation.
//!
//! Set `TETRIUM_QUICK=1` for a shrunk smoke-test pass and `TETRIUM_THREADS`
//! to bound the worker threads (default: all cores). JSON records land in
//! `target/experiments/`.
//!
//! Stdout is byte-identical across thread counts (see DESIGN.md); the
//! wall-clock and thread count go to stderr and to the
//! `harness_wallclock` record, both outside that contract.
fn main() {
    use tetrium_bench::figs::*;
    let threads = tetrium_bench::thread_count();
    eprintln!("[all_figures] running with {threads} worker thread(s)");
    let t0 = std::time::Instant::now();
    fig2::run();
    fig3::run();
    fig5::run();
    fig7::run();
    fig8::run_fig();
    fig9::run_fig();
    fig10::run_fig();
    fig11::run_fig();
    fig12::run_fig();
    fwd_rev::run_fig();
    vs_tetris::run_fig();
    skew_sweep::run_fig();
    resilience::run_fig();
    trace_replay::run_fig();
    let wall = t0.elapsed().as_secs_f64();
    println!("\nall figures regenerated; records in target/experiments/");
    eprintln!("[all_figures] wall-clock {wall:.1} s on {threads} thread(s)");
    tetrium_bench::write_record(
        "harness_wallclock",
        &serde_json::json!({
            "threads": threads,
            "quick": tetrium_bench::quick_mode(),
            "wall_secs": wall,
        }),
    );
}
