//! Regenerates the paper's fig10 artifact; see `tetrium_bench::figs`.
fn main() {
    tetrium_bench::figs::fig10::run_fig();
}
