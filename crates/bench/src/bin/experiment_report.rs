//! Consolidates all JSON records under `target/experiments/` into one
//! summary table — run after `all_figures` (or any subset).

use serde_json::Value;
use std::fs;
use std::path::Path;

fn main() {
    let dir = Path::new("target/experiments");
    if !dir.is_dir() {
        eprintln!("no target/experiments/ directory; run the fig* binaries first");
        std::process::exit(1);
    }
    let mut names: Vec<String> = fs::read_dir(dir)
        .expect("listable directory")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    println!("experiment records ({}):\n", names.len());
    for name in names {
        let path = dir.join(&name);
        let body = match fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                println!("  {name:<18} unreadable: {e}");
                continue;
            }
        };
        let v: Value = match serde_json::from_str(&body) {
            Ok(v) => v,
            Err(e) => {
                println!("  {name:<18} invalid JSON: {e}");
                continue;
            }
        };
        println!("  {:<18} {}", name.trim_end_matches(".json"), summarize(&v));
    }
}

/// One-line gist of a record: the headline numeric fields it carries.
fn summarize(v: &Value) -> String {
    match v {
        Value::Object(map) => {
            let mut parts = Vec::new();
            for (k, val) in map.iter().take(4) {
                match val {
                    Value::Number(n) => parts.push(format!("{k}={n:.4}")),
                    Value::Array(a) => parts.push(format!("{k}[{}]", a.len())),
                    Value::Object(o) => parts.push(format!("{k}{{{}}}", o.len())),
                    other => parts.push(format!("{k}={other}")),
                }
            }
            parts.join("  ")
        }
        other => other.to_string(),
    }
}
