//! Full-DAG what-if estimation.
//!
//! §4.1 notes that ranking jobs by their remaining time *across all stages*
//! would be ideal but is too expensive to run at every scheduling instance
//! (each stage's optimizer must be invoked sequentially on its parents'
//! outputs). Tetrium therefore uses `(G_j, T_j)`. This module implements
//! the expensive ideal as an offline what-if planner: it walks a job's DAG
//! in topological order, solves each stage's placement LP against the
//! intermediate distribution induced by its parents' planned placements,
//! and returns the per-stage and end-to-end analytic times (ceil-wave,
//! worst-case accounting — an upper bound on the engine's realized time for
//! an idle cluster).

use crate::analytic::{evaluate_map_counts, evaluate_reduce_counts, StageTimes};
use crate::map_placement::{solve_map_placement, MapProblem};
use crate::reduce_placement::{solve_reduce_placement, ReduceProblem};
use tetrium_cluster::Cluster;
use tetrium_jobs::{largest_remainder_round, Job, StageKind};
use tetrium_lp::LpError;

/// Per-stage and end-to-end analytic estimate of one job on an idle cluster.
#[derive(Debug, Clone)]
pub struct JobEstimate {
    /// Transfer and compute time of each stage, in DAG order.
    pub per_stage: Vec<StageTimes>,
    /// Sum of stage totals (stages run behind barriers, so chains add; for
    /// branching DAGs this over-counts parallel branches and stays an upper
    /// bound).
    pub total_secs: f64,
    /// WAN bytes the planned placements move, in GB.
    pub wan_gb: f64,
}

/// Plans every stage of `job` with Tetrium's LPs and returns the analytic
/// estimate.
///
/// # Examples
///
/// ```
/// use tetrium_core::estimate_job;
/// use tetrium_workload::{fig4_cluster, fig4_job};
///
/// let est = estimate_job(&fig4_job(), &fig4_cluster()).unwrap();
/// // The paper's hand-built plan for this instance totals 59.83 s.
/// assert!(est.total_secs < 70.0);
/// ```
///
/// # Errors
///
/// Propagates LP failures (the unbudgeted models are always feasible).
pub fn estimate_job(job: &Job, cluster: &Cluster) -> Result<JobEstimate, LpError> {
    let n = cluster.len();
    let slots = cluster.slots_vec();
    let up: Vec<f64> = cluster.iter().map(|(_, s)| s.up_gbps).collect();
    let down: Vec<f64> = cluster.iter().map(|(_, s)| s.down_gbps).collect();

    // Planned output distribution of each stage (GB per site).
    let mut outputs: Vec<Vec<f64>> = Vec::with_capacity(job.stages.len());
    let mut per_stage = Vec::with_capacity(job.stages.len());
    let mut wan_gb = 0.0;
    for (si, stage) in job.stages.iter().enumerate() {
        // Realized (planned) input of this stage.
        let input: Vec<f64> = match &stage.input {
            Some(d) => d.as_slice().to_vec(),
            None => {
                let mut acc = vec![0.0; n];
                for &d in &stage.deps {
                    for (x, v) in acc.iter_mut().enumerate() {
                        *v += outputs[d][x];
                    }
                }
                acc
            }
        };
        let total: f64 = input.iter().sum();
        let has_consumer = job.stages.iter().skip(si + 1).any(|m| m.deps.contains(&si));
        match stage.kind {
            StageKind::Map => {
                let tasks_from = largest_remainder_round(&input, stage.num_tasks);
                let p = MapProblem {
                    input_gb: input.clone(),
                    tasks_from,
                    task_secs: stage.task_secs,
                    up_gbps: up.clone(),
                    down_gbps: down.clone(),
                    slots: slots.clone(),
                    wan_budget_gb: None,
                    forced_dest_gb: None,
                    next_stage_ratio: has_consumer.then_some(stage.output_ratio),
                    dest_limit: (n > 16).then_some(12),
                };
                let placement = solve_map_placement(&p)?;
                wan_gb += placement.wan_gb;
                // Ceil-wave evaluation of the rounded plan.
                let mut moved = vec![vec![0.0; n]; n];
                for x in 0..n {
                    if p.tasks_from[x] == 0 {
                        continue;
                    }
                    let per = input[x] / p.tasks_from[x] as f64;
                    for y in 0..n {
                        if x != y {
                            moved[x][y] = placement.counts[x][y] as f64 * per;
                        }
                    }
                }
                let times = evaluate_map_counts(
                    &moved,
                    &placement.tasks_at,
                    stage.task_secs,
                    &up,
                    &down,
                    &slots,
                    true,
                );
                // Output lands where tasks ran, scaled by the ratio.
                let mut out = vec![0.0; n];
                for x in 0..n {
                    for y in 0..n {
                        out[y] += input[x] * placement.fractions[x][y] * stage.output_ratio;
                    }
                }
                outputs.push(out);
                per_stage.push(times);
            }
            StageKind::Reduce => {
                let p = ReduceProblem {
                    shuffle_gb: input.clone(),
                    num_tasks: stage.num_tasks,
                    task_secs: stage.task_secs,
                    up_gbps: up.clone(),
                    down_gbps: down.clone(),
                    slots: slots.clone(),
                    wan_budget_gb: None,
                    network_only: false,
                    next_stage_out_gb: has_consumer.then_some(total * stage.output_ratio),
                };
                let placement = solve_reduce_placement(&p)?;
                wan_gb += placement.wan_gb;
                let times = evaluate_reduce_counts(
                    &input,
                    &placement.fractions,
                    &placement.tasks_at,
                    stage.task_secs,
                    &up,
                    &down,
                    &slots,
                    true,
                );
                let out: Vec<f64> = placement
                    .fractions
                    .iter()
                    .map(|r| r * total * stage.output_ratio)
                    .collect();
                outputs.push(out);
                per_stage.push(times);
            }
        }
    }
    let total_secs = per_stage.iter().map(|t: &StageTimes| t.total()).sum();
    Ok(JobEstimate {
        per_stage,
        total_secs,
        wan_gb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium_workload::{fig4_cluster, fig4_job};

    #[test]
    fn fig4_estimate_matches_the_paper_ballpark() {
        let est = estimate_job(&fig4_job(), &fig4_cluster()).unwrap();
        assert_eq!(est.per_stage.len(), 2);
        // The paper's hand-built plan totals 59.83 s; the LP-planned
        // ceil-wave estimate must sit in the same ballpark and beat both
        // Iridium (88.5) and Centralized (93).
        assert!(
            est.total_secs > 40.0 && est.total_secs < 70.0,
            "total {}",
            est.total_secs
        );
        assert!(est.wan_gb > 0.0);
    }

    #[test]
    fn chained_job_estimates_every_stage() {
        use tetrium_cluster::DataDistribution;
        use tetrium_jobs::{Job, JobId, Stage};
        let cluster = fig4_cluster();
        let job = Job::new(
            JobId(1),
            "chain",
            0.0,
            vec![
                Stage::root_map(DataDistribution::new(vec![5.0, 5.0, 5.0]), 30, 1.0, 0.6),
                Stage::reduce(vec![0], 20, 1.0, 0.5),
                Stage::reduce(vec![1], 10, 1.0, 0.1),
            ],
        );
        let est = estimate_job(&job, &cluster).unwrap();
        assert_eq!(est.per_stage.len(), 3);
        assert!(est.per_stage.iter().all(|t| t.total() >= 0.0));
        assert!(est.total_secs >= est.per_stage[0].total());
    }
}
