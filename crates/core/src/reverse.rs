//! Reverse (reduce-first) stage planning and forward/reverse selection
//! (§3.4).
//!
//! Tetrium normally plans stage-by-stage in DAG order ("forward"), which can
//! hand the reduce stage an unfavourable intermediate distribution. The
//! paper's diagnostic alternative plans in reverse: (i) pin reduce fractions
//! to the slot distribution `r_x = S_x / Σ S_x`; (ii) solve the reduce LP
//! with the *intermediate distribution* as the decision variable, yielding a
//! desired distribution `I'`; (iii) solve the map LP constrained to produce
//! `I'`. The evaluation (§6.3.1) found best-of-forward/reverse buys only
//! ~3 points over forward, which is why forward is Tetrium's default; both
//! are implemented here so the `fwd_rev` bench can regenerate that
//! comparison.

use crate::map_placement::{solve_map_placement, MapPlacement, MapProblem};
use crate::reduce_placement::{solve_reduce_placement, ReducePlacement, ReduceProblem};
use tetrium_lp::{LpError, Problem, Relation};

/// A joint plan for a map stage followed by a reduce stage.
#[derive(Debug, Clone)]
pub struct JointPlan {
    /// Map-stage placement.
    pub map: MapPlacement,
    /// Reduce-stage placement (planned against the intermediate
    /// distribution the map placement induces).
    pub reduce: ReducePlacement,
    /// Estimated end-to-end duration (sum of both stages' LP times).
    pub est_total: f64,
    /// Which direction produced this plan.
    pub direction: PlanDirection,
}

/// Planning direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDirection {
    /// Map stage planned first (Tetrium's default).
    Forward,
    /// Reduce stage planned first (§3.4's alternative).
    Reverse,
}

/// Parameters of the downstream reduce stage used for joint planning.
#[derive(Debug, Clone, Copy)]
pub struct ReduceStageSpec {
    /// Number of reduce tasks.
    pub num_tasks: usize,
    /// Mean reduce-task seconds.
    pub task_secs: f64,
    /// Output/input ratio of the map stage (how much intermediate data the
    /// map stage produces per GB of input).
    pub map_output_ratio: f64,
}

/// Plans forward: map LP first, then the reduce LP on the induced
/// intermediate distribution.
pub fn plan_forward(map_p: &MapProblem, red: &ReduceStageSpec) -> Result<JointPlan, LpError> {
    let map = solve_map_placement(map_p)?;
    let shuffle = induced_intermediate(map_p, &map, red.map_output_ratio);
    let reduce = solve_reduce_placement(&ReduceProblem {
        shuffle_gb: shuffle,
        num_tasks: red.num_tasks,
        task_secs: red.task_secs,
        up_gbps: map_p.up_gbps.clone(),
        down_gbps: map_p.down_gbps.clone(),
        slots: map_p.slots.clone(),
        wan_budget_gb: None,
        network_only: false,
        next_stage_out_gb: None,
    })?;
    let est_total = map.times.total() + reduce.times.total();
    Ok(JointPlan {
        map,
        reduce,
        est_total,
        direction: PlanDirection::Forward,
    })
}

/// Plans in reverse per §3.4 steps (i)–(iii).
pub fn plan_reverse(map_p: &MapProblem, red: &ReduceStageSpec) -> Result<JointPlan, LpError> {
    let n = map_p.slots.len();
    let total_slots: f64 = map_p.slots.iter().map(|&s| s as f64).sum();
    // (i) Reduce fractions proportional to slots.
    let r: Vec<f64> = map_p
        .slots
        .iter()
        .map(|&s| s as f64 / total_slots)
        .collect();
    let total_inter: f64 = map_p.input_gb.iter().sum::<f64>() * red.map_output_ratio;

    // (ii) Choose the intermediate distribution minimizing shuffle time for
    // the pinned fractions. Variables: I'_x (n), then T_shufl.
    let t_shufl = n;
    let mut lp = Problem::minimize(n + 1);
    lp.set_objective(&[(t_shufl, 1.0)]);
    for x in 0..n {
        // Upload: I'_x (1 - r_x) <= T * up_x.
        lp.add_constraint(
            &[(x, 1.0 - r[x]), (t_shufl, -map_p.up_gbps[x])],
            Relation::Le,
            0.0,
        );
        // Download: r_x (total - I'_x) <= T * down_x.
        lp.add_constraint(
            &[(x, -r[x]), (t_shufl, -map_p.down_gbps[x])],
            Relation::Le,
            -r[x] * total_inter,
        );
    }
    let ones: Vec<(usize, f64)> = (0..n).map(|x| (x, 1.0)).collect();
    lp.add_constraint(&ones, Relation::Eq, total_inter);
    let sol = lp.solve()?;
    let desired_inter: Vec<f64> = (0..n).map(|x| sol.values[x].max(0.0)).collect();

    // (iii) Map LP constrained to produce that intermediate distribution
    // (equivalently: process the matching share of input at each site).
    let input_total: f64 = map_p.input_gb.iter().sum();
    let scale = if total_inter > 0.0 {
        input_total / total_inter
    } else {
        0.0
    };
    let mut constrained = map_p.clone();
    constrained.forced_dest_gb = Some(desired_inter.iter().map(|v| v * scale).collect());
    let map = solve_map_placement(&constrained)?;

    // Evaluate the reduce stage with the pinned fractions on the desired
    // distribution.
    let reduce = {
        let tasks_at = tetrium_jobs::largest_remainder_round(&r, red.num_tasks);
        let times = crate::analytic::evaluate_reduce_counts(
            &desired_inter,
            &r,
            &tasks_at,
            red.task_secs,
            &map_p.up_gbps,
            &map_p.down_gbps,
            &map_p.slots,
            false,
        );
        let wan_gb = (0..n).map(|x| desired_inter[x] * (1.0 - r[x])).sum();
        ReducePlacement {
            fractions: r,
            times,
            slot_demand: (0..n).map(|x| map_p.slots[x].min(tasks_at[x])).collect(),
            tasks_at,
            wan_gb,
        }
    };
    let est_total = map.times.total() + reduce.times.total();
    Ok(JointPlan {
        map,
        reduce,
        est_total,
        direction: PlanDirection::Reverse,
    })
}

/// Computes both plans and returns the better (§6.3.1's "mixed" method).
pub fn plan_best(map_p: &MapProblem, red: &ReduceStageSpec) -> Result<JointPlan, LpError> {
    let fwd = plan_forward(map_p, red)?;
    match plan_reverse(map_p, red) {
        Ok(rev) if rev.est_total < fwd.est_total => Ok(rev),
        _ => Ok(fwd),
    }
}

/// Intermediate data each site holds after the map placement runs: the data
/// processed at a site times the stage's output ratio.
pub fn induced_intermediate(map_p: &MapProblem, map: &MapPlacement, ratio: f64) -> Vec<f64> {
    let n = map_p.input_gb.len();
    let mut inter = vec![0.0; n];
    for x in 0..n {
        for y in 0..n {
            inter[y] += map_p.input_gb[x] * map.fractions[x][y] * ratio;
        }
    }
    inter
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_map() -> MapProblem {
        MapProblem {
            input_gb: vec![20.0, 30.0, 50.0],
            tasks_from: vec![200, 300, 500],
            task_secs: 2.0,
            up_gbps: vec![5.0, 1.0, 2.0],
            down_gbps: vec![5.0, 1.0, 5.0],
            slots: vec![40, 10, 20],
            wan_budget_gb: None,
            forced_dest_gb: None,
            next_stage_ratio: None,
            dest_limit: None,
        }
    }

    fn fig4_reduce() -> ReduceStageSpec {
        ReduceStageSpec {
            num_tasks: 500,
            task_secs: 1.0,
            map_output_ratio: 0.5,
        }
    }

    #[test]
    fn forward_plan_beats_paper_iridium_total() {
        let plan = plan_forward(&fig4_map(), &fig4_reduce()).unwrap();
        // Paper: Iridium 88.5 s end-to-end, better approach 59.83 s
        // (ceil-wave accounting); the LP relaxation must be below both.
        assert!(plan.est_total < 60.0, "forward total {}", plan.est_total);
        assert_eq!(plan.direction, PlanDirection::Forward);
    }

    #[test]
    fn induced_intermediate_conserves_volume() {
        let p = fig4_map();
        let plan = plan_forward(&p, &fig4_reduce()).unwrap();
        let inter = induced_intermediate(&p, &plan.map, 0.5);
        let total: f64 = inter.iter().sum();
        assert!((total - 50.0).abs() < 1e-6);
    }

    #[test]
    fn reverse_plan_is_feasible_and_complete() {
        let plan = plan_reverse(&fig4_map(), &fig4_reduce()).unwrap();
        assert_eq!(plan.map.tasks_at.iter().sum::<usize>(), 1000);
        assert_eq!(plan.reduce.tasks_at.iter().sum::<usize>(), 500);
        assert_eq!(plan.direction, PlanDirection::Reverse);
        // Reduce fractions are slot-proportional: 40/70, 10/70, 20/70.
        assert!((plan.reduce.fractions[0] - 40.0 / 70.0).abs() < 1e-9);
    }

    #[test]
    fn best_is_no_worse_than_forward() {
        let fwd = plan_forward(&fig4_map(), &fig4_reduce()).unwrap();
        let best = plan_best(&fig4_map(), &fig4_reduce()).unwrap();
        assert!(best.est_total <= fwd.est_total + 1e-9);
    }

    #[test]
    fn paper_notes_marginal_improvement() {
        // §3.4: joint planning gives 44.875 vs 50.88 for the worked example
        // under the paper's own accounting. We check the qualitative claim:
        // reverse/mixed is within a modest factor of forward, not a
        // breakthrough.
        let fwd = plan_forward(&fig4_map(), &fig4_reduce()).unwrap();
        let best = plan_best(&fig4_map(), &fig4_reduce()).unwrap();
        assert!(best.est_total >= 0.75 * fwd.est_total);
    }
}
