//! Multi-replica input selection (§8, discussion item (a)).
//!
//! The paper's models assume a single primary copy of each input partition
//! and note that replica choice could be folded into the placement LPs.
//! This module implements the extension as a pre-pass: given each
//! partition's replica sites, pick the copy a job should read so that the
//! prospective drain time of every uplink is balanced — a greedy
//! longest-processing-time assignment over `load_x / B_x^up`. The chosen
//! homes then feed the ordinary map-placement LP, which keeps the LP itself
//! identical to the paper's.

use tetrium_cluster::{Cluster, DataDistribution, SiteId};

/// One input partition and the sites holding a copy of it.
#[derive(Debug, Clone)]
pub struct ReplicatedPartition {
    /// Partition size in GB.
    pub gb: f64,
    /// Sites holding a replica (non-empty).
    pub replicas: Vec<SiteId>,
}

/// Chooses a read replica per partition, balancing prospective uplink drain
/// time (`assigned bytes / B^up`) across sites; ties prefer the site with
/// more slots, then the lower id, so the choice is deterministic.
///
/// # Examples
///
/// ```
/// use tetrium_core::{select_replicas, ReplicatedPartition};
/// use tetrium_cluster::{Cluster, Site, SiteId};
///
/// let cluster = Cluster::new(vec![
///     Site::new("fast", 8, 4.0, 4.0),
///     Site::new("slow", 8, 0.5, 0.5),
/// ]);
/// let parts = vec![ReplicatedPartition {
///     gb: 2.0,
///     replicas: vec![SiteId(0), SiteId(1)],
/// }];
/// assert_eq!(select_replicas(&parts, &cluster), vec![SiteId(0)]);
/// ```
///
/// # Panics
///
/// Panics if any partition has no replicas or refers to an unknown site.
pub fn select_replicas(partitions: &[ReplicatedPartition], cluster: &Cluster) -> Vec<SiteId> {
    let n = cluster.len();
    let mut load = vec![0.0f64; n];
    // Largest partitions first (LPT): bounds imbalance like classic
    // makespan scheduling.
    let mut order: Vec<usize> = (0..partitions.len()).collect();
    order.sort_by(|&a, &b| {
        partitions[b]
            .gb
            .total_cmp(&partitions[a].gb)
            .then(a.cmp(&b))
    });
    let mut choice = vec![SiteId(0); partitions.len()];
    for i in order {
        let p = &partitions[i];
        assert!(!p.replicas.is_empty(), "partition {i} has no replicas");
        let best = *p
            .replicas
            .iter()
            .min_by(|&&a, &&b| {
                assert!(a.index() < n && b.index() < n, "replica site out of range");
                let da = (load[a.index()] + p.gb) / cluster.site(a).up_gbps;
                let db = (load[b.index()] + p.gb) / cluster.site(b).up_gbps;
                da.total_cmp(&db)
                    .then(cluster.site(b).slots.cmp(&cluster.site(a).slots))
                    .then(a.index().cmp(&b.index()))
            })
            .expect("non-empty replicas");
        load[best.index()] += p.gb;
        choice[i] = best;
    }
    choice
}

/// Materializes the per-site input distribution induced by a replica choice.
pub fn replicated_input(
    partitions: &[ReplicatedPartition],
    choice: &[SiteId],
    n_sites: usize,
) -> DataDistribution {
    assert_eq!(partitions.len(), choice.len());
    let mut gb = vec![0.0; n_sites];
    for (p, &site) in partitions.iter().zip(choice) {
        gb[site.index()] += p.gb;
    }
    DataDistribution::new(gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium_cluster::Site;

    fn cluster() -> Cluster {
        Cluster::new(vec![
            Site::new("fast", 20, 4.0, 4.0),
            Site::new("slow", 20, 0.5, 0.5),
            Site::new("mid", 5, 2.0, 2.0),
        ])
    }

    fn part(gb: f64, replicas: &[usize]) -> ReplicatedPartition {
        ReplicatedPartition {
            gb,
            replicas: replicas.iter().map(|&i| SiteId(i)).collect(),
        }
    }

    #[test]
    fn single_replica_is_identity() {
        let parts = vec![part(1.0, &[1]), part(2.0, &[2])];
        let choice = select_replicas(&parts, &cluster());
        assert_eq!(choice, vec![SiteId(1), SiteId(2)]);
    }

    #[test]
    fn prefers_the_fast_uplink() {
        let parts = vec![part(4.0, &[0, 1])];
        let choice = select_replicas(&parts, &cluster());
        assert_eq!(choice, vec![SiteId(0)]);
    }

    #[test]
    fn balances_load_across_equal_replicas() {
        // Eight 1 GB partitions all replicated on fast+mid: the greedy must
        // split ~drain-proportionally (4 GB/s vs 2 GB/s => about 2:1).
        let parts: Vec<_> = (0..9).map(|_| part(1.0, &[0, 2])).collect();
        let choice = select_replicas(&parts, &cluster());
        let at0 = choice.iter().filter(|&&s| s == SiteId(0)).count();
        let at2 = choice.iter().filter(|&&s| s == SiteId(2)).count();
        assert_eq!(at0 + at2, 9);
        assert!(at0 > at2, "faster uplink should take more: {at0} vs {at2}");
        assert!(at2 >= 2, "slower replica should still absorb some load");
    }

    #[test]
    fn induced_distribution_conserves_volume() {
        let parts = vec![part(1.5, &[0, 1]), part(2.5, &[1, 2]), part(1.0, &[2])];
        let choice = select_replicas(&parts, &cluster());
        let dist = replicated_input(&parts, &choice, 3);
        assert!((dist.total() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no replicas")]
    fn rejects_unreplicated_partition() {
        select_replicas(&[part(1.0, &[])], &cluster());
    }
}
