//! Reduce-stage task placement (§3.2): the `LP: reduce-task placement`.
//!
//! The decision is the fraction `r_x` of the stage's reduce tasks placed at
//! each site, minimizing the sum of shuffle time (bounded below by the
//! bottleneck upload `I_x (1 - r_x) / B_x^up` and download
//! `r_x Σ_{y≠x} I_y / B_x^down`) and multi-wave compute time
//! `t_red · n_red · r_x / S_x`. Iridium is the special case that drops the
//! compute term.

use crate::analytic::StageTimes;
use crate::plan_cache::SolveMeta;
use tetrium_jobs::largest_remainder_round;
use tetrium_lp::{Basis, LpError, Problem, Relation};

/// Inputs of one reduce-stage placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceProblem {
    /// Remaining intermediate volume at each site in GB (`I_x^shufl`).
    pub shuffle_gb: Vec<f64>,
    /// Remaining (unlaunched) reduce tasks.
    pub num_tasks: usize,
    /// Estimated compute seconds per task (`t_red`).
    pub task_secs: f64,
    /// Uplink capacities in GB/s.
    pub up_gbps: Vec<f64>,
    /// Downlink capacities in GB/s.
    pub down_gbps: Vec<f64>,
    /// Slots per site (`S_x`).
    pub slots: Vec<usize>,
    /// Optional WAN budget in GB (§4.3): `Σ_x I_x (1 - r_x) <= W`.
    pub wan_budget_gb: Option<f64>,
    /// When `true`, ignore the compute term — Iridium's shuffle-only model
    /// (used by the Iridium baseline and the `+I-task` ablation).
    pub network_only: bool,
    /// Output volume (GB) this stage will hand to a downstream stage, if
    /// any. When set, the objective gains a lookahead term `T_next >=
    /// out · r_x / B_x^up`: the time a later shuffle will need to drain
    /// this stage's output from site `x`. Without it the stage-by-stage
    /// model happily parks intermediate data behind thin uplinks, which
    /// §3.4 identifies as the forward planner's blind spot.
    pub next_stage_out_gb: Option<f64>,
}

/// Result of a reduce-stage placement.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducePlacement {
    /// Fraction of reduce tasks at each site (`r_x`).
    pub fractions: Vec<f64>,
    /// LP-optimal shuffle and (fractional-wave) compute times.
    pub times: StageTimes,
    /// Integral task counts per site.
    pub tasks_at: Vec<usize>,
    /// Slot demand `d_x = min(S_x, tasks_at[x])`.
    pub slot_demand: Vec<usize>,
    /// WAN bytes the shuffle moves under this placement, in GB.
    pub wan_gb: f64,
}

/// Solves the reduce-task placement LP.
///
/// # Panics
///
/// Panics if vector lengths disagree.
///
/// # Errors
///
/// Propagates LP failures; the unbudgeted model is always feasible, and a
/// WAN budget below the minimum feasible shuffle volume yields
/// [`LpError::Infeasible`] (callers should budget with [`crate::wan_budget`],
/// which never goes below the minimum).
pub fn solve_reduce_placement(p: &ReduceProblem) -> Result<ReducePlacement, LpError> {
    solve_reduce_placement_warm(p, None).map(|(placement, _)| placement)
}

/// Like [`solve_reduce_placement`], but optionally warm-starts the LP from
/// a cached optimal [`Basis`] and reports solver metadata for the plan
/// cache — see [`crate::map_placement::solve_map_placement_warm`].
///
/// # Panics
///
/// Panics if vector lengths disagree.
///
/// # Errors
///
/// Propagates LP failures, exactly as [`solve_reduce_placement`].
pub fn solve_reduce_placement_warm(
    p: &ReduceProblem,
    warm: Option<&Basis>,
) -> Result<(ReducePlacement, SolveMeta), LpError> {
    solve_reduce_impl(p, warm, warm.is_some())
}

/// Cold solve with canonical LP extraction — the audit oracle's bit-for-bit
/// reference; see [`crate::map_placement::solve_map_placement_canonical`].
///
/// # Panics
///
/// Panics if vector lengths disagree.
///
/// # Errors
///
/// Propagates LP failures, exactly as [`solve_reduce_placement`].
pub fn solve_reduce_placement_canonical(
    p: &ReduceProblem,
) -> Result<(ReducePlacement, SolveMeta), LpError> {
    solve_reduce_impl(p, None, true)
}

fn solve_reduce_impl(
    p: &ReduceProblem,
    warm: Option<&Basis>,
    canonical: bool,
) -> Result<(ReducePlacement, SolveMeta), LpError> {
    let n = p.shuffle_gb.len();
    assert_eq!(p.up_gbps.len(), n);
    assert_eq!(p.down_gbps.len(), n);
    assert_eq!(p.slots.len(), n);
    let total: f64 = p.shuffle_gb.iter().sum();

    if p.num_tasks == 0 {
        return Ok((
            ReducePlacement {
                fractions: vec![0.0; n],
                times: StageTimes {
                    transfer: 0.0,
                    compute: 0.0,
                },
                tasks_at: vec![0; n],
                slot_demand: vec![0; n],
                wan_gb: 0.0,
            },
            SolveMeta::default(),
        ));
    }

    // Variables: r[x] (n), then T_shufl, T_red, T_next.
    let t_shufl = n;
    let t_red = n + 1;
    let t_next = n + 2;
    let mut lp = Problem::minimize(n + 3);
    if p.network_only {
        lp.set_objective(&[(t_shufl, 1.0)]);
    } else {
        lp.set_objective(&[(t_shufl, 1.0), (t_red, 1.0)]);
    }
    if let Some(out) = p.next_stage_out_gb {
        if !p.network_only && out > 0.0 {
            lp.add_objective_term(t_next, 1.0);
            for x in 0..n {
                // out * r_x <= T_next * up_x.
                lp.add_constraint(&[(x, out), (t_next, -p.up_gbps[x])], Relation::Le, 0.0);
            }
        }
    }

    // Upload at x: I_x (1 - r_x) <= T_shufl * up_x.
    for x in 0..n {
        lp.add_constraint(
            &[(x, -p.shuffle_gb[x]), (t_shufl, -p.up_gbps[x])],
            Relation::Le,
            -p.shuffle_gb[x],
        );
    }
    // Download at x: (total - I_x) r_x <= T_shufl * down_x.
    for x in 0..n {
        lp.add_constraint(
            &[(x, total - p.shuffle_gb[x]), (t_shufl, -p.down_gbps[x])],
            Relation::Le,
            0.0,
        );
    }
    // Compute at x: t * n_red * r_x <= T_red * S_x.
    if !p.network_only {
        for x in 0..n {
            lp.add_constraint(
                &[
                    (x, p.task_secs * p.num_tasks as f64),
                    (t_red, -(p.slots[x] as f64)),
                ],
                Relation::Le,
                0.0,
            );
        }
    }
    // Fractions sum to one.
    let ones: Vec<(usize, f64)> = (0..n).map(|x| (x, 1.0)).collect();
    lp.add_constraint(&ones, Relation::Eq, 1.0);
    // WAN budget: sum_x I_x (1 - r_x) <= W, i.e. -sum I_x r_x <= W - total.
    if let Some(w) = p.wan_budget_gb {
        let terms: Vec<(usize, f64)> = (0..n).map(|x| (x, -p.shuffle_gb[x])).collect();
        lp.add_constraint(&terms, Relation::Le, w.max(0.0) - total);
    }

    let sol = match (warm, canonical) {
        (Some(b), _) => lp.solve_from_basis(b)?,
        (None, true) => lp.solve_canonical()?,
        (None, false) => lp.solve()?,
    };
    let fractions: Vec<f64> = (0..n).map(|x| sol.values[x].max(0.0)).collect();
    let tasks_at = largest_remainder_round(&fractions, p.num_tasks);
    let wan_gb: f64 = (0..n).map(|x| p.shuffle_gb[x] * (1.0 - fractions[x])).sum();
    // Recompute the compute time when the LP ignored it (Iridium).
    let compute = if p.network_only {
        let mut c = 0.0f64;
        for x in 0..n {
            c = c.max(p.task_secs * p.num_tasks as f64 * fractions[x] / p.slots[x] as f64);
        }
        c
    } else {
        sol.values[t_red].max(0.0)
    };
    let slot_demand = (0..n).map(|x| p.slots[x].min(tasks_at[x])).collect();
    let meta = SolveMeta {
        warm_started: sol.warm_started,
        pivots: sol.pivots,
        basis: Some(sol.basis),
    };
    Ok((
        ReducePlacement {
            fractions,
            times: StageTimes {
                transfer: sol.values[t_shufl].max(0.0),
                compute,
            },
            tasks_at,
            slot_demand,
            wan_gb,
        },
        meta,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig 4 reduce stage: intermediate (10, 15, 25) GB, 500 tasks of
    /// 1 s.
    fn fig4_problem(network_only: bool) -> ReduceProblem {
        ReduceProblem {
            shuffle_gb: vec![10.0, 15.0, 25.0],
            num_tasks: 500,
            task_secs: 1.0,
            up_gbps: vec![5.0, 1.0, 2.0],
            down_gbps: vec![5.0, 1.0, 5.0],
            slots: vec![40, 10, 20],
            wan_budget_gb: None,
            network_only,
            next_stage_out_gb: None,
        }
    }

    #[test]
    fn iridium_mode_minimizes_shuffle_to_paper_value() {
        let placement = solve_reduce_placement(&fig4_problem(true)).unwrap();
        // The paper reports Iridium's optimal shuffle time as 10.5 s on this
        // instance.
        assert!(
            (placement.times.transfer - 10.5).abs() < 0.01,
            "shuffle {}",
            placement.times.transfer
        );
        let s: f64 = placement.fractions.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tetrium_mode_beats_iridium_end_to_end() {
        let tet = solve_reduce_placement(&fig4_problem(false)).unwrap();
        let iri = solve_reduce_placement(&fig4_problem(true)).unwrap();
        // Iridium's shuffle is no worse than Tetrium's (it optimizes only
        // that), but Tetrium's total is strictly better on this instance.
        assert!(iri.times.transfer <= tet.times.transfer + 1e-6);
        assert!(tet.times.total() < iri.times.total() - 1.0);
    }

    #[test]
    fn tasks_round_to_total() {
        let placement = solve_reduce_placement(&fig4_problem(false)).unwrap();
        assert_eq!(placement.tasks_at.iter().sum::<usize>(), 500);
        assert_eq!(
            placement.slot_demand,
            placement
                .tasks_at
                .iter()
                .zip(&[40usize, 10, 20])
                .map(|(&t, &s)| t.min(s))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn wan_budget_zero_keeps_all_data_in_place_infeasible() {
        // With budget 0, every r_x must make I_x (1-r_x) = 0 at every site
        // with data, which is impossible (fractions sum to 1 over 3 sites).
        let mut p = fig4_problem(false);
        p.wan_budget_gb = Some(0.0);
        assert!(solve_reduce_placement(&p).is_err());
    }

    #[test]
    fn wan_budget_at_minimum_is_feasible() {
        // The minimum shuffle volume is total - max_x I_x = 50 - 25 = 25 GB.
        let mut p = fig4_problem(false);
        p.wan_budget_gb = Some(25.0);
        let placement = solve_reduce_placement(&p).unwrap();
        assert!((placement.wan_gb - 25.0).abs() < 1e-6);
        // Everything must sit at site 2 (the one with 25 GB).
        assert!((placement.fractions[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_stage_yields_empty_placement() {
        let mut p = fig4_problem(false);
        p.num_tasks = 0;
        let placement = solve_reduce_placement(&p).unwrap();
        assert_eq!(placement.tasks_at, vec![0, 0, 0]);
        assert_eq!(placement.times.total(), 0.0);
    }

    #[test]
    fn single_site_takes_everything() {
        let p = ReduceProblem {
            shuffle_gb: vec![7.0],
            num_tasks: 10,
            task_secs: 1.0,
            up_gbps: vec![1.0],
            down_gbps: vec![1.0],
            slots: vec![2],
            wan_budget_gb: None,
            network_only: false,
            next_stage_out_gb: None,
        };
        let placement = solve_reduce_placement(&p).unwrap();
        assert_eq!(placement.tasks_at, vec![10]);
        assert_eq!(placement.wan_gb, 0.0);
        assert!((placement.times.compute - 5.0).abs() < 1e-6);
    }
}
