//! Limited re-assignment under resource dynamics (§4.2).
//!
//! When a site's capacity drops, re-optimizing placement from scratch and
//! updating every site manager is expensive; the paper instead updates at
//! most `k` sites, choosing the new assignment `f'` that minimizes the
//! distance `Q = sqrt(Σ_i (f'_i - f*_i)^2)` to the unrestricted optimum
//! `f*`. We implement the paper's heuristic: pick the `k` sites with the
//! largest `|f*_z - f_z|` as updatable and redistribute their task mass to
//! track `f*` as closely as possible, leaving all other sites untouched.

use tetrium_jobs::largest_remainder_round;

/// Adjusts a previous per-site assignment `f` toward the new optimum
/// `f_star`, changing at most `k` sites. The returned assignment sums to
/// `f_star`'s total (the number of tasks to place now).
///
/// With `k >= f.len()` the unrestricted optimum is returned. When even the
/// chosen `k` sites cannot absorb the required mass difference (e.g. the
/// untouched sites already exceed the total), the updatable sites absorb as
/// much as possible and the remainder is shaved from untouched sites in
/// order of largest overshoot — a fallback the paper does not need to
/// discuss but an implementation must handle.
///
/// # Examples
///
/// ```
/// use tetrium_core::dynamics::limited_update;
/// // Only two sites may change: the two worst deviations reach the
/// // optimum, the rest keep their assignment.
/// let adjusted = limited_update(&[10, 10, 10, 10], &[0, 20, 10, 10], 2);
/// assert_eq!(adjusted, vec![0, 20, 10, 10]);
/// ```
///
/// # Panics
///
/// Panics if the slices differ in length or `k == 0`.
pub fn limited_update(f: &[usize], f_star: &[usize], k: usize) -> Vec<usize> {
    assert_eq!(f.len(), f_star.len());
    assert!(k > 0, "must be allowed to update at least one site");
    let n = f.len();
    let total: usize = f_star.iter().sum();
    if k >= n {
        return f_star.to_vec();
    }

    // Rank sites by how badly they deviate from the optimum.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| {
        let d = (f[i] as i64 - f_star[i] as i64).abs();
        (std::cmp::Reverse(d), i)
    });
    let updatable: Vec<usize> = order[..k].to_vec();
    let mut chosen = vec![false; n];
    for &i in &updatable {
        chosen[i] = true;
    }

    let untouched_sum: usize = (0..n).filter(|&i| !chosen[i]).map(|i| f[i]).sum();
    let mut out: Vec<usize> = (0..n).map(|i| if chosen[i] { 0 } else { f[i] }).collect();

    if untouched_sum <= total {
        // Distribute the remaining mass over updatable sites, tracking f*.
        let budget = total - untouched_sum;
        let weights: Vec<f64> = updatable.iter().map(|&i| f_star[i] as f64).collect();
        let weights = if weights.iter().sum::<f64>() > 0.0 {
            weights
        } else {
            vec![1.0; updatable.len()]
        };
        let parts = largest_remainder_round(&weights, budget);
        for (j, &i) in updatable.iter().enumerate() {
            out[i] = parts[j];
        }
    } else {
        // Untouched sites alone exceed the total: zero the updatable sites
        // and shave the overflow from untouched sites with the largest
        // overshoot relative to f*.
        let mut overflow = untouched_sum - total;
        let mut shave: Vec<usize> = (0..n).filter(|&i| !chosen[i]).collect();
        shave.sort_by_key(|&i| std::cmp::Reverse(f[i] as i64 - f_star[i] as i64));
        for i in shave {
            if overflow == 0 {
                break;
            }
            let cut = overflow.min(out[i]);
            out[i] -= cut;
            overflow -= cut;
        }
    }
    debug_assert_eq!(out.iter().sum::<usize>(), total);
    out
}

/// Euclidean distance `Q` between two assignments (§4.2's objective).
pub fn assignment_distance(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_k_returns_optimum() {
        let f = [10, 10, 10];
        let fs = [5, 20, 5];
        assert_eq!(limited_update(&f, &fs, 3), vec![5, 20, 5]);
        assert_eq!(limited_update(&f, &fs, 10), vec![5, 20, 5]);
    }

    #[test]
    fn k_sites_change_at_most() {
        let f = [10, 10, 10, 10];
        let fs = [0, 20, 10, 10];
        let out = limited_update(&f, &fs, 2);
        let changed = out.iter().zip(&f).filter(|(a, b)| a != b).count();
        assert!(changed <= 2, "changed {changed} sites: {out:?}");
        assert_eq!(out.iter().sum::<usize>(), 40);
        // The two most-deviating sites are 0 and 1; they should reach f*.
        assert_eq!(out, vec![0, 20, 10, 10]);
    }

    #[test]
    fn updating_more_sites_never_hurts_distance() {
        let f = [8, 8, 8, 8, 8];
        let fs = [0, 4, 12, 16, 8];
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let out = limited_update(&f, &fs, k);
            let q = assignment_distance(&out, &fs);
            assert!(q <= prev + 1e-9, "k={k} worsened Q");
            prev = q;
        }
        assert_eq!(assignment_distance(&limited_update(&f, &fs, 5), &fs), 0.0);
    }

    #[test]
    fn overflow_fallback_preserves_total() {
        // Untouched sites hold more than the new (smaller) total.
        let f = [10, 10, 10];
        let fs = [2, 2, 2]; // Total shrank to 6.
        let out = limited_update(&f, &fs, 1);
        assert_eq!(out.iter().sum::<usize>(), 6);
    }

    #[test]
    fn distance_metric() {
        assert_eq!(assignment_distance(&[0, 3], &[4, 0]), 5.0);
        assert_eq!(assignment_distance(&[1, 1], &[1, 1]), 0.0);
    }
}
