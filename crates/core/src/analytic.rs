//! Closed-form stage-duration evaluation.
//!
//! Given a concrete integral placement, these functions compute the
//! worst-case stage duration exactly as the paper's worked example does
//! (Fig 3/4): network transfer time is the bottleneck link's duration, and
//! compute time is `t · ⌈tasks/slots⌉` waves at the bottleneck site. The
//! same accounting ranks jobs by remaining processing time in the scheduler.

/// Network and compute components of one stage's duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTimes {
    /// Network transfer time in seconds (`T_aggr` for map, `T_shufl` for
    /// reduce).
    pub transfer: f64,
    /// Compute time in seconds (`T_map` / `T_red`).
    pub compute: f64,
}

impl StageTimes {
    /// Total stage duration under the paper's worst-case accounting (no
    /// overlap between transfer and compute).
    pub fn total(&self) -> f64 {
        self.transfer + self.compute
    }
}

/// Evaluates a map-stage placement given task counts.
///
/// `moved[x][y]` is the volume (GB) read from site `x` by tasks running at
/// site `y`; `tasks_at[y]` is the number of map tasks placed at `y`.
/// `ceil_waves` selects integral waves (`⌈tasks/slots⌉`, the worked-example
/// accounting) versus fractional waves (the LP's relaxation).
///
/// # Panics
///
/// Panics if dimensions disagree or any slot count is zero.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_map_counts(
    moved: &[Vec<f64>],
    tasks_at: &[usize],
    task_secs: f64,
    up_gbps: &[f64],
    down_gbps: &[f64],
    slots: &[usize],
    ceil_waves: bool,
) -> StageTimes {
    let n = slots.len();
    assert_eq!(moved.len(), n);
    assert!(moved.iter().all(|row| row.len() == n));
    assert_eq!(tasks_at.len(), n);
    assert!(slots.iter().all(|&s| s > 0), "sites must have slots");

    let mut transfer = 0.0f64;
    for x in 0..n {
        let upload: f64 = (0..n).filter(|&y| y != x).map(|y| moved[x][y]).sum();
        let download: f64 = (0..n).filter(|&y| y != x).map(|y| moved[y][x]).sum();
        transfer = transfer
            .max(upload / up_gbps[x])
            .max(download / down_gbps[x]);
    }
    let mut compute = 0.0f64;
    for x in 0..n {
        let waves = waves(tasks_at[x], slots[x], ceil_waves);
        compute = compute.max(task_secs * waves);
    }
    StageTimes { transfer, compute }
}

/// Evaluates a reduce-stage placement.
///
/// `shuffle_gb[x]` is the intermediate volume at site `x`; `fraction[x]`
/// the fraction of reduce work placed at `x` (from task counts or the LP);
/// `tasks_at[x]` the integral reduce-task counts used for wave accounting.
///
/// Upload at `x` is `I_x · (1 - r_x)`, download is `r_x · Σ_{y≠x} I_y`
/// (Eqs. 7–8 of the paper).
///
/// # Panics
///
/// Panics if dimensions disagree or any slot count is zero.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_reduce_counts(
    shuffle_gb: &[f64],
    fraction: &[f64],
    tasks_at: &[usize],
    task_secs: f64,
    up_gbps: &[f64],
    down_gbps: &[f64],
    slots: &[usize],
    ceil_waves: bool,
) -> StageTimes {
    let n = slots.len();
    assert_eq!(shuffle_gb.len(), n);
    assert_eq!(fraction.len(), n);
    assert_eq!(tasks_at.len(), n);
    assert!(slots.iter().all(|&s| s > 0), "sites must have slots");
    let total: f64 = shuffle_gb.iter().sum();

    let mut transfer = 0.0f64;
    for x in 0..n {
        let upload = shuffle_gb[x] * (1.0 - fraction[x]);
        let download = (total - shuffle_gb[x]) * fraction[x];
        transfer = transfer
            .max(upload / up_gbps[x])
            .max(download / down_gbps[x]);
    }
    let mut compute = 0.0f64;
    for x in 0..n {
        let waves = waves(tasks_at[x], slots[x], ceil_waves);
        compute = compute.max(task_secs * waves);
    }
    StageTimes { transfer, compute }
}

fn waves(tasks: usize, slots: usize, ceil: bool) -> f64 {
    if tasks == 0 {
        return 0.0;
    }
    if ceil {
        tasks.div_ceil(slots) as f64
    } else {
        tasks as f64 / slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The three-site setup of Fig 4: slots 40/10/20, up 5/1/2 GB/s,
    // down 5/1/5 GB/s, input 20/30/50 GB, 1000 map tasks of 2 s (100 MB
    // partitions), 500 reduce tasks of 1 s, intermediate = half of input.
    const UP: [f64; 3] = [5.0, 1.0, 2.0];
    const DOWN: [f64; 3] = [5.0, 1.0, 5.0];
    const SLOTS: [usize; 3] = [40, 10, 20];

    #[test]
    fn iridium_map_stage_is_60s() {
        // All map tasks local: no transfers; bottleneck site 2 runs
        // 300 tasks over 10 slots: 30 waves x 2 s = 60 s.
        let moved = vec![vec![0.0; 3]; 3];
        let t = evaluate_map_counts(&moved, &[200, 300, 500], 2.0, &UP, &DOWN, &SLOTS, true);
        assert_eq!(t.transfer, 0.0);
        assert!((t.compute - 60.0).abs() < 1e-9);
    }

    #[test]
    fn iridium_reduce_stage_matches_paper() {
        // Intermediate (10, 15, 25); placement (0, 150, 350)/500.
        let shuffle = [10.0, 15.0, 25.0];
        let frac = [0.0, 0.3, 0.7];
        let t = evaluate_reduce_counts(
            &shuffle,
            &frac,
            &[0, 150, 350],
            1.0,
            &UP,
            &DOWN,
            &SLOTS,
            true,
        );
        // Site 2 download: (10+25)*0.3/1 = 10.5 s; compute site 3:
        // ceil(350/20) = 18 waves x 1 s.
        assert!((t.transfer - 10.5).abs() < 1e-9);
        assert!((t.compute - 18.0).abs() < 1e-9);
        assert!((t.total() - 28.5).abs() < 1e-9);
    }

    #[test]
    fn better_approach_matches_paper() {
        // Map: move 15.7 GB out of site 2 and 21.4 GB out of site 3 to
        // site 1; tasks (571, 143, 286).
        let mut moved = vec![vec![0.0; 3]; 3];
        moved[1][0] = 15.7;
        moved[2][0] = 21.4;
        let tm = evaluate_map_counts(&moved, &[571, 143, 286], 2.0, &UP, &DOWN, &SLOTS, true);
        // Upload bottleneck at site 2: 15.7/1 = 15.7 s; compute 15 waves x 2.
        assert!((tm.transfer - 15.7).abs() < 1e-9);
        assert!((tm.compute - 30.0).abs() < 1e-9);

        // Reduce: intermediate (28.55, 7.15, 14.3), fractions
        // (0.571, 0.143, 0.286), tasks (286, 71, 143).
        let tr = evaluate_reduce_counts(
            &[28.55, 7.15, 14.3],
            &[0.571, 0.143, 0.286],
            &[286, 71, 143],
            1.0,
            &UP,
            &DOWN,
            &SLOTS,
            true,
        );
        // Upload site 2: 7.15 * 0.857 / 1 = 6.128 s; compute 8 waves.
        assert!((tr.transfer - 6.12755).abs() < 1e-3);
        assert!((tr.compute - 8.0).abs() < 1e-9);
        let total = tm.total() + tr.total();
        assert!((total - 59.83).abs() < 0.01, "total {total}");
    }

    #[test]
    fn centralized_matches_paper() {
        // Move everything to site 1: uploads 30/1 = 30 s (site 2),
        // 50/2 = 25 s (site 3); download 80/5 = 16 s. Map: 25 waves x 2 s.
        let mut moved = vec![vec![0.0; 3]; 3];
        moved[1][0] = 30.0;
        moved[2][0] = 50.0;
        let tm = evaluate_map_counts(&moved, &[1000, 0, 0], 2.0, &UP, &DOWN, &SLOTS, true);
        assert!((tm.transfer - 30.0).abs() < 1e-9);
        assert!((tm.compute - 50.0).abs() < 1e-9);
        let tr = evaluate_reduce_counts(
            &[25.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0],
            &[500, 0, 0],
            1.0,
            &UP,
            &DOWN,
            &SLOTS,
            true,
        );
        assert_eq!(tr.transfer, 0.0);
        assert!((tr.compute - 13.0).abs() < 1e-9);
        assert!((tm.total() + tr.total() - 93.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_waves_are_smaller_than_ceil() {
        let moved = vec![vec![0.0; 2]; 2];
        let frac = evaluate_map_counts(&moved, &[5, 0], 1.0, &[1.0; 2], &[1.0; 2], &[2, 2], false);
        let ceil = evaluate_map_counts(&moved, &[5, 0], 1.0, &[1.0; 2], &[1.0; 2], &[2, 2], true);
        assert!((frac.compute - 2.5).abs() < 1e-12);
        assert!((ceil.compute - 3.0).abs() < 1e-12);
    }
}
