//! The Tetrium scheduler (§4): SRPT job ordering over LP task placement,
//! with the WAN-budget knob `ρ` (§4.3), the fairness knob `ε` (§4.4) and
//! limited re-assignment under resource dynamics (§4.2).
//!
//! At every scheduling instance the scheduler:
//!
//! 1. plans each unfinished job's runnable stages with the placement LPs of
//!    §3 (over the stage's *remaining* tasks and data), obtaining both a
//!    placement and the job's remaining processing time `T_j`;
//! 2. ranks jobs by `(G_j, T_j)` — remaining stage count first, LP-estimated
//!    remaining time as the tie-breaker (§4.1);
//! 3. orders each stage's tasks (§3.3) and emits per-task assignments whose
//!    priorities encode the job ranking, so the engine's per-site dispatch
//!    realizes SRPT across jobs;
//! 4. when `ε < 1`, reserves `(1-ε) · S* · f_i / Σf_i` slots per job in a
//!    priority band that outranks every regular assignment, interpolating
//!    between pure SRPT (`ε = 1`) and fair sharing (`ε = 0`).
//!
//! Like the prototype (§6.2, "Scheduling Overhead"), the scheduler bounds
//! LP work per instance: only the `lp_job_limit` highest-priority jobs are
//! planned with the optimizer; the rest receive a cheap site-local plan and
//! are re-planned when they rise in priority.

use crate::analytic::{evaluate_map_counts, evaluate_reduce_counts};
use crate::dynamics::limited_update;
use crate::map_placement::{
    solve_map_placement, solve_map_placement_canonical, solve_map_placement_warm, MapPlacement,
    MapProblem,
};
use crate::ordering::{order_map_tasks, order_reduce_tasks, MapOrdering, ReduceOrdering};
use crate::plan_cache::{
    map_sigs, reduce_sigs, MapLookup, PlanCacheMode, ReduceLookup, TemplateCache,
};
use crate::reduce_placement::{
    solve_reduce_placement, solve_reduce_placement_canonical, solve_reduce_placement_warm,
    ReducePlacement, ReduceProblem,
};
use crate::reverse::{plan_best, ReduceStageSpec};
use crate::wan::{reduce_min_wan, wan_budget, WanKnob};
use std::collections::{BTreeMap, HashMap, HashSet};
use tetrium_cluster::SiteId;
use tetrium_jobs::{largest_remainder_round, JobId, StageKind};
use tetrium_obs::{Obs, PlannerRecord};
use tetrium_sim::{
    JobSnapshot, Scheduler, Snapshot, StagePlan, StageSnapshot, TaskAssignment, TaskPhase,
};

/// Cross-job scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobPolicy {
    /// Shortest remaining processing time, ranked by `(G_j, T_j)` (§4.1).
    #[default]
    Srpt,
    /// Fair sharing across jobs (the `Tetrium+FS` ablation of Fig 8a).
    Fair,
}

/// Task-placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The compute+network LPs of §3 (Tetrium).
    #[default]
    TetriumLp,
    /// Iridium's placement: map tasks stay with their data, reduce tasks
    /// minimize shuffle time only (the `+I-task` ablation of Fig 8a).
    IridiumNet,
}

/// How map stages are planned relative to their downstream reduce stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StagePlanning {
    /// Stage-by-stage in DAG order (Tetrium's default, §3.4 "forward").
    #[default]
    Forward,
    /// Compute both forward and reverse plans, keep the better (§3.4/§6.3.1
    /// "mixed").
    BestOfForwardReverse,
}

/// Configuration of a [`TetriumScheduler`].
#[derive(Debug, Clone)]
pub struct TetriumConfig {
    /// WAN-usage knob `ρ ∈ [0, 1]` (§4.3); 1 disables budgeting.
    pub wan: WanKnob,
    /// Fairness knob `ε ∈ [0, 1]` (§4.4); 1 is pure SRPT, 0 is fair sharing.
    pub epsilon: f64,
    /// Cross-job policy.
    pub job_policy: JobPolicy,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Map-stage task ordering (§3.3).
    pub map_ordering: MapOrdering,
    /// Reduce-stage task ordering (§3.3).
    pub reduce_ordering: ReduceOrdering,
    /// Stage planning direction (§3.4).
    pub planning: StagePlanning,
    /// Maximum sites whose assignment may change when capacities change
    /// (`k` of §4.2); `None` re-plans freely.
    pub dynamics_k: Option<usize>,
    /// Upper bound on jobs planned with the LP per scheduling instance.
    pub lp_job_limit: usize,
    /// Add the next-stage lookahead term to the placement LPs (avoids
    /// parking intermediate data behind thin uplinks; §3.4 discusses the
    /// forward planner's blind spot this mitigates). On by default; turn
    /// off to reproduce the strictly myopic stage-by-stage formulation.
    pub lookahead: bool,
    /// Template-keyed plan caching and LP warm-starting across scheduling
    /// instances (see [`crate::plan_cache`]). Off by default; `Exact` only
    /// short-circuits field-identical solves (placements are bit-identical
    /// to `Off`), `Full` adds rescaled near-hits and warm starts.
    pub plan_cache: PlanCacheMode,
}

impl Default for TetriumConfig {
    fn default() -> Self {
        Self {
            wan: WanKnob::default(),
            epsilon: 1.0,
            job_policy: JobPolicy::default(),
            placement: PlacementPolicy::default(),
            map_ordering: MapOrdering::default(),
            reduce_ordering: ReduceOrdering::default(),
            planning: StagePlanning::default(),
            dynamics_k: None,
            lp_job_limit: 64,
            lookahead: true,
            plan_cache: PlanCacheMode::default(),
        }
    }
}

/// The Tetrium scheduler; see the module docs for the per-instance flow.
pub struct TetriumScheduler {
    cfg: TetriumConfig,
    name: String,
    prev_caps: Option<Vec<usize>>,
    prev_dest: BTreeMap<(JobId, usize), Vec<usize>>,
    /// Cached full-capacity stage plans: re-solving the LP at every slot
    /// release is wasted work when nothing material changed (the prototype
    /// batches scheduling instances for the same reason, §5). A cached plan
    /// is reused until slot capacities change or the stage's unlaunched set
    /// shrinks below half of what was planned.
    plan_cache: BTreeMap<(JobId, usize), CachedPlan>,
    /// Set once a capacity change has been observed; from then on the
    /// `dynamics_k` restriction applies to every re-assignment (updating a
    /// site manager costs coordination whether or not the capacities moved
    /// again this instant, §4.2).
    restricted: bool,
    instance: u64,
    /// Cross-instance template cache (see [`crate::plan_cache`]): solved
    /// placements keyed by structural + quantized-numeric fingerprints,
    /// independent of job identity so recurring submissions hit entries
    /// planted by their predecessors.
    tmpl: TemplateCache,
    /// Template-cache counters drained at the end of the last instance
    /// (kept for the observability record and test inspection).
    last_tmpl_stats: crate::plan_cache::CacheStats,
    /// Observability sink handed over by the engine; emits a per-instance
    /// planner breakdown (LP-planned vs cache-reused vs local-planned).
    obs: Obs,
}

struct CachedPlan {
    ordered: Vec<(usize, SiteId)>,
    dest_counts: Vec<usize>,
    est_total: f64,
    planned_unlaunched: usize,
    /// Whether this plan was computed against a drained slot pool (pass 2).
    contended: bool,
}

/// Result of planning one stage.
struct Outcome {
    dest_counts: Vec<usize>,
    /// `(task, site)` in launch order.
    ordered: Vec<(usize, SiteId)>,
    est_total: f64,
}

struct PlannedStage {
    stage_index: usize,
    ordered: Vec<(usize, SiteId)>,
    dest_counts: Vec<usize>,
}

struct PlannedJob {
    job_idx: usize,
    t_j: f64,
    stages: Vec<PlannedStage>,
}

impl TetriumScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(cfg: TetriumConfig) -> Self {
        let name = match (cfg.job_policy, cfg.placement) {
            (JobPolicy::Srpt, PlacementPolicy::TetriumLp) => "tetrium".to_string(),
            (JobPolicy::Fair, PlacementPolicy::TetriumLp) => "tetrium+fs".to_string(),
            (JobPolicy::Srpt, PlacementPolicy::IridiumNet) => "tetrium+i-task".to_string(),
            (JobPolicy::Fair, PlacementPolicy::IridiumNet) => "tetrium+fs+i-task".to_string(),
        };
        Self {
            tmpl: TemplateCache::new(cfg.plan_cache),
            last_tmpl_stats: crate::plan_cache::CacheStats::default(),
            cfg,
            name,
            prev_caps: None,
            prev_dest: BTreeMap::new(),
            plan_cache: BTreeMap::new(),
            restricted: false,
            instance: 0,
            obs: Obs::disabled(),
        }
    }

    /// The default Tetrium configuration (ρ = 1, ε = 1, SRPT, forward).
    pub fn standard() -> Self {
        Self::new(TetriumConfig::default())
    }

    /// Plans one stage with the placement LPs. Falls back to the site-local
    /// plan on solver failure.
    #[allow(clippy::too_many_arguments)]
    fn plan_stage_lp(
        &mut self,
        snap: &Snapshot,
        job: &JobSnapshot,
        st: &StageSnapshot,
        caps_changed: bool,
        slots: &[usize],
        up: &[f64],
        down: &[f64],
    ) -> Outcome {
        let n = snap.sites.len();
        let unl: Vec<usize> = st
            .tasks
            .iter()
            .filter(|t| t.phase == TaskPhase::Unlaunched)
            .map(|t| t.index)
            .collect();
        if unl.is_empty() {
            return Outcome {
                dest_counts: vec![0; n],
                ordered: Vec::new(),
                est_total: 0.0,
            };
        }
        // Guard against fully drained sites: a single phantom slot keeps the
        // wave model finite while strongly steering work elsewhere.
        let slots: Vec<usize> = slots.iter().map(|&s| s.max(1)).collect();

        match st.kind {
            StageKind::Map => {
                let mut tasks_from = vec![0usize; n];
                let mut input_gb = vec![0.0f64; n];
                // Map tasks without a home site (e.g. snapshots of
                // generated or replayed work whose input is ephemeral) are
                // placeable anywhere at zero fetch cost: they are excluded
                // from the per-source LP accounting and assigned after the
                // homed tasks below.
                for &i in &unl {
                    let t = &st.tasks[i];
                    let Some(src) = t.input_site else { continue };
                    let x = src.index();
                    tasks_from[x] += 1;
                    input_gb[x] += t.input_gb;
                }
                let budget = if self.cfg.wan.is_unbounded() {
                    None
                } else {
                    // W_min = 0 for map stages (§4.3). The budget covers the
                    // whole stage, so bytes already moved by launched tasks
                    // are charged against it — otherwise every re-planning
                    // instance would grant a fresh rho-fraction of the
                    // remaining data and the stage would overspend.
                    let full_total: f64 = st.tasks.iter().map(|t| t.input_gb).sum();
                    let moved: f64 = st
                        .tasks
                        .iter()
                        .filter(|t| {
                            t.phase != TaskPhase::Unlaunched
                                && t.running_site.is_some()
                                && t.running_site != t.input_site
                        })
                        .map(|t| t.input_gb)
                        .sum();
                    let w = wan_budget(self.cfg.wan, 0.0, full_total);
                    Some((w - moved).max(0.0))
                };
                let problem = MapProblem {
                    input_gb: input_gb.clone(),
                    tasks_from: tasks_from.clone(),
                    task_secs: st.est_task_secs,
                    up_gbps: up.to_vec(),
                    down_gbps: down.to_vec(),
                    slots: slots.clone(),
                    wan_budget_gb: budget,
                    forced_dest_gb: None,
                    next_stage_ratio: (self.cfg.lookahead && has_consumer(job, st.stage_index))
                        .then(|| stage_ratio(job, st.stage_index)),
                    // Prune dominated destinations on large clusters so one
                    // placement decision stays near the paper's ~100 ms.
                    dest_limit: (n > 16).then_some(12),
                };
                let solved = match self.cfg.placement {
                    PlacementPolicy::IridiumNet => None, // Local placement below.
                    PlacementPolicy::TetriumLp => match self.cfg.planning {
                        // Only the forward planner goes through the template
                        // cache: reverse planning couples two LPs whose
                        // interaction the fingerprint does not capture.
                        StagePlanning::Forward => self.solve_map_cached(st.stage_index, &problem),
                        StagePlanning::BestOfForwardReverse => {
                            match reduce_successor(job, st.stage_index) {
                                Some(spec) => plan_best(&problem, &spec).ok().map(|p| p.map),
                                None => solve_map_placement(&problem).ok(),
                            }
                        }
                    },
                };
                let (mut counts, est) = match solved {
                    Some(p) => (p.counts, p.times.total()),
                    None => {
                        // Site-local placement (also Iridium's map policy).
                        let mut counts = vec![vec![0usize; n]; n];
                        for (x, &c) in tasks_from.iter().enumerate() {
                            counts[x][x] = c;
                        }
                        let est = evaluate_map_counts(
                            &vec![vec![0.0; n]; n],
                            &tasks_from,
                            st.est_task_secs,
                            up,
                            down,
                            &slots,
                            true,
                        )
                        .total();
                        (counts, est)
                    }
                };
                let mut dest: Vec<usize> =
                    (0..n).map(|y| (0..n).map(|x| counts[x][y]).sum()).collect();
                // Limited re-assignment under resource dynamics (§4.2); the
                // restriction persists once a drop has been observed.
                if caps_changed || self.restricted {
                    if let Some(k) = self.cfg.dynamics_k {
                        if let Some(prev) = self.prev_dest.get(&(job.id, st.stage_index)) {
                            let scaled = scale_counts(prev, unl.len());
                            let adjusted = limited_update(&scaled, &dest, k);
                            if adjusted != dest {
                                counts = redistribute_map(&tasks_from, &adjusted);
                                dest = adjusted;
                            }
                        }
                    }
                }
                // Pair concrete tasks with destinations, grouped by source.
                let mut by_src: Vec<Vec<usize>> = vec![Vec::new(); n];
                let mut homeless: Vec<usize> = Vec::new();
                for &i in &unl {
                    match st.tasks[i].input_site {
                        Some(src) => by_src[src.index()].push(i),
                        None => homeless.push(i),
                    }
                }
                let mut triples: Vec<(usize, SiteId, f64, SiteId)> = Vec::with_capacity(unl.len());
                let mut site_of: HashMap<usize, SiteId> = HashMap::with_capacity(unl.len());
                for x in 0..n {
                    let mut cursor = 0;
                    for y in 0..n {
                        for _ in 0..counts[x][y] {
                            if cursor >= by_src[x].len() {
                                break;
                            }
                            let t = by_src[x][cursor];
                            cursor += 1;
                            triples.push((t, SiteId(x), st.tasks[t].input_gb, SiteId(y)));
                            site_of.insert(t, SiteId(y));
                        }
                    }
                    // Any leftovers (counts mismatch) stay local.
                    for &t in &by_src[x][cursor..] {
                        triples.push((t, SiteId(x), st.tasks[t].input_gb, SiteId(x)));
                        site_of.insert(t, SiteId(x));
                    }
                }
                // Homeless tasks fetch nothing, so spread them over the
                // emptiest destinations (fewest assigned tasks per slot;
                // ties break on the lower site index — deterministic).
                for &t in &homeless {
                    let y = (0..n)
                        .min_by(|&a, &b| {
                            (dest[a] * slots[b])
                                .cmp(&(dest[b] * slots[a]))
                                .then(a.cmp(&b))
                        })
                        .expect("cluster has at least one site");
                    dest[y] += 1;
                    triples.push((t, SiteId(y), st.tasks[t].input_gb, SiteId(y)));
                    site_of.insert(t, SiteId(y));
                }
                let order = order_map_tasks(self.cfg.map_ordering, &triples, up);
                let ordered = order.into_iter().map(|t| (t, site_of[&t])).collect();
                Outcome {
                    dest_counts: dest,
                    ordered,
                    est_total: est,
                }
            }
            StageKind::Reduce => {
                let share_rem: f64 = unl.iter().map(|&i| st.tasks[i].share).sum();
                let shuffle_gb: Vec<f64> = st.input_gb.iter().map(|v| v * share_rem).collect();
                let total: f64 = shuffle_gb.iter().sum();
                let budget = if self.cfg.wan.is_unbounded() {
                    None
                } else {
                    // Whole-stage budget minus what launched tasks already
                    // shuffled, floored at the minimum feasible volume for
                    // the remaining tasks (see the map branch).
                    let full_total: f64 = st.input_gb.iter().sum();
                    let full_min = reduce_min_wan(&st.input_gb);
                    let moved: f64 = st
                        .tasks
                        .iter()
                        .filter(|t| t.phase != TaskPhase::Unlaunched)
                        .filter_map(|t| {
                            t.running_site
                                .map(|site| t.share * (full_total - st.input_gb[site.index()]))
                        })
                        .sum();
                    let w = wan_budget(self.cfg.wan, full_min, full_total);
                    Some((w - moved).max(reduce_min_wan(&shuffle_gb)))
                };
                let problem = ReduceProblem {
                    shuffle_gb: shuffle_gb.clone(),
                    num_tasks: unl.len(),
                    task_secs: st.est_task_secs,
                    up_gbps: up.to_vec(),
                    down_gbps: down.to_vec(),
                    slots: slots.clone(),
                    wan_budget_gb: budget,
                    network_only: matches!(self.cfg.placement, PlacementPolicy::IridiumNet),
                    next_stage_out_gb: (self.cfg.lookahead && has_consumer(job, st.stage_index))
                        .then(|| total * stage_ratio(job, st.stage_index)),
                };
                let solved = if matches!(self.cfg.placement, PlacementPolicy::TetriumLp)
                    && matches!(self.cfg.planning, StagePlanning::Forward)
                {
                    self.solve_reduce_cached(st.stage_index, &problem)
                } else {
                    solve_reduce_placement(&problem).ok()
                };
                let (mut tasks_at, est) = match solved {
                    Some(p) => (p.tasks_at, p.times.total()),
                    None => {
                        // Data-proportional fallback.
                        let tasks_at = largest_remainder_round(&shuffle_gb, unl.len());
                        let frac: Vec<f64> = if total > 0.0 {
                            shuffle_gb.iter().map(|v| v / total).collect()
                        } else {
                            vec![0.0; n]
                        };
                        let est = evaluate_reduce_counts(
                            &shuffle_gb,
                            &frac,
                            &tasks_at,
                            st.est_task_secs,
                            up,
                            down,
                            &slots,
                            true,
                        )
                        .total();
                        (tasks_at, est)
                    }
                };
                if caps_changed || self.restricted {
                    if let Some(k) = self.cfg.dynamics_k {
                        if let Some(prev) = self.prev_dest.get(&(job.id, st.stage_index)) {
                            let scaled = scale_counts(prev, unl.len());
                            tasks_at = limited_update(&scaled, &tasks_at, k);
                        }
                    }
                }
                // Pair tasks (index order) with the expanded site list.
                let mut sites: Vec<SiteId> = Vec::with_capacity(unl.len());
                for (y, &c) in tasks_at.iter().enumerate() {
                    sites.extend(std::iter::repeat_n(SiteId(y), c));
                }
                while sites.len() < unl.len() {
                    sites.push(SiteId(0));
                }
                let mut site_of: HashMap<usize, SiteId> = HashMap::with_capacity(unl.len());
                let mut inputs: Vec<(usize, f64)> = Vec::with_capacity(unl.len());
                for (j, &i) in unl.iter().enumerate() {
                    site_of.insert(i, sites[j]);
                    inputs.push((i, st.tasks[i].input_gb));
                }
                let seed = self
                    .instance
                    .wrapping_mul(31)
                    .wrapping_add(job.id.index() as u64 * 7 + st.stage_index as u64);
                let order = order_reduce_tasks(self.cfg.reduce_ordering, &inputs, seed);
                let ordered = order.into_iter().map(|t| (t, site_of[&t])).collect();
                Outcome {
                    dest_counts: tasks_at,
                    ordered,
                    est_total: est,
                }
            }
        }
    }

    /// Template-cache-aware map solve: exact/patched hits skip the solver,
    /// template near-misses warm-start it, misses solve cold. Every solved
    /// placement (cold or warm) is inserted for future instances. Under the
    /// `audit` feature each warm-started solve is re-run cold and the two
    /// placements must agree bit for bit.
    fn solve_map_cached(
        &mut self,
        stage_index: usize,
        problem: &MapProblem,
    ) -> Option<MapPlacement> {
        if self.tmpl.mode() == PlanCacheMode::Off {
            // Count the cold solve anyway: symmetric counters let the
            // latency benchmark select the same instances in every mode.
            self.tmpl.stats.miss += 1;
            return solve_map_placement(problem).ok();
        }
        let (tsig, bsig) = map_sigs(stage_index, problem);
        let warm = match self.tmpl.lookup_map(&tsig, &bsig, problem) {
            MapLookup::Exact(p) | MapLookup::Patched(p) => return Some(p),
            MapLookup::Warm(b) => Some(b),
            MapLookup::Miss => None,
        };
        let (placement, meta) = solve_map_placement_warm(problem, warm.as_ref()).ok()?;
        if meta.warm_started {
            self.tmpl.stats.warm += 1;
            self.tmpl.stats.warm_pivots += meta.pivots;
            if tetrium_sim::audit_enabled() {
                let (cold, cold_meta) = solve_map_placement_canonical(problem)
                    .expect("audit: cold solve must succeed where the warm solve did");
                assert!(
                    placement == cold,
                    "plan-cache audit: warm-started map solve diverged from cold \
                     (warm {:?} vs cold {:?}) warm basis {:?} cold basis {:?} problem {:?}",
                    placement.times,
                    cold.times,
                    meta.basis,
                    cold_meta.basis,
                    problem
                );
            }
        } else {
            self.tmpl.stats.miss += 1;
        }
        if let Some(basis) = meta.basis {
            self.tmpl
                .insert_map(tsig, bsig, problem.clone(), placement.clone(), basis);
        }
        Some(placement)
    }

    /// Reduce-stage analog of [`TetriumScheduler::solve_map_cached`].
    fn solve_reduce_cached(
        &mut self,
        stage_index: usize,
        problem: &ReduceProblem,
    ) -> Option<ReducePlacement> {
        if self.tmpl.mode() == PlanCacheMode::Off {
            self.tmpl.stats.miss += 1;
            return solve_reduce_placement(problem).ok();
        }
        let (tsig, bsig) = reduce_sigs(stage_index, problem);
        let warm = match self.tmpl.lookup_reduce(&tsig, &bsig, problem) {
            ReduceLookup::Exact(p) | ReduceLookup::Patched(p) => return Some(p),
            ReduceLookup::Warm(b) => Some(b),
            ReduceLookup::Miss => None,
        };
        let (placement, meta) = solve_reduce_placement_warm(problem, warm.as_ref()).ok()?;
        if meta.warm_started {
            self.tmpl.stats.warm += 1;
            self.tmpl.stats.warm_pivots += meta.pivots;
            if tetrium_sim::audit_enabled() {
                let (cold, _) = solve_reduce_placement_canonical(problem)
                    .expect("audit: cold solve must succeed where the warm solve did");
                assert!(
                    placement == cold,
                    "plan-cache audit: warm-started reduce solve diverged from cold \
                     (warm {placement:?} vs cold {cold:?}) problem {problem:?}"
                );
            }
        } else {
            self.tmpl.stats.miss += 1;
        }
        if let Some(basis) = meta.basis {
            self.tmpl
                .insert_reduce(tsig, bsig, problem.clone(), placement.clone(), basis);
        }
        Some(placement)
    }

    /// Whether a cached full-capacity stage plan still fits the stage's
    /// remaining WAN budget. Between the instance that produced the plan and
    /// this one, launched tasks may have consumed budget the plan assumed
    /// was still available — replaying it then overspends `ρ`. Compares the
    /// plan's still-unlaunched cross-site bytes plus everything already
    /// moved against the whole-stage budget (floored, for reduce stages, at
    /// the minimum feasible shuffle volume exactly like fresh planning).
    fn cached_plan_fits_wan(&self, st: &StageSnapshot, c: &CachedPlan) -> bool {
        if self.cfg.wan.is_unbounded() {
            return true;
        }
        const EPS: f64 = 1e-9;
        match st.kind {
            StageKind::Map => {
                let full_total: f64 = st.tasks.iter().map(|t| t.input_gb).sum();
                let moved: f64 = st
                    .tasks
                    .iter()
                    .filter(|t| {
                        t.phase != TaskPhase::Unlaunched
                            && t.running_site.is_some()
                            && t.running_site != t.input_site
                    })
                    .map(|t| t.input_gb)
                    .sum();
                let w = wan_budget(self.cfg.wan, 0.0, full_total);
                let pending_remote: f64 = c
                    .ordered
                    .iter()
                    .filter_map(|&(i, site)| st.tasks.get(i).map(|t| (t, site)))
                    .filter(|(t, site)| {
                        t.phase == TaskPhase::Unlaunched && t.input_site != Some(*site)
                    })
                    .map(|(t, _)| t.input_gb)
                    .sum();
                pending_remote <= (w - moved).max(0.0) + EPS
            }
            StageKind::Reduce => {
                let full_total: f64 = st.input_gb.iter().sum();
                let full_min = reduce_min_wan(&st.input_gb);
                let moved: f64 = st
                    .tasks
                    .iter()
                    .filter(|t| t.phase != TaskPhase::Unlaunched)
                    .filter_map(|t| {
                        t.running_site
                            .map(|site| t.share * (full_total - st.input_gb[site.index()]))
                    })
                    .sum();
                let w = wan_budget(self.cfg.wan, full_min, full_total);
                let share_rem: f64 = st
                    .tasks
                    .iter()
                    .filter(|t| t.phase == TaskPhase::Unlaunched)
                    .map(|t| t.share)
                    .sum();
                let shuffle_rem: Vec<f64> = st.input_gb.iter().map(|v| v * share_rem).collect();
                let pending: f64 = c
                    .ordered
                    .iter()
                    .filter_map(|&(i, site)| st.tasks.get(i).map(|t| (t, site)))
                    .filter(|(t, _)| t.phase == TaskPhase::Unlaunched)
                    .map(|(t, site)| t.share * (full_total - st.input_gb[site.index()]))
                    .sum();
                pending <= (w - moved).max(reduce_min_wan(&shuffle_rem)) + EPS
            }
        }
    }

    /// Number of cached full-capacity stage plans (test hook for the
    /// memory-bound regression).
    #[doc(hidden)]
    pub fn stage_plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Number of template-cache entries (test hook).
    #[doc(hidden)]
    pub fn template_cache_len(&self) -> usize {
        self.tmpl.len()
    }

    /// Template-cache counters of the last scheduling instance (test hook).
    #[doc(hidden)]
    pub fn last_template_stats(&self) -> crate::plan_cache::CacheStats {
        self.last_tmpl_stats
    }
}

/// Cheap site-local plan for jobs past the LP budget: map tasks stay home,
/// reduce tasks follow the data.
fn plan_stage_local(st: &StageSnapshot, n: usize) -> Outcome {
    let unl: Vec<usize> = st
        .tasks
        .iter()
        .filter(|t| t.phase == TaskPhase::Unlaunched)
        .map(|t| t.index)
        .collect();
    match st.kind {
        StageKind::Map => {
            // Homed tasks stay local; homeless ones (no input site, nothing
            // to fetch) go to the least-loaded site so far, ties on index.
            let mut dest = vec![0usize; n];
            let mut ordered: Vec<(usize, SiteId)> = Vec::with_capacity(unl.len());
            for &i in &unl {
                let site = st.tasks[i].input_site.unwrap_or_else(|| {
                    let y = (0..n)
                        .min_by_key(|&y| (dest[y], y))
                        .expect("cluster has at least one site");
                    SiteId(y)
                });
                dest[site.index()] += 1;
                ordered.push((i, site));
            }
            Outcome {
                dest_counts: dest,
                ordered,
                est_total: f64::MAX / 4.0,
            }
        }
        StageKind::Reduce => {
            let tasks_at = largest_remainder_round(&st.input_gb, unl.len());
            let mut sites: Vec<SiteId> = Vec::with_capacity(unl.len());
            for (y, &c) in tasks_at.iter().enumerate() {
                sites.extend(std::iter::repeat_n(SiteId(y), c));
            }
            while sites.len() < unl.len() {
                sites.push(SiteId(0));
            }
            let ordered: Vec<(usize, SiteId)> = unl
                .iter()
                .enumerate()
                .map(|(j, &i)| (i, sites[j]))
                .collect();
            Outcome {
                dest_counts: tasks_at,
                ordered,
                est_total: f64::MAX / 4.0,
            }
        }
    }
}

/// Whether any unfinished stage consumes `stage_index`'s output.
fn has_consumer(job: &JobSnapshot, stage_index: usize) -> bool {
    job.stages
        .iter()
        .any(|m| !m.done && m.deps.contains(&stage_index))
}

/// Output/input ratio of the given stage.
///
/// Every caller passes an index taken from the same snapshot, so an
/// out-of-range index is a scheduler bug, not a data condition: debug and
/// audit-enabled builds fail loudly instead of silently disabling
/// lookahead. Release builds degrade to 0.0 (ratio unknown → no
/// lookahead), which is safe but conservative.
fn stage_ratio(job: &JobSnapshot, stage_index: usize) -> f64 {
    match job.stages.get(stage_index) {
        Some(m) => m.output_ratio,
        None => {
            debug_assert!(
                false,
                "stage_ratio: stage index {stage_index} out of range ({} stages)",
                job.stages.len()
            );
            assert!(
                !tetrium_sim::audit_enabled(),
                "stage_ratio: stage index {stage_index} out of range ({} stages)",
                job.stages.len()
            );
            0.0
        }
    }
}

/// Finds the reduce stage fed (solely) by map stage `stage_index`, for
/// reverse planning.
fn reduce_successor(job: &JobSnapshot, stage_index: usize) -> Option<ReduceStageSpec> {
    let ratio = job.stages.get(stage_index)?.output_ratio;
    job.stages
        .iter()
        .find(|m| m.kind == StageKind::Reduce && !m.done && m.deps == [stage_index])
        .map(|m| ReduceStageSpec {
            num_tasks: m.num_tasks,
            task_secs: m.task_secs,
            map_output_ratio: ratio,
        })
}

/// Rescales a previous per-site count vector to a new total.
fn scale_counts(prev: &[usize], total: usize) -> Vec<usize> {
    let fracs: Vec<f64> = prev.iter().map(|&c| c as f64).collect();
    largest_remainder_round(&fracs, total)
}

/// Rebuilds a source→destination count matrix matching per-site destination
/// totals, preferring local pairs first.
fn redistribute_map(tasks_from: &[usize], dest: &[usize]) -> Vec<Vec<usize>> {
    let n = tasks_from.len();
    let mut counts = vec![vec![0usize; n]; n];
    let mut src_rem = tasks_from.to_vec();
    let mut dst_rem = dest.to_vec();
    for x in 0..n {
        let l = src_rem[x].min(dst_rem[x]);
        counts[x][x] = l;
        src_rem[x] -= l;
        dst_rem[x] -= l;
    }
    let mut y = 0;
    for x in 0..n {
        while src_rem[x] > 0 {
            while y < n && dst_rem[y] == 0 {
                y += 1;
            }
            if y >= n {
                break;
            }
            let m = src_rem[x].min(dst_rem[y]);
            counts[x][y] += m;
            src_rem[x] -= m;
            dst_rem[y] -= m;
        }
    }
    // If destination totals fell short, leftover tasks stay local.
    for x in 0..n {
        counts[x][x] += src_rem[x];
    }
    counts
}

impl Scheduler for TetriumScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn schedule(&mut self, snap: &Snapshot) -> Vec<StagePlan> {
        self.instance += 1;
        // Per-instance planner breakdown for the observability record.
        let (mut lp_planned, mut cache_reused, mut local_planned) = (0usize, 0usize, 0usize);
        // Per-site capacity vectors, computed once per instance and shared by
        // every stage planned below.
        let up = snap.up_vec();
        let down = snap.down_vec();
        // Resource-dynamics detection (§4.2) keys off slot-capacity changes:
        // available bandwidth fluctuates with every in-flight transfer, so
        // comparing it would re-trigger limited updates at every instance.
        let caps: Vec<usize> = snap.sites.iter().map(|s| s.slots).collect();
        let caps_changed = self.prev_caps.as_ref().is_some_and(|p| *p != caps);
        if caps_changed {
            self.restricted = true;
            // Cluster dynamics invalidate every template: the slot
            // quantizations embedded in the fingerprints no longer describe
            // the cluster, and a stale basis would only waste a failed warm
            // attempt.
            self.tmpl.clear();
        }

        // Cheap pre-ranking bounds LP work to the likely winners.
        let mut order: Vec<usize> = (0..snap.jobs.len()).collect();
        order.sort_by(|&a, &b| {
            let (ja, jb) = (&snap.jobs[a], &snap.jobs[b]);
            ja.remaining_stages
                .cmp(&jb.remaining_stages)
                .then(ja.arrival.total_cmp(&jb.arrival))
                .then(ja.id.cmp(&jb.id))
        });

        // Pass 1: plan every job against the full current capacity to obtain
        // its remaining-time estimate T_j (the SRPT key of §4.1).
        let full_slots = snap.slots_vec();
        let mut lp_eligible = vec![false; snap.jobs.len()];
        let mut planned: Vec<PlannedJob> = Vec::with_capacity(order.len());
        for (pos, &ji) in order.iter().enumerate() {
            let job = &snap.jobs[ji];
            let use_lp = pos < self.cfg.lp_job_limit;
            lp_eligible[ji] = use_lp;
            let mut t_j = 0.0f64;
            let mut stages = Vec::new();
            for st in &job.runnable {
                let key = (job.id, st.stage_index);
                let unl = st.unlaunched_count();
                let cached = (!caps_changed)
                    .then(|| self.plan_cache.get(&key))
                    .flatten()
                    .filter(|c| unl > 0 && unl * 2 >= c.planned_unlaunched)
                    // A plan computed when the stage's WAN budget was still
                    // intact can overspend `ρ` once intervening instances
                    // have moved data; re-plan instead of replaying it.
                    .filter(|c| self.cached_plan_fits_wan(st, c));
                let (ordered, dest_counts, est) = match cached {
                    Some(c) => {
                        cache_reused += 1;
                        (c.ordered.clone(), c.dest_counts.clone(), c.est_total)
                    }
                    None => {
                        let outcome = if use_lp {
                            lp_planned += 1;
                            self.plan_stage_lp(snap, job, st, caps_changed, &full_slots, &up, &down)
                        } else {
                            local_planned += 1;
                            plan_stage_local(st, snap.sites.len())
                        };
                        self.plan_cache.insert(
                            key,
                            CachedPlan {
                                ordered: outcome.ordered.clone(),
                                dest_counts: outcome.dest_counts.clone(),
                                est_total: outcome.est_total,
                                planned_unlaunched: unl,
                                contended: false,
                            },
                        );
                        (outcome.ordered, outcome.dest_counts, outcome.est_total)
                    }
                };
                t_j = t_j.max(est);
                stages.push(PlannedStage {
                    stage_index: st.stage_index,
                    ordered,
                    dest_counts,
                });
            }
            planned.push(PlannedJob {
                job_idx: ji,
                t_j,
                stages,
            });
        }

        // Final ranking.
        match self.cfg.job_policy {
            JobPolicy::Srpt => planned.sort_by(|a, b| {
                let (ja, jb) = (&snap.jobs[a.job_idx], &snap.jobs[b.job_idx]);
                ja.remaining_stages
                    .cmp(&jb.remaining_stages)
                    .then(a.t_j.total_cmp(&b.t_j))
                    .then(ja.arrival.total_cmp(&jb.arrival))
                    .then(ja.id.cmp(&jb.id))
            }),
            JobPolicy::Fair => planned.sort_by(|a, b| {
                let (ja, jb) = (&snap.jobs[a.job_idx], &snap.jobs[b.job_idx]);
                ja.arrival.total_cmp(&jb.arrival).then(ja.id.cmp(&jb.id))
            }),
        }

        // Pass 2: allocate slots to jobs in rank order (§4.1: "allocate
        // slots D_k to job k ... until there is no remaining slot"). Each
        // job's slot demand is D_x = min(available_x, tasks there) — its
        // current wave, not its whole queue. The top-ranked job keeps its
        // full-capacity plan; once the free pool is partly drained, later
        // jobs re-plan against what is left, and once it is empty they fall
        // back to site-local plans (they cannot launch now anyway, and will
        // be re-planned when slots free up) — this prevents queued jobs from
        // speculatively scattering data across the WAN.
        let mut avail: Vec<usize> = snap.sites.iter().map(|s| s.free_slots).collect();
        let full_free = avail.clone();
        for (rank, p) in planned.iter_mut().enumerate() {
            let job = &snap.jobs[p.job_idx];
            let drained = avail != full_free;
            let empty = avail.iter().all(|&a| a == 0);
            if rank > 0 && drained && lp_eligible[p.job_idx] {
                // Re-plan against the drained pool at most once per cache
                // generation: a still-valid contended plan is reused, which
                // bounds LP work per stage instead of re-solving at every
                // scheduling instance while the job queues.
                let needs_replan = job.runnable.iter().any(|st| {
                    self.plan_cache
                        .get(&(job.id, st.stage_index))
                        .is_none_or(|c| !c.contended)
                });
                if needs_replan {
                    let mut stages = Vec::with_capacity(p.stages.len());
                    for st in &job.runnable {
                        let outcome = if empty {
                            local_planned += 1;
                            plan_stage_local(st, snap.sites.len())
                        } else {
                            lp_planned += 1;
                            self.plan_stage_lp(snap, job, st, caps_changed, &avail, &up, &down)
                        };
                        self.plan_cache.insert(
                            (job.id, st.stage_index),
                            CachedPlan {
                                ordered: outcome.ordered.clone(),
                                dest_counts: outcome.dest_counts.clone(),
                                est_total: outcome.est_total,
                                planned_unlaunched: st.unlaunched_count(),
                                contended: true,
                            },
                        );
                        stages.push(PlannedStage {
                            stage_index: st.stage_index,
                            ordered: outcome.ordered,
                            dest_counts: outcome.dest_counts,
                        });
                    }
                    p.stages = stages;
                }
            }
            for ps in &p.stages {
                self.prev_dest
                    .insert((job.id, ps.stage_index), ps.dest_counts.clone());
                for (x, &d) in ps.dest_counts.iter().enumerate() {
                    avail[x] = avail[x].saturating_sub(d.min(avail[x]));
                }
            }
        }

        // Fairness reservations (§4.4): the first `reserved[i]` tasks of each
        // job land in a band that outranks all regular assignments.
        let eps = self.cfg.epsilon.clamp(0.0, 1.0);
        let s_free = snap.total_free_slots();
        let f: Vec<usize> = planned
            .iter()
            .map(|p| snap.jobs[p.job_idx].remaining_runnable_tasks())
            .collect();
        let f_total: usize = f.iter().sum();
        let reserved: Vec<usize> = match self.cfg.job_policy {
            // Fair sharing dispatches everything round-robin.
            JobPolicy::Fair => f.clone(),
            JobPolicy::Srpt if eps < 1.0 && f_total > 0 => f
                .iter()
                .map(|&fi| {
                    ((1.0 - eps) * s_free as f64 * fi as f64 / f_total as f64).floor() as usize
                })
                .collect(),
            JobPolicy::Srpt => vec![0; planned.len()],
        };

        const STRIDE: i64 = 1 << 32;
        let njobs = planned.len().max(1) as i64;
        let mut plans = Vec::new();
        for (rank, p) in planned.iter().enumerate() {
            let job_id = snap.jobs[p.job_idx].id;
            let mut remaining_reserved = reserved[rank];
            let mut res_pos: i64 = 0;
            let mut reg_pos: i64 = 0;
            for ps in &p.stages {
                let mut assignments = Vec::with_capacity(ps.ordered.len());
                for &(task, site) in &ps.ordered {
                    let priority = if remaining_reserved > 0 {
                        remaining_reserved -= 1;
                        let pr = res_pos * njobs + rank as i64;
                        res_pos += 1;
                        pr
                    } else {
                        let pr = (rank as i64 + 1) * STRIDE + reg_pos;
                        reg_pos += 1;
                        pr
                    };
                    assignments.push(TaskAssignment {
                        task,
                        site,
                        priority,
                    });
                }
                plans.push(StagePlan {
                    job: job_id,
                    stage: ps.stage_index,
                    assignments,
                });
            }
        }
        self.prev_caps = Some(caps);
        // Eager eviction at instance end: a stage plan is only ever looked
        // up for stages that are runnable in the current snapshot, so
        // anything else — finished stages of live jobs as much as whole
        // finished jobs — is dead weight. Evicting here (rather than lazily
        // on lookup) keeps both maps bounded by the number of concurrently
        // runnable stages across a long recurring workload.
        let runnable: HashSet<(JobId, usize)> = snap
            .jobs
            .iter()
            .flat_map(|j| j.runnable.iter().map(move |st| (j.id, st.stage_index)))
            .collect();
        self.plan_cache.retain(|k, _| runnable.contains(k));
        self.prev_dest.retain(|k, _| runnable.contains(k));
        let tmpl = self.tmpl.stats.take();
        self.last_tmpl_stats = tmpl;
        self.obs.planner_record(PlannerRecord {
            at: snap.now,
            lp_planned,
            cache_reused,
            local_planned,
            tmpl_exact: tmpl.exact,
            tmpl_patched: tmpl.patched,
            tmpl_warm: tmpl.warm,
            tmpl_miss: tmpl.miss,
            warm_pivots: tmpl.warm_pivots,
        });
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium_sim::{SiteState, StageMeta, TaskSnapshot};

    fn sites3() -> Vec<SiteState> {
        vec![
            SiteState {
                slots: 40,
                free_slots: 40,
                up_gbps: 5.0,
                down_gbps: 5.0,
            },
            SiteState {
                slots: 10,
                free_slots: 10,
                up_gbps: 1.0,
                down_gbps: 1.0,
            },
            SiteState {
                slots: 20,
                free_slots: 20,
                up_gbps: 2.0,
                down_gbps: 5.0,
            },
        ]
    }

    fn map_task(i: usize, site: usize, gb: f64) -> TaskSnapshot {
        TaskSnapshot {
            index: i,
            phase: TaskPhase::Unlaunched,
            input_site: Some(SiteId(site)),
            input_gb: gb,
            share: 0.0,
            running_site: None,
        }
    }

    fn reduce_task(i: usize, share: f64, gb: f64) -> TaskSnapshot {
        TaskSnapshot {
            index: i,
            phase: TaskPhase::Unlaunched,
            input_site: None,
            input_gb: gb,
            share,
            running_site: None,
        }
    }

    /// A single-stage map job over the Fig 4 input, with the given number of
    /// tasks homed at each site.
    fn map_job(id: usize, tasks_per_site: [usize; 3]) -> JobSnapshot {
        let mut tasks = Vec::new();
        let gb = [20.0, 30.0, 50.0];
        let mut idx = 0;
        for (s, &c) in tasks_per_site.iter().enumerate() {
            for _ in 0..c {
                tasks.push(map_task(idx, s, gb[s] / c as f64));
                idx += 1;
            }
        }
        let n = tasks.len();
        JobSnapshot {
            id: JobId(id),
            arrival: 0.0,
            total_stages: 1,
            remaining_stages: 1,
            stages: vec![StageMeta {
                kind: StageKind::Map,
                deps: vec![],
                num_tasks: n,
                task_secs: 2.0,
                output_ratio: 0.5,
                done: false,
            }],
            runnable: vec![StageSnapshot {
                stage_index: 0,
                kind: StageKind::Map,
                est_task_secs: 2.0,
                num_tasks: n,
                input_gb: vec![20.0, 30.0, 50.0],
                tasks,
            }],
        }
    }

    fn snap(jobs: Vec<JobSnapshot>) -> Snapshot {
        Snapshot {
            now: 0.0,
            sites: sites3(),
            jobs,
        }
    }

    #[test]
    fn assigns_every_unlaunched_task() {
        let mut sched = TetriumScheduler::standard();
        let s = snap(vec![map_job(0, [20, 30, 50])]);
        let plans = sched.schedule(&s);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].assignments.len(), 100);
        let mut seen: Vec<usize> = plans[0].assignments.iter().map(|a| a.task).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn homeless_map_tasks_are_placed_not_panicked_on() {
        // Regression: snapshots with map tasks lacking a home site (e.g.
        // generated work with ephemeral input) used to hit an `unwrap` in
        // the source-grouping pass. They must instead be placeable
        // anywhere, deterministically, alongside normally homed tasks.
        let mut sched = TetriumScheduler::standard();
        let mut job = map_job(0, [4, 3, 3]);
        for t in &mut job.runnable[0].tasks {
            if t.index >= 6 {
                t.input_site = None;
                t.input_gb = 0.0;
            }
        }
        let plans = sched.schedule(&snap(vec![job]));
        assert_eq!(plans.len(), 1);
        let mut seen: Vec<usize> = plans[0].assignments.iter().map(|a| a.task).collect();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..10).collect::<Vec<_>>(),
            "every task assigned once"
        );
        for a in &plans[0].assignments {
            assert!(a.site.index() < 3);
        }
        // Determinism: the same snapshot schedules identically.
        let mut job2 = map_job(0, [4, 3, 3]);
        for t in &mut job2.runnable[0].tasks {
            if t.index >= 6 {
                t.input_site = None;
                t.input_gb = 0.0;
            }
        }
        let plans2 = TetriumScheduler::standard().schedule(&snap(vec![job2]));
        let key = |p: &Vec<StagePlan>| {
            let mut v: Vec<(usize, usize)> = p[0]
                .assignments
                .iter()
                .map(|a| (a.task, a.site.index()))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&plans), key(&plans2));
    }

    #[test]
    fn all_homeless_stage_spreads_over_sites() {
        let mut sched = TetriumScheduler::standard();
        let mut job = map_job(0, [10, 0, 0]);
        for t in &mut job.runnable[0].tasks {
            t.input_site = None;
            t.input_gb = 0.0;
        }
        job.runnable[0].input_gb = vec![0.0, 0.0, 0.0];
        let plans = sched.schedule(&snap(vec![job]));
        assert_eq!(plans[0].assignments.len(), 10);
    }

    #[test]
    fn stage_ratio_reads_known_stage() {
        let job = map_job(0, [1, 1, 1]);
        assert_eq!(stage_ratio(&job, 0), 0.5);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stage_ratio: stage index 7 out of range")]
    fn stage_ratio_out_of_range_fails_loudly_in_debug() {
        let job = map_job(0, [1, 1, 1]);
        let _ = stage_ratio(&job, 7);
    }

    #[test]
    fn moves_work_toward_powerful_site() {
        let mut sched = TetriumScheduler::standard();
        // The full Fig 4 instance (1000 tasks of 100 MB): compute dominates,
        // so the LP shifts work to site 0 as in the paper's better approach.
        let s = snap(vec![map_job(0, [200, 300, 500])]);
        let plans = sched.schedule(&s);
        let at = |site: usize| {
            plans[0]
                .assignments
                .iter()
                .filter(|a| a.site == SiteId(site))
                .count()
        };
        // Paper's plan runs ~571 tasks at site 0 and ~143 at site 1.
        assert!(at(0) > 450, "site0 got {}", at(0));
        assert!(at(1) < 250, "site1 got {}", at(1));
    }

    #[test]
    fn rho_zero_keeps_map_tasks_local() {
        let cfg = TetriumConfig {
            wan: WanKnob::new(0.0),
            ..TetriumConfig::default()
        };
        let mut sched = TetriumScheduler::new(cfg);
        let s = snap(vec![map_job(0, [20, 30, 50])]);
        let plans = sched.schedule(&s);
        for a in &plans[0].assignments {
            let home = s.jobs[0].runnable[0].tasks[a.task].input_site.unwrap();
            assert_eq!(a.site, home, "task {} moved despite rho=0", a.task);
        }
    }

    #[test]
    fn srpt_ranks_small_job_first() {
        let mut sched = TetriumScheduler::standard();
        // Job 1 is much smaller than job 0.
        let s = snap(vec![map_job(0, [20, 30, 50]), map_job(1, [2, 3, 5])]);
        let plans = sched.schedule(&s);
        let min_pri = |job: usize| {
            plans
                .iter()
                .filter(|p| p.job == JobId(job))
                .flat_map(|p| p.assignments.iter().map(|a| a.priority))
                .min()
                .unwrap()
        };
        assert!(
            min_pri(1) < min_pri(0),
            "small job must outrank the large one"
        );
    }

    #[test]
    fn epsilon_zero_reserves_for_both_jobs() {
        let cfg = TetriumConfig {
            epsilon: 0.0,
            ..TetriumConfig::default()
        };
        let mut sched = TetriumScheduler::new(cfg);
        let s = snap(vec![map_job(0, [20, 30, 50]), map_job(1, [2, 3, 5])]);
        let plans = sched.schedule(&s);
        // Both jobs must own assignments in the reserved band (< 2^32).
        for job in 0..2 {
            let reserved = plans
                .iter()
                .filter(|p| p.job == JobId(job))
                .flat_map(|p| p.assignments.iter())
                .filter(|a| a.priority < (1 << 32))
                .count();
            assert!(reserved > 0, "job {job} got no reserved slots");
        }
    }

    #[test]
    fn iridium_placement_keeps_maps_local() {
        let cfg = TetriumConfig {
            placement: PlacementPolicy::IridiumNet,
            ..TetriumConfig::default()
        };
        let mut sched = TetriumScheduler::new(cfg);
        assert_eq!(sched.name(), "tetrium+i-task");
        let s = snap(vec![map_job(0, [20, 30, 50])]);
        let plans = sched.schedule(&s);
        for a in &plans[0].assignments {
            let home = s.jobs[0].runnable[0].tasks[a.task].input_site.unwrap();
            assert_eq!(a.site, home);
        }
    }

    #[test]
    fn reduce_stage_is_planned_and_ordered_longest_first() {
        let mut sched = TetriumScheduler::standard();
        let tasks: Vec<TaskSnapshot> = (0..10)
            .map(|i| reduce_task(i, 0.1, 5.0 * (1.0 + (i % 3) as f64)))
            .collect();
        let job = JobSnapshot {
            id: JobId(0),
            arrival: 0.0,
            total_stages: 2,
            remaining_stages: 1,
            stages: vec![
                StageMeta {
                    kind: StageKind::Map,
                    deps: vec![],
                    num_tasks: 10,
                    task_secs: 1.0,
                    output_ratio: 0.5,
                    done: true,
                },
                StageMeta {
                    kind: StageKind::Reduce,
                    deps: vec![0],
                    num_tasks: 10,
                    task_secs: 1.0,
                    output_ratio: 0.1,
                    done: false,
                },
            ],
            runnable: vec![StageSnapshot {
                stage_index: 1,
                kind: StageKind::Reduce,
                est_task_secs: 1.0,
                num_tasks: 10,
                input_gb: vec![10.0, 15.0, 25.0],
                tasks,
            }],
        };
        let plans = sched.schedule(&snap(vec![job]));
        assert_eq!(plans[0].assignments.len(), 10);
        // Longest-first: the assignment with the smallest priority must be
        // one of the largest-input tasks (input 10 GB, i % 3 == 2).
        let first = plans[0]
            .assignments
            .iter()
            .min_by_key(|a| a.priority)
            .unwrap();
        assert_eq!(first.task % 3, 2);
    }

    #[test]
    fn dynamics_limits_changed_sites() {
        let cfg = TetriumConfig {
            dynamics_k: Some(1),
            ..TetriumConfig::default()
        };
        let mut sched = TetriumScheduler::new(cfg);
        let s1 = snap(vec![map_job(0, [20, 30, 50])]);
        let plans1 = sched.schedule(&s1);
        let dest1 = dest_counts(&plans1, 3);
        // Degrade site 0 heavily and re-schedule.
        let mut s2 = s1.clone();
        s2.sites[0].slots = 4;
        s2.sites[0].free_slots = 4;
        let plans2 = sched.schedule(&s2);
        let dest2 = dest_counts(&plans2, 3);
        let changed = dest1.iter().zip(&dest2).filter(|(a, b)| a != b).count();
        // k = 1 bounds *updated* sites, but conservation forces at least one
        // absorber, so allow k + 1 changed counts.
        assert!(
            changed <= 2,
            "changed {changed} sites: {dest1:?} -> {dest2:?}"
        );
    }

    fn dest_counts(plans: &[StagePlan], n: usize) -> Vec<usize> {
        let mut d = vec![0usize; n];
        for p in plans {
            for a in &p.assignments {
                d[a.site.index()] += 1;
            }
        }
        d
    }

    #[test]
    fn fair_policy_interleaves_jobs() {
        let cfg = TetriumConfig {
            job_policy: JobPolicy::Fair,
            ..TetriumConfig::default()
        };
        let mut sched = TetriumScheduler::new(cfg);
        assert_eq!(sched.name(), "tetrium+fs");
        let s = snap(vec![map_job(0, [20, 30, 50]), map_job(1, [20, 30, 50])]);
        let plans = sched.schedule(&s);
        // Collect global priority order of (priority, job) and check the
        // first two tasks belong to different jobs (round-robin).
        let mut all: Vec<(i64, usize)> = plans
            .iter()
            .flat_map(|p| {
                p.assignments
                    .iter()
                    .map(move |a| (a.priority, p.job.index()))
            })
            .collect();
        all.sort_unstable();
        assert_ne!(all[0].1, all[1].1, "fair policy must interleave jobs");
    }

    /// Remote GB assigned to still-unlaunched tasks in a set of plans.
    fn remote_gb(plans: &[StagePlan], st: &StageSnapshot) -> f64 {
        plans
            .iter()
            .flat_map(|p| p.assignments.iter())
            .filter(|a| {
                let t = &st.tasks[a.task];
                t.phase == TaskPhase::Unlaunched && t.input_site != Some(a.site)
            })
            .map(|a| st.tasks[a.task].input_gb)
            .sum()
    }

    /// Satellite regression: a cached stage plan must be invalidated once
    /// intervening instances consume WAN budget it assumed was available.
    /// Before the fix, the reuse guard only checked the unlaunched count, so
    /// the stale plan replayed its remote assignments and overspent `ρ`.
    #[test]
    fn stale_cached_plan_is_invalidated_when_wan_budget_is_consumed() {
        let cfg = TetriumConfig {
            wan: WanKnob::new(0.3), // 30 GB budget over the 100 GB stage.
            ..TetriumConfig::default()
        };
        let mut sched = TetriumScheduler::new(cfg);
        let s1 = snap(vec![map_job(0, [20, 30, 50])]);
        let plans1 = sched.schedule(&s1);
        assert!(remote_gb(&plans1, &s1.jobs[0].runnable[0]) <= 30.0 + 1e-6);

        // Second instance: 30 tasks have launched — 20 of them remotely,
        // consuming 20 GB of the 30 GB stage budget — while 70 remain
        // unlaunched (enough that the count-based guard alone would reuse
        // the cached plan).
        let mut s2 = s1.clone();
        {
            let st = &mut s2.jobs[0].runnable[0].tasks;
            for t in st.iter_mut().take(20) {
                // Site-0 tasks running remotely at site 2.
                t.phase = TaskPhase::Running;
                t.running_site = Some(SiteId(2));
            }
            for t in st.iter_mut().skip(20).take(10) {
                // Ten site-1 tasks running at home (no WAN cost).
                t.phase = TaskPhase::Running;
                t.running_site = t.input_site;
            }
        }
        let plans2 = sched.schedule(&s2);
        // Only 10 GB of budget remains; the re-planned assignments for the
        // 70 unlaunched tasks must fit inside it.
        let moved2 = remote_gb(&plans2, &s2.jobs[0].runnable[0]);
        assert!(
            moved2 <= 10.0 + 1e-6,
            "stale plan replayed: {moved2} GB remote against 10 GB remaining budget"
        );
    }

    /// The WAN check itself must not invalidate plans that still fit: an
    /// identical snapshot reuses the cached plan (no LP re-solve).
    #[test]
    fn cached_plan_still_reused_when_budget_intact() {
        let cfg = TetriumConfig {
            wan: WanKnob::new(0.3),
            ..TetriumConfig::default()
        };
        let mut sched = TetriumScheduler::new(cfg);
        let s1 = snap(vec![map_job(0, [20, 30, 50])]);
        let plans1 = sched.schedule(&s1);
        let plans2 = sched.schedule(&s1);
        assert_eq!(dest_counts(&plans1, 3), dest_counts(&plans2, 3));
    }

    /// Satellite regression: stage-plan cache entries are evicted eagerly at
    /// instance end, so a long stream of recurring jobs cannot grow the maps
    /// without bound (before the fix, entries of finished stages lingered
    /// until their job finished, and entries of finished jobs until the next
    /// instance's lazy sweep).
    #[test]
    fn plan_cache_stays_bounded_over_many_recurring_instances() {
        let cfg = TetriumConfig {
            plan_cache: PlanCacheMode::Full,
            ..TetriumConfig::default()
        };
        let mut sched = TetriumScheduler::new(cfg);
        for i in 0..520 {
            // Each instance carries a fresh job (the previous one finished).
            let s = snap(vec![map_job(i, [2, 3, 5])]);
            sched.schedule(&s);
            assert!(
                sched.stage_plan_cache_len() <= 1,
                "instance {i}: {} cached stage plans",
                sched.stage_plan_cache_len()
            );
            assert!(sched.template_cache_len() <= 256);
        }
        // The template cache *should* be carrying cross-job entries.
        assert!(sched.template_cache_len() >= 1);
    }

    /// A finished stage of a still-live job is evicted as soon as it leaves
    /// the runnable set.
    #[test]
    fn finished_stage_entries_are_evicted_while_job_lives() {
        let mut sched = TetriumScheduler::standard();
        let s1 = snap(vec![map_job(0, [20, 30, 50])]);
        sched.schedule(&s1);
        assert_eq!(sched.stage_plan_cache_len(), 1);
        // Same job, but stage 0 finished and a reduce stage took its place.
        let mut job = map_job(0, [20, 30, 50]);
        job.total_stages = 2;
        job.stages[0].done = true;
        job.stages.push(StageMeta {
            kind: StageKind::Reduce,
            deps: vec![0],
            num_tasks: 10,
            task_secs: 1.0,
            output_ratio: 0.1,
            done: false,
        });
        job.runnable = vec![StageSnapshot {
            stage_index: 1,
            kind: StageKind::Reduce,
            est_task_secs: 1.0,
            num_tasks: 10,
            input_gb: vec![10.0, 15.0, 25.0],
            tasks: (0..10).map(|i| reduce_task(i, 0.1, 5.0)).collect(),
        }];
        sched.schedule(&snap(vec![job]));
        assert_eq!(
            sched.stage_plan_cache_len(),
            1,
            "finished stage 0 must be evicted, leaving only stage 1"
        );
    }

    /// `Exact` caching must not change a single assignment relative to an
    /// uncached scheduler fed the same snapshots.
    #[test]
    fn exact_cache_mode_is_plan_identical_to_off() {
        let mut off = TetriumScheduler::standard();
        let cfg = TetriumConfig {
            plan_cache: PlanCacheMode::Exact,
            ..TetriumConfig::default()
        };
        let mut exact = TetriumScheduler::new(cfg);
        for i in 0..5 {
            // Alternate two recurring shapes so the second submission of
            // each hits the cache.
            let shape = if i % 2 == 0 {
                [20, 30, 50]
            } else {
                [10, 10, 10]
            };
            let s = snap(vec![map_job(i, shape)]);
            let a = off.schedule(&s);
            let b = exact.schedule(&s);
            for (pa, pb) in a.iter().zip(b.iter()) {
                assert_eq!(pa.job, pb.job);
                assert_eq!(pa.stage, pb.stage);
                assert_eq!(pa.assignments, pb.assignments, "instance {i}");
            }
        }
    }

    /// Full mode serves repeat instances from the template cache (exact
    /// tier) and drifted instances without a cold solve.
    #[test]
    fn full_cache_mode_reuses_templates_across_jobs() {
        let cfg = TetriumConfig {
            plan_cache: PlanCacheMode::Full,
            ..TetriumConfig::default()
        };
        let mut sched = TetriumScheduler::new(cfg);
        sched.schedule(&snap(vec![map_job(0, [20, 30, 50])]));
        let first = sched.last_template_stats();
        assert_eq!(first.miss, 1);
        // A different job with the same stage shape: exact template hit.
        sched.schedule(&snap(vec![map_job(1, [20, 30, 50])]));
        let second = sched.last_template_stats();
        assert_eq!(second.exact, 1, "{second:?}");
        assert_eq!(second.miss, 0);
    }

    /// Dynamics events (slot-capacity changes) clear the template cache.
    #[test]
    fn capacity_change_clears_template_cache() {
        let cfg = TetriumConfig {
            plan_cache: PlanCacheMode::Full,
            ..TetriumConfig::default()
        };
        let mut sched = TetriumScheduler::new(cfg);
        let s1 = snap(vec![map_job(0, [20, 30, 50])]);
        sched.schedule(&s1);
        assert!(sched.template_cache_len() > 0);
        let mut s2 = s1.clone();
        s2.sites[1].slots = 5;
        s2.sites[1].free_slots = 5;
        sched.schedule(&s2);
        // Cleared on entry, then repopulated by this instance's solves
        // against the *new* slot vector only.
        assert!(sched.template_cache_len() >= 1);
        let stats = sched.last_template_stats();
        assert_eq!(stats.exact + stats.patched + stats.warm, 0, "{stats:?}");
    }
}
