//! Intra-stage task ordering (§3.3).
//!
//! With constrained slots a stage runs in waves, so *which* tasks launch
//! first matters. The paper's rules: start long tasks first. For map stages
//! the long tasks are the remote ones (bounded by the source's uplink), so
//! launch remote before local while *spreading* remote launches across
//! source sites instead of draining the most-constrained site first. For
//! reduce stages, launch the tasks with the largest input (longest shuffle)
//! first. Fig 9 compares these against Local-First and Random.

use tetrium_cluster::SiteId;

/// Map-stage ordering strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapOrdering {
    /// Remote tasks first, longest fetch first, interleaved across source
    /// sites (the paper's proposal).
    #[default]
    RemoteFirstSpread,
    /// Local tasks first (the strawman of Fig 9).
    LocalFirst,
    /// Stage order as-is (no reordering).
    Fifo,
}

/// Reduce-stage ordering strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceOrdering {
    /// Largest-input (longest transfer) first (the paper's proposal).
    #[default]
    LongestFirst,
    /// Arbitrary order (the strawman of Fig 9); deterministic given `seed`.
    Random,
}

/// A map task queued for ordering: `(task index, source site, volume GB,
/// destination site)`.
pub type MapTaskRef = (usize, SiteId, f64, SiteId);

/// Orders map tasks, returning task indices in launch order.
///
/// `up_gbps` provides the source uplink bandwidths used to estimate fetch
/// times for `RemoteFirstSpread`.
pub fn order_map_tasks(ordering: MapOrdering, tasks: &[MapTaskRef], up_gbps: &[f64]) -> Vec<usize> {
    match ordering {
        MapOrdering::Fifo => tasks.iter().map(|t| t.0).collect(),
        MapOrdering::LocalFirst => {
            let mut local: Vec<usize> = Vec::new();
            let mut remote: Vec<usize> = Vec::new();
            for &(i, src, _, dst) in tasks {
                if src == dst {
                    local.push(i);
                } else {
                    remote.push(i);
                }
            }
            local.into_iter().chain(remote).collect()
        }
        MapOrdering::RemoteFirstSpread => {
            // Group remote tasks by source site, each group sorted by fetch
            // time descending.
            let mut groups: Vec<(f64, Vec<(f64, usize)>)> = Vec::new();
            let mut by_src: std::collections::BTreeMap<usize, Vec<(f64, usize)>> =
                std::collections::BTreeMap::new();
            let mut local: Vec<usize> = Vec::new();
            for &(i, src, gb, dst) in tasks {
                if src == dst {
                    local.push(i);
                } else {
                    let fetch = gb / up_gbps[src.index()].max(1e-12);
                    by_src.entry(src.index()).or_default().push((fetch, i));
                }
            }
            for (_, mut g) in by_src {
                g.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                let head = g[0].0;
                groups.push((head, g));
            }
            // Most-constrained source first, but interleave round-robin so no
            // single uplink is hammered by consecutive launches.
            groups.sort_by(|a, b| b.0.total_cmp(&a.0));
            let mut order = Vec::with_capacity(tasks.len());
            let mut cursors: Vec<std::vec::IntoIter<(f64, usize)>> =
                groups.into_iter().map(|(_, g)| g.into_iter()).collect();
            loop {
                let mut emitted = false;
                for c in &mut cursors {
                    if let Some((_, i)) = c.next() {
                        order.push(i);
                        emitted = true;
                    }
                }
                if !emitted {
                    break;
                }
            }
            order.extend(local);
            order
        }
    }
}

/// Orders reduce tasks, returning task indices in launch order.
///
/// `inputs` is `(task index, input volume GB)`; `seed` drives the `Random`
/// strategy (a small xorshift so this crate stays dependency-light).
pub fn order_reduce_tasks(
    ordering: ReduceOrdering,
    inputs: &[(usize, f64)],
    seed: u64,
) -> Vec<usize> {
    match ordering {
        ReduceOrdering::LongestFirst => {
            let mut v: Vec<(usize, f64)> = inputs.to_vec();
            v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            v.into_iter().map(|(i, _)| i).collect()
        }
        ReduceOrdering::Random => {
            let mut v: Vec<usize> = inputs.iter().map(|t| t.0).collect();
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for i in (1..v.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                v.swap(i, j);
            }
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> SiteId {
        SiteId(i)
    }

    #[test]
    fn remote_first_puts_remote_before_local() {
        let tasks = vec![
            (0, s(0), 1.0, s(0)), // local
            (1, s(1), 1.0, s(0)), // remote
            (2, s(0), 1.0, s(0)), // local
            (3, s(2), 1.0, s(0)), // remote
        ];
        let order = order_map_tasks(MapOrdering::RemoteFirstSpread, &tasks, &[1.0, 0.5, 2.0]);
        assert_eq!(order.len(), 4);
        // Remote tasks (1, 3) come first; source 1 has the slowest uplink so
        // its task leads.
        assert_eq!(&order[..2], &[1, 3]);
        assert_eq!(&order[2..], &[0, 2]);
    }

    #[test]
    fn remote_first_spreads_across_sources() {
        // Two remote tasks per source; they must interleave 1,2,1,2 rather
        // than 1,1,2,2.
        let tasks = vec![
            (0, s(1), 4.0, s(0)),
            (1, s(1), 3.0, s(0)),
            (2, s(2), 2.0, s(0)),
            (3, s(2), 1.0, s(0)),
        ];
        let order = order_map_tasks(MapOrdering::RemoteFirstSpread, &tasks, &[1.0, 0.5, 2.0]);
        // Source 1 fetch times: 8, 6; source 2: 1, 0.5. Round-robin by
        // group: 0 (src1, longest), 2 (src2 longest), 1, 3.
        assert_eq!(order, vec![0, 2, 1, 3]);
    }

    #[test]
    fn local_first_reverses_the_bias() {
        let tasks = vec![(0, s(1), 1.0, s(0)), (1, s(0), 1.0, s(0))];
        let order = order_map_tasks(MapOrdering::LocalFirst, &tasks, &[1.0, 1.0]);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn fifo_keeps_order() {
        let tasks = vec![(5, s(0), 1.0, s(1)), (2, s(0), 1.0, s(0))];
        assert_eq!(
            order_map_tasks(MapOrdering::Fifo, &tasks, &[1.0, 1.0]),
            vec![5, 2]
        );
    }

    #[test]
    fn longest_first_sorts_by_input() {
        let inputs = vec![(0, 1.0), (1, 5.0), (2, 3.0)];
        assert_eq!(
            order_reduce_tasks(ReduceOrdering::LongestFirst, &inputs, 0),
            vec![1, 2, 0]
        );
    }

    #[test]
    fn random_is_deterministic_per_seed_and_permutes() {
        let inputs: Vec<(usize, f64)> = (0..20).map(|i| (i, i as f64)).collect();
        let a = order_reduce_tasks(ReduceOrdering::Random, &inputs, 7);
        let b = order_reduce_tasks(ReduceOrdering::Random, &inputs, 7);
        let c = order_reduce_tasks(ReduceOrdering::Random, &inputs, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
