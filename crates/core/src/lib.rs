//! Tetrium: multi-resource task placement and job scheduling for
//! geo-distributed data analytics (EuroSys '18).
//!
//! This crate is the paper's primary contribution, rebuilt from the
//! formulations of §3 and §4:
//!
//! - [`map_placement`]: the map-stage linear program (§3.1) deciding what
//!   fraction of a stage's tasks runs at site `y` while reading from site
//!   `x`, jointly minimizing aggregation time and multi-wave compute time;
//! - [`reduce_placement`]: the reduce-stage linear program (§3.2) choosing
//!   per-site task fractions to minimize shuffle plus compute time;
//! - [`ordering`]: intra-stage task ordering (§3.3) — remote-first with
//!   source spreading for map stages, longest-transfer-first for reduce
//!   stages — plus the baseline orderings of Fig 9;
//! - [`wan`]: the WAN-usage budget knob `ρ` (§4.3);
//! - [`reverse`]: the reverse (reduce-first) stage planner of §3.4 and the
//!   best-of-forward/reverse selector;
//! - [`dynamics`]: the `k`-site limited re-assignment heuristic reacting to
//!   capacity drops (§4.2);
//! - [`plan_cache`]: template-keyed placement caching and LP warm-starting
//!   across scheduling instances, exploiting the recurring nature of the
//!   target workloads (§2);
//! - [`scheduler`]: [`TetriumScheduler`], the SRPT-based multi-job scheduler
//!   (§4.1) with the fairness knob `ε` (§4.4), packaged as a
//!   [`tetrium_sim::Scheduler`];
//! - [`replicas`]: the multi-replica input selection extension sketched in
//!   §8, as a pre-pass feeding the unchanged map LP;
//! - [`analytic`]: closed-form stage-duration evaluation used to reproduce
//!   the paper's worked example (Fig 3/4) and to rank jobs by remaining
//!   time.

// Index-based loops over site matrices are clearer than iterator chains in
// the placement math; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod analytic;
pub mod dynamics;
pub mod estimate;
pub mod map_placement;
pub mod ordering;
pub mod plan_cache;
pub mod reduce_placement;
pub mod replicas;
pub mod reverse;
pub mod scheduler;
pub mod wan;

pub use analytic::{evaluate_map_counts, evaluate_reduce_counts, StageTimes};
pub use estimate::{estimate_job, JobEstimate};
pub use map_placement::{solve_map_placement, solve_map_placement_warm, MapPlacement, MapProblem};
pub use ordering::{MapOrdering, ReduceOrdering};
pub use plan_cache::{CacheStats, PlanCacheMode, TemplateCache};
pub use reduce_placement::{
    solve_reduce_placement, solve_reduce_placement_warm, ReducePlacement, ReduceProblem,
};
pub use replicas::{replicated_input, select_replicas, ReplicatedPartition};
pub use scheduler::{JobPolicy, PlacementPolicy, StagePlanning, TetriumConfig, TetriumScheduler};
pub use wan::{wan_budget, WanKnob};
