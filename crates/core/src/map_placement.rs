//! Map-stage task placement (§3.1): the `LP: map-task placement`.
//!
//! The decision is what fraction of each site's input data (and hence of its
//! map tasks, which read equal-size partitions) should be processed at every
//! other site, trading a little extra aggregation time for balanced
//! multi-wave compute time.
//!
//! The paper's formulation uses global task fractions `m_{x,y}`; we use the
//! equivalent per-source normalization `a[x][y]` (the fraction of site `x`'s
//! data processed at `y`, `Σ_y a[x][y] = 1`), which stays exact when the
//! engine's partitions are not perfectly proportional to data volumes.

use crate::analytic::StageTimes;
use crate::plan_cache::SolveMeta;
use tetrium_jobs::largest_remainder_round;
use tetrium_lp::{Basis, LpError, Problem, Relation};

/// Inputs of one map-stage placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct MapProblem {
    /// Remaining input volume at each site in GB (`I_x^input`).
    pub input_gb: Vec<f64>,
    /// Remaining (unlaunched) tasks whose partition lives at each site.
    pub tasks_from: Vec<usize>,
    /// Estimated compute seconds per task (`t_map`).
    pub task_secs: f64,
    /// Uplink capacities in GB/s.
    pub up_gbps: Vec<f64>,
    /// Downlink capacities in GB/s.
    pub down_gbps: Vec<f64>,
    /// Slots per site (`S_x`).
    pub slots: Vec<usize>,
    /// Optional WAN budget in GB (§4.3): total bytes moved across sites must
    /// not exceed it.
    pub wan_budget_gb: Option<f64>,
    /// Optional destination data-volume targets (GB per site) for reverse
    /// planning (§3.4): the volume processed at each site is pinned.
    pub forced_dest_gb: Option<Vec<f64>>,
    /// Output/input ratio of this stage when a downstream stage will read
    /// its output. When set, the objective gains a lookahead term
    /// `T_next >= ratio · (data processed at y) / B_y^up` — see
    /// [`crate::reduce_placement::ReduceProblem::next_stage_out_gb`].
    pub next_stage_ratio: Option<f64>,
    /// Restrict remote destinations to the `k` most capable sites (by
    /// slots and by link capacity). Every source may always keep its data
    /// local, so the restricted LP stays feasible; pruning obviously
    /// dominated destinations shrinks the variable count from `n²` to
    /// `n·(k+1)` and is what keeps 50-site scheduling decisions within the
    /// paper's ~100 ms per job (§6.2). `None` solves the full model.
    pub dest_limit: Option<usize>,
}

/// Result of a map-stage placement.
#[derive(Debug, Clone, PartialEq)]
pub struct MapPlacement {
    /// `a[x][y]`: fraction of site `x`'s data processed at `y`.
    pub fractions: Vec<Vec<f64>>,
    /// LP-optimal aggregation and (fractional-wave) compute times.
    pub times: StageTimes,
    /// Integral task counts: `counts[x][y]` tasks homed at `x` run at `y`.
    pub counts: Vec<Vec<usize>>,
    /// Tasks placed at each destination site.
    pub tasks_at: Vec<usize>,
    /// Slot demand `d_x = min(S_x, tasks_at[x])` used by job scheduling
    /// (§3.1 outcome (c)).
    pub slot_demand: Vec<usize>,
    /// WAN bytes this placement moves, in GB.
    pub wan_gb: f64,
}

/// Solves the map-task placement LP.
///
/// Falls back to slot-proportional placement when there is no input data
/// anywhere (nothing to transfer, so only compute balance matters).
///
/// # Panics
///
/// Panics if vector lengths disagree.
///
/// # Errors
///
/// Propagates LP failures (e.g. an infeasibly tight WAN budget combined
/// with `forced_dest_gb`; the plain model is always feasible).
pub fn solve_map_placement(p: &MapProblem) -> Result<MapPlacement, LpError> {
    solve_map_placement_warm(p, None).map(|(placement, _)| placement)
}

/// Like [`solve_map_placement`], but optionally warm-starts the LP from a
/// cached optimal [`Basis`] and reports solver metadata (the new optimal
/// basis, whether the warm start took, pivot count) for the plan cache.
///
/// A placement produced with `warm = Some(..)` is bit-identical to the cold
/// one whenever both solves end at the same optimal basis — the solver
/// re-derives values and duals canonically from the basis — and is always
/// an LP optimum regardless.
///
/// # Panics
///
/// Panics if vector lengths disagree.
///
/// # Errors
///
/// Propagates LP failures, exactly as [`solve_map_placement`].
pub fn solve_map_placement_warm(
    p: &MapProblem,
    warm: Option<&Basis>,
) -> Result<(MapPlacement, SolveMeta), LpError> {
    solve_map_impl(p, warm, warm.is_some())
}

/// Cold solve with canonical LP extraction — the bit-for-bit reference the
/// audit oracle compares a warm-started [`solve_map_placement_warm`]
/// against. A plain cold solve reports the tableau's own floating-point
/// representation of the optimum; this one re-derives it from the optimal
/// vertex exactly like the warm path does, so the two agree bitwise
/// whenever they reach the same vertex.
///
/// # Panics
///
/// Panics if vector lengths disagree.
///
/// # Errors
///
/// Propagates LP failures, exactly as [`solve_map_placement`].
pub fn solve_map_placement_canonical(p: &MapProblem) -> Result<(MapPlacement, SolveMeta), LpError> {
    solve_map_impl(p, None, true)
}

fn solve_map_impl(
    p: &MapProblem,
    warm: Option<&Basis>,
    canonical: bool,
) -> Result<(MapPlacement, SolveMeta), LpError> {
    let n = p.input_gb.len();
    assert_eq!(p.tasks_from.len(), n);
    assert_eq!(p.up_gbps.len(), n);
    assert_eq!(p.down_gbps.len(), n);
    assert_eq!(p.slots.len(), n);
    let num_tasks: usize = p.tasks_from.iter().sum();
    let total_gb: f64 = p.input_gb.iter().sum();

    if num_tasks == 0 {
        return Ok((
            MapPlacement {
                fractions: vec![vec![0.0; n]; n],
                times: StageTimes {
                    transfer: 0.0,
                    compute: 0.0,
                },
                counts: vec![vec![0; n]; n],
                tasks_at: vec![0; n],
                slot_demand: vec![0; n],
                wan_gb: 0.0,
            },
            SolveMeta::default(),
        ));
    }
    if total_gb <= 1e-12 {
        return Ok((slot_proportional(p, n, num_tasks), SolveMeta::default()));
    }

    // Candidate destinations: all sites when unrestricted, otherwise each
    // source itself plus the most capable sites by slots and by links.
    let dest_ok: Vec<bool> = match p.dest_limit {
        None => vec![true; n],
        Some(k) => {
            let mut ok = vec![false; n];
            let half = k.div_ceil(2);
            let mut by_slots: Vec<usize> = (0..n).collect();
            by_slots.sort_by_key(|&i| std::cmp::Reverse(p.slots[i]));
            for &i in by_slots.iter().take(half) {
                ok[i] = true;
            }
            let mut by_bw: Vec<usize> = (0..n).collect();
            by_bw.sort_by(|&a, &b| {
                let ka = p.up_gbps[a].min(p.down_gbps[a]);
                let kb = p.up_gbps[b].min(p.down_gbps[b]);
                kb.total_cmp(&ka)
            });
            for &i in by_bw.iter().take(half) {
                ok[i] = true;
            }
            ok
        }
    };
    // Variable layout: one column per admissible (x, y) pair (y == x is
    // always admissible), then T_aggr, T_map, T_next. The pair list is a
    // sorted sparse index — lexicographic (x, y) order, binary-searched —
    // so no n²-sized lookup table is allocated; with destination pruning
    // the admissible set is O(n · dest_limit).
    let dests: Vec<usize> = (0..n).filter(|&y| dest_ok[y]).collect();
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(n * (dests.len() + 1));
    for x in 0..n {
        let mut inserted = dest_ok[x];
        for &y in &dests {
            if !inserted && x < y {
                pairs.push((x, x));
                inserted = true;
            }
            pairs.push((x, y));
        }
        if !inserted {
            pairs.push((x, x));
        }
    }
    let var = |x: usize, y: usize| {
        pairs
            .binary_search(&(x, y))
            .expect("variable lookup for inadmissible pair")
    };
    let nv = pairs.len();
    let t_aggr = nv;
    let t_map = nv + 1;
    let t_next = nv + 2;
    let mut lp = Problem::minimize(nv + 3);
    lp.set_objective(&[(t_aggr, 1.0), (t_map, 1.0)]);
    if let Some(ratio) = p.next_stage_ratio {
        if ratio > 0.0 {
            lp.add_objective_term(t_next, 1.0);
            for y in 0..n {
                // ratio * sum_x I_x a[x][y] <= T_next * up_y.
                let mut terms: Vec<(usize, f64)> = (0..n)
                    .filter(|&x| x == y || dest_ok[y])
                    .map(|x| (var(x, y), ratio * p.input_gb[x]))
                    .collect();
                if terms.is_empty() {
                    continue;
                }
                terms.push((t_next, -p.up_gbps[y]));
                lp.add_constraint(&terms, Relation::Le, 0.0);
            }
        }
    }

    // Row sums: each site's data is fully assigned.
    for x in 0..n {
        let terms: Vec<(usize, f64)> = (0..n)
            .filter(|&y| y == x || dest_ok[y])
            .map(|y| (var(x, y), 1.0))
            .collect();
        lp.add_constraint(&terms, Relation::Eq, 1.0);
    }
    // Upload time at x: I_x * sum_{y != x} a[x][y] <= T_aggr * up_x.
    for x in 0..n {
        let mut terms: Vec<(usize, f64)> = (0..n)
            .filter(|&y| y != x && dest_ok[y])
            .map(|y| (var(x, y), p.input_gb[x]))
            .collect();
        terms.push((t_aggr, -p.up_gbps[x]));
        lp.add_constraint(&terms, Relation::Le, 0.0);
    }
    // Download time at x: sum_{y != x} I_y * a[y][x] <= T_aggr * down_x.
    for x in 0..n {
        if !dest_ok[x] {
            continue; // No remote data can arrive here.
        }
        let mut terms: Vec<(usize, f64)> = (0..n)
            .filter(|&y| y != x)
            .map(|y| (var(y, x), p.input_gb[y]))
            .collect();
        terms.push((t_aggr, -p.down_gbps[x]));
        lp.add_constraint(&terms, Relation::Le, 0.0);
    }
    // Compute time at y: t * sum_x tasks_from[x] * a[x][y] <= T_map * S_y.
    for y in 0..n {
        let mut terms: Vec<(usize, f64)> = (0..n)
            .filter(|&x| x == y || dest_ok[y])
            .map(|x| (var(x, y), p.task_secs * p.tasks_from[x] as f64))
            .collect();
        if terms.is_empty() {
            continue;
        }
        terms.push((t_map, -(p.slots[y] as f64)));
        lp.add_constraint(&terms, Relation::Le, 0.0);
    }
    // WAN budget: sum_{x != y} I_x a[x][y] <= W.
    if let Some(w) = p.wan_budget_gb {
        let mut terms: Vec<(usize, f64)> = Vec::with_capacity(pairs.len());
        for &(x, y) in &pairs {
            if x != y {
                terms.push((var(x, y), p.input_gb[x]));
            }
        }
        lp.add_constraint(&terms, Relation::Le, w.max(0.0));
    }
    // Reverse planning: pin the data volume processed at each destination.
    if let Some(dest) = &p.forced_dest_gb {
        assert_eq!(dest.len(), n);
        for y in 0..n {
            let terms: Vec<(usize, f64)> = (0..n)
                .filter(|&x| x == y || dest_ok[y])
                .map(|x| (var(x, y), p.input_gb[x]))
                .collect();
            if terms.is_empty() {
                if dest[y].abs() > 1e-9 {
                    return Err(LpError::Infeasible);
                }
                continue;
            }
            lp.add_constraint(&terms, Relation::Eq, dest[y]);
        }
    }

    // A source with no data and no tasks has zero coefficients in every
    // time constraint: its split across destinations is a flat optimal
    // face, and which vertex the solver reports would be an arbitrary
    // pivot-path artifact — a warm-started and a cold solve could then
    // legitimately disagree. Pin such sources in place (a[x][x] = 1, via
    // a[x][y] <= 0 bounds plus the row sum) so the optimum stays unique;
    // semantically nothing moves. The pins are native box constraints —
    // the revised simplex holds a ub = 0 column at its bound instead of
    // carrying a pin row, so the row space and every slack index stay
    // exactly as they would be without the pins.
    for x in 0..n {
        if p.input_gb[x] <= 1e-12 && p.tasks_from[x] == 0 {
            for &y in dests.iter().filter(|&&y| y != x) {
                lp.set_upper(var(x, y), 0.0);
            }
        }
    }

    let sol = match (warm, canonical) {
        (Some(b), _) => lp.solve_from_basis(b)?,
        (None, true) => lp.solve_canonical()?,
        (None, false) => lp.solve()?,
    };
    let mut fractions = vec![vec![0.0; n]; n];
    for &(x, y) in &pairs {
        fractions[x][y] = sol.values[var(x, y)].max(0.0);
    }
    let meta = SolveMeta {
        warm_started: sol.warm_started,
        pivots: sol.pivots,
        basis: Some(sol.basis),
    };
    Ok((
        assemble_map(p, fractions, sol.values[t_aggr], sol.values[t_map]),
        meta,
    ))
}

/// Slot-proportional fallback used when a stage has no data to move.
fn slot_proportional(p: &MapProblem, n: usize, _num_tasks: usize) -> MapPlacement {
    let slot_frac: Vec<f64> = {
        let total: f64 = p.slots.iter().map(|&s| s as f64).sum();
        p.slots.iter().map(|&s| s as f64 / total).collect()
    };
    let mut fractions = vec![vec![0.0; n]; n];
    for x in 0..n {
        fractions[x].clone_from_slice(&slot_frac);
    }
    let compute = {
        // Balanced waves across all slots.
        let tasks: usize = p.tasks_from.iter().sum();
        let slots: usize = p.slots.iter().sum();
        p.task_secs * tasks as f64 / slots as f64
    };
    assemble_map(p, fractions, 0.0, compute)
}

/// Rounds fractions to integral per-source counts and assembles the result.
/// Also used by the plan cache to re-round a cached fractional split
/// against drifted task counts.
pub(crate) fn assemble_map(
    p: &MapProblem,
    fractions: Vec<Vec<f64>>,
    t_aggr: f64,
    t_map: f64,
) -> MapPlacement {
    let n = p.input_gb.len();
    let mut counts = vec![vec![0usize; n]; n];
    let mut tasks_at = vec![0usize; n];
    let mut wan_gb = 0.0;
    for x in 0..n {
        if p.tasks_from[x] == 0 {
            continue;
        }
        let row = largest_remainder_round(&fractions[x], p.tasks_from[x]);
        let per_task_gb = if p.tasks_from[x] > 0 {
            p.input_gb[x] / p.tasks_from[x] as f64
        } else {
            0.0
        };
        for y in 0..n {
            counts[x][y] = row[y];
            tasks_at[y] += row[y];
            if x != y {
                wan_gb += row[y] as f64 * per_task_gb;
            }
        }
    }
    let slot_demand = (0..n).map(|x| p.slots[x].min(tasks_at[x])).collect();
    MapPlacement {
        fractions,
        times: StageTimes {
            transfer: t_aggr.max(0.0),
            compute: t_map.max(0.0),
        },
        counts,
        tasks_at,
        slot_demand,
        wan_gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig 4 setup: the LP should move work off the compute-bottlenecked
    /// sites toward site 1, beating in-place map execution.
    fn fig4_problem() -> MapProblem {
        MapProblem {
            input_gb: vec![20.0, 30.0, 50.0],
            tasks_from: vec![200, 300, 500],
            task_secs: 2.0,
            up_gbps: vec![5.0, 1.0, 2.0],
            down_gbps: vec![5.0, 1.0, 5.0],
            slots: vec![40, 10, 20],
            wan_budget_gb: None,
            forced_dest_gb: None,
            next_stage_ratio: None,
            dest_limit: None,
        }
    }

    #[test]
    fn beats_in_place_on_fig4() {
        let placement = solve_map_placement(&fig4_problem()).unwrap();
        // In-place map stage takes 60 s (site 2 bottleneck). The LP's
        // fractional optimum is ~44 s; the paper's rounded plan is 45.7 s.
        let total = placement.times.total();
        assert!(total < 50.0, "LP total {total} should beat in-place 60 s");
        // All 1000 tasks are placed.
        assert_eq!(placement.tasks_at.iter().sum::<usize>(), 1000);
        // Site 1 (most powerful) takes the largest share.
        assert!(placement.tasks_at[0] > placement.tasks_at[1]);
        assert!(placement.tasks_at[0] > placement.tasks_at[2]);
        // Data conservation: row sums of fractions are 1.
        for x in 0..3 {
            let s: f64 = placement.fractions[x].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_wan_budget_forces_in_place() {
        let mut p = fig4_problem();
        p.wan_budget_gb = Some(0.0);
        let placement = solve_map_placement(&p).unwrap();
        assert!(placement.wan_gb < 1e-9);
        // In-place compute: site 2 is the bottleneck at 300/10 waves x 2 s.
        assert!((placement.times.compute - 60.0).abs() < 1e-6);
        assert_eq!(placement.counts[1][1], 300);
    }

    #[test]
    fn generous_budget_matches_unbudgeted() {
        let mut p = fig4_problem();
        p.wan_budget_gb = Some(1000.0);
        let with = solve_map_placement(&p).unwrap();
        let without = solve_map_placement(&fig4_problem()).unwrap();
        assert!((with.times.total() - without.times.total()).abs() < 1e-6);
    }

    #[test]
    fn no_data_falls_back_to_slot_proportional() {
        let p = MapProblem {
            input_gb: vec![0.0, 0.0],
            tasks_from: vec![10, 0],
            task_secs: 1.0,
            up_gbps: vec![1.0, 1.0],
            down_gbps: vec![1.0, 1.0],
            slots: vec![3, 1],
            wan_budget_gb: None,
            forced_dest_gb: None,
            next_stage_ratio: None,
            dest_limit: None,
        };
        let placement = solve_map_placement(&p).unwrap();
        assert_eq!(placement.tasks_at.iter().sum::<usize>(), 10);
        assert!(placement.tasks_at[0] > placement.tasks_at[1]);
        assert_eq!(placement.wan_gb, 0.0);
    }

    #[test]
    fn empty_stage_yields_empty_placement() {
        let p = MapProblem {
            input_gb: vec![1.0, 1.0],
            tasks_from: vec![0, 0],
            task_secs: 1.0,
            up_gbps: vec![1.0, 1.0],
            down_gbps: vec![1.0, 1.0],
            slots: vec![1, 1],
            wan_budget_gb: None,
            forced_dest_gb: None,
            next_stage_ratio: None,
            dest_limit: None,
        };
        let placement = solve_map_placement(&p).unwrap();
        assert_eq!(placement.tasks_at, vec![0, 0]);
    }

    #[test]
    fn counts_conserve_per_source_tasks() {
        let placement = solve_map_placement(&fig4_problem()).unwrap();
        for (x, &from) in fig4_problem().tasks_from.iter().enumerate() {
            let sum: usize = placement.counts[x].iter().sum();
            assert_eq!(sum, from, "source {x}");
        }
    }

    #[test]
    fn forced_destination_is_respected() {
        let mut p = fig4_problem();
        // Pin all data to site 0.
        p.forced_dest_gb = Some(vec![100.0, 0.0, 0.0]);
        let placement = solve_map_placement(&p).unwrap();
        assert_eq!(placement.tasks_at[0], 1000);
        assert_eq!(placement.tasks_at[1], 0);
    }
}
