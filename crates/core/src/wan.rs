//! The WAN-usage budget knob `ρ` (§4.3).
//!
//! At each scheduling instance Tetrium computes, per job, a budget
//! `W_j = W_min + ρ (W_max - W_min)`. With `ρ → 1` placement is fully geared
//! toward response time; with `ρ → 0` WAN usage is minimized. `W_max` is the
//! stage's input volume (a stage can move at most its input), `W_min` is 0
//! for map stages (leave everything in place) and the solution of the LP of
//! Eqs. 11–13 for reduce stages, which has the closed form
//! `ΣI_x - max_x I_x` (place every reduce task at the site holding the most
//! data).

use tetrium_lp::{Problem, Relation};

/// The `ρ` knob, clamped to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanKnob(f64);

impl WanKnob {
    /// Creates a knob value, clamping into `[0, 1]`.
    pub fn new(rho: f64) -> Self {
        Self(rho.clamp(0.0, 1.0))
    }

    /// The knob value.
    pub fn rho(self) -> f64 {
        self.0
    }

    /// Whether the budget constraint can be skipped entirely (`ρ = 1`
    /// budgets the full `W_max`, which never binds).
    pub fn is_unbounded(self) -> bool {
        self.0 >= 1.0
    }
}

impl Default for WanKnob {
    fn default() -> Self {
        Self(1.0)
    }
}

/// Interpolates the per-job budget `W = W_min + ρ (W_max - W_min)`.
pub fn wan_budget(knob: WanKnob, w_min: f64, w_max: f64) -> f64 {
    debug_assert!(w_min <= w_max + 1e-9);
    w_min + knob.rho() * (w_max - w_min).max(0.0)
}

/// Minimum WAN usage of a reduce stage over `shuffle_gb` (closed form of
/// the LP in Eqs. 11–13): keep the largest site's data local.
pub fn reduce_min_wan(shuffle_gb: &[f64]) -> f64 {
    let total: f64 = shuffle_gb.iter().sum();
    let max = shuffle_gb.iter().copied().fold(0.0f64, f64::max);
    (total - max).max(0.0)
}

/// Solves the paper's `W_min` LP (Eqs. 11–13) directly; exists to validate
/// the closed form and for documentation parity with the paper.
pub fn reduce_min_wan_lp(shuffle_gb: &[f64]) -> f64 {
    let n = shuffle_gb.len();
    if n == 0 {
        return 0.0;
    }
    // Variables: r_x. Minimize sum_x I_x (1 - r_x) = total - sum I_x r_x,
    // i.e. maximize sum I_x r_x subject to sum r = 1, r in [0, 1].
    let mut lp = Problem::maximize(n);
    let terms: Vec<(usize, f64)> = (0..n).map(|x| (x, shuffle_gb[x])).collect();
    lp.set_objective(&terms);
    let ones: Vec<(usize, f64)> = (0..n).map(|x| (x, 1.0)).collect();
    lp.add_constraint(&ones, Relation::Eq, 1.0);
    let total: f64 = shuffle_gb.iter().sum();
    total - lp.solve().map(|s| s.objective).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_clamps() {
        assert_eq!(WanKnob::new(2.0).rho(), 1.0);
        assert_eq!(WanKnob::new(-1.0).rho(), 0.0);
        assert!(WanKnob::new(1.0).is_unbounded());
        assert!(!WanKnob::new(0.99).is_unbounded());
    }

    #[test]
    fn budget_interpolates() {
        let w0 = wan_budget(WanKnob::new(0.0), 10.0, 50.0);
        let whalf = wan_budget(WanKnob::new(0.5), 10.0, 50.0);
        let w1 = wan_budget(WanKnob::new(1.0), 10.0, 50.0);
        assert_eq!(w0, 10.0);
        assert_eq!(whalf, 30.0);
        assert_eq!(w1, 50.0);
    }

    #[test]
    fn closed_form_matches_lp() {
        for gb in [
            vec![10.0, 15.0, 25.0],
            vec![1.0],
            vec![0.0, 0.0],
            vec![5.0, 5.0, 5.0, 100.0],
        ] {
            let cf = reduce_min_wan(&gb);
            let lp = reduce_min_wan_lp(&gb);
            assert!((cf - lp).abs() < 1e-6, "{gb:?}: {cf} vs {lp}");
        }
    }

    #[test]
    fn fig4_reduce_min_is_25() {
        assert_eq!(reduce_min_wan(&[10.0, 15.0, 25.0]), 25.0);
    }
}
