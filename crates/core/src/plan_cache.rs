//! Template-keyed plan caching and LP warm-starting (the recurring-query
//! fast path; see DESIGN.md §11).
//!
//! Recurring analytics — the dominant workload the paper targets (§2:
//! "analytics queries are often recurring") — present the scheduler with a
//! stream of placement problems that are *structurally identical* and
//! *numerically similar* across instances: the same DAG shape over the same
//! sites, with data volumes that drift with the diurnal cycle. Re-running
//! two-phase simplex from scratch on every instance wastes almost all of
//! that similarity. This module keys solved placements by a two-level
//! fingerprint and reuses them at three escalating costs:
//!
//! 1. **Exact hit** — the cached problem compares equal field-for-field to
//!    the current one; the cached placement is returned verbatim. This tier
//!    is bit-exact by construction and is the only tier active in
//!    [`PlanCacheMode::Exact`].
//! 2. **Patched hit** — same template and same quantized bucket, but the
//!    numbers drifted. The cached *fractional* split is re-rounded against
//!    the current task counts ([`tetrium_jobs::largest_remainder_round`])
//!    and volumes/times are rescaled. A patch whose WAN bytes would exceed
//!    the current budget is rejected (it would overspend `ρ`) and the
//!    lookup falls through to the warm tier.
//! 3. **Warm start** — same template only: the most recently used entry's
//!    optimal [`Basis`] seeds [`tetrium_lp::Problem::solve_from_basis`],
//!    which skips simplex phase 1 entirely when the stored basis is still
//!    feasible. The solver itself guarantees optimality (it re-prices and
//!    re-optimizes), so this tier changes latency, never answers.
//!
//! The two-level key separates *structure* from *numbers*:
//! [`TemplateSig`] captures what makes two LPs share a constraint skeleton
//! (stage kind and index, site count, lookahead presence, limit flags),
//! while [`BucketSig`] quantizes the continuous inputs (per-site data
//! shares in 1/32 steps, WAN-budget ratio in 1/16 steps, lookahead ratio
//! in 1/64 steps, volume / task-count / task-length / slot / bandwidth
//! octaves) so that instances separated by mild diurnal drift land in the
//! same bucket and patch instead of re-solving.

use crate::map_placement::{assemble_map, MapPlacement, MapProblem};
use crate::reduce_placement::{ReducePlacement, ReduceProblem};
use std::collections::BTreeMap;
use tetrium_jobs::largest_remainder_round;
use tetrium_lp::Basis;

/// How the scheduler uses the template cache (`--plan-cache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanCacheMode {
    /// No template cache; every placement decision solves its LP.
    #[default]
    Off,
    /// Only exact hits short-circuit the solver. Placements are identical
    /// to [`PlanCacheMode::Off`] bit for bit, so figure output must not
    /// change (CI asserts this).
    Exact,
    /// Exact hits, patched near-hits and LP warm starts.
    Full,
}

/// Counters drained into each instance's planner record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Solves short-circuited by an exact (field-identical) hit.
    pub exact: usize,
    /// Solves short-circuited by rescaling a same-bucket placement.
    pub patched: usize,
    /// Solves warm-started from a cached optimal basis.
    pub warm: usize,
    /// Cold solves (no usable entry, or the warm attempt fell back).
    pub miss: usize,
    /// Total simplex pivots spent across the warm-started solves.
    pub warm_pivots: usize,
}

impl CacheStats {
    /// Returns the counters accumulated since the last call, resetting them.
    pub fn take(&mut self) -> CacheStats {
        std::mem::take(self)
    }
}

/// Structural fingerprint: two placement problems with equal template
/// signatures build LPs over the same constraint skeleton, so an optimal
/// basis for one is a plausible starting basis for the other.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TemplateSig {
    /// 0 = map, 1 = reduce.
    kind: u8,
    /// Stage position in the job DAG.
    stage_index: usize,
    /// Number of sites (the LP's dimension). Slot *values* are
    /// coefficients, not structure — they live in the bucket, so a stage
    /// planned against partially-occupied slots still finds the entries
    /// its full-capacity siblings planted.
    sites: usize,
    /// Whether the LP carries the next-stage lookahead term. Presence is
    /// structural (it adds constraints and an objective variable); the
    /// ratio's *value* is numeric and lives in the bucket.
    lookahead: bool,
    /// Map: `dest_limit + 1` (0 when unrestricted). Reduce: `network_only`.
    flags: u64,
}

/// Numeric fingerprint: quantized continuous inputs. Same template + same
/// bucket means the drift is mild enough that rescaling the cached
/// fractional split is a sound plan.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BucketSig {
    /// Per-site share of the total data volume, in 1/32 steps.
    data: Vec<u8>,
    /// Map only: per-site share of the remaining tasks, in 1/32 steps.
    tasks: Vec<u8>,
    /// WAN budget over total volume in 1/16 steps; 255 = unbounded.
    wan: u8,
    /// Lookahead ratio in 1/64 steps; `u64::MAX` when absent.
    ratio_q: u64,
    /// Slot half-octaves per site (available capacity at planning time).
    slots: Vec<i16>,
    /// Total volume half-octave (`round(2 log2 gb)`).
    vol_oct: i16,
    /// Task-count half-octave.
    task_oct: i16,
    /// Task-length half-octave.
    secs_oct: i16,
    /// Uplink half-octaves per site.
    up: Vec<i16>,
    /// Downlink half-octaves per site.
    down: Vec<i16>,
}

/// Share of `total` in 1/32 steps.
fn q_share(v: f64, total: f64) -> u8 {
    if total <= 0.0 || !total.is_finite() {
        return 0;
    }
    (v / total * 32.0).round().clamp(0.0, 255.0) as u8
}

/// Half-octave quantization: `round(2 log2 v)`.
fn q_log2(v: f64) -> i16 {
    if v <= 0.0 || !v.is_finite() {
        return i16::MIN;
    }
    (v.log2() * 2.0).round().clamp(-32768.0, 32767.0) as i16
}

/// WAN budget over total volume in 1/16 steps; 255 when unbounded.
fn q_wan(budget: Option<f64>, total: f64) -> u8 {
    match budget {
        None => 255,
        Some(_) if total <= 0.0 => 0,
        Some(w) => (w / total * 16.0).round().clamp(0.0, 254.0) as u8,
    }
}

/// Lookahead ratio in 1/64 steps; `u64::MAX` when absent.
fn q_ratio(ratio: Option<f64>) -> u64 {
    match ratio {
        None => u64::MAX,
        Some(r) if r <= 0.0 || !r.is_finite() => 0,
        Some(r) => (r * 64.0).round().min(1e18) as u64,
    }
}

/// Fingerprints one map-stage placement problem.
pub fn map_sigs(stage_index: usize, p: &MapProblem) -> (TemplateSig, BucketSig) {
    let total: f64 = p.input_gb.iter().sum();
    let num_tasks: usize = p.tasks_from.iter().sum();
    let tsig = TemplateSig {
        kind: 0,
        stage_index,
        sites: p.slots.len(),
        lookahead: p.next_stage_ratio.is_some_and(|r| r > 0.0),
        flags: p.dest_limit.map_or(0, |k| k as u64 + 1),
    };
    let bsig = BucketSig {
        data: p.input_gb.iter().map(|&v| q_share(v, total)).collect(),
        tasks: p
            .tasks_from
            .iter()
            .map(|&t| q_share(t as f64, num_tasks as f64))
            .collect(),
        wan: q_wan(p.wan_budget_gb, total),
        ratio_q: q_ratio(p.next_stage_ratio),
        slots: p.slots.iter().map(|&s| q_log2(s as f64)).collect(),
        vol_oct: q_log2(total),
        task_oct: q_log2(num_tasks as f64),
        secs_oct: q_log2(p.task_secs),
        up: p.up_gbps.iter().map(|&v| q_log2(v)).collect(),
        down: p.down_gbps.iter().map(|&v| q_log2(v)).collect(),
    };
    (tsig, bsig)
}

/// Fingerprints one reduce-stage placement problem.
pub fn reduce_sigs(stage_index: usize, p: &ReduceProblem) -> (TemplateSig, BucketSig) {
    let total: f64 = p.shuffle_gb.iter().sum();
    let tsig = TemplateSig {
        kind: 1,
        stage_index,
        sites: p.slots.len(),
        lookahead: !p.network_only && p.next_stage_out_gb.is_some_and(|o| o > 0.0),
        flags: p.network_only as u64,
    };
    let bsig = BucketSig {
        data: p.shuffle_gb.iter().map(|&v| q_share(v, total)).collect(),
        tasks: Vec::new(),
        wan: q_wan(p.wan_budget_gb, total),
        // The lookahead volume scales with the shuffle volume, so the
        // *ratio* is the stable quantity to bucket.
        ratio_q: q_ratio(
            p.next_stage_out_gb
                .map(|o| if total > 0.0 { o / total } else { 0.0 }),
        ),
        slots: p.slots.iter().map(|&s| q_log2(s as f64)).collect(),
        vol_oct: q_log2(total),
        task_oct: q_log2(p.num_tasks as f64),
        secs_oct: q_log2(p.task_secs),
        up: p.up_gbps.iter().map(|&v| q_log2(v)).collect(),
        down: p.down_gbps.iter().map(|&v| q_log2(v)).collect(),
    };
    (tsig, bsig)
}

/// Solver metadata returned alongside a placement by the warm-capable
/// solve functions.
#[derive(Debug, Clone, Default)]
pub struct SolveMeta {
    /// Optimal basis for seeding a future warm start (`None` when the
    /// solve took a non-LP shortcut path).
    pub basis: Option<Basis>,
    /// Whether the solve actually ran from the supplied basis (a failed
    /// warm attempt silently falls back to a cold solve).
    pub warm_started: bool,
    /// Simplex pivots spent.
    pub pivots: usize,
}

enum Stored {
    Map {
        problem: MapProblem,
        placement: MapPlacement,
        basis: Basis,
    },
    Reduce {
        problem: ReduceProblem,
        placement: ReducePlacement,
        basis: Basis,
    },
}

struct Entry {
    stored: Stored,
    last_used: u64,
}

/// Outcome of a map-stage cache lookup.
pub enum MapLookup {
    /// Field-identical problem; placement returned verbatim.
    Exact(MapPlacement),
    /// Same bucket; cached split re-rounded and rescaled.
    Patched(MapPlacement),
    /// Same template; warm-start the LP from this basis.
    Warm(Basis),
    /// Nothing usable; solve cold.
    Miss,
}

/// Outcome of a reduce-stage cache lookup.
pub enum ReduceLookup {
    /// Field-identical problem; placement returned verbatim.
    Exact(ReducePlacement),
    /// Same bucket; cached split re-rounded and rescaled.
    Patched(ReducePlacement),
    /// Same template; warm-start the LP from this basis.
    Warm(Basis),
    /// Nothing usable; solve cold.
    Miss,
}

/// Bound on cached entries across all templates. 256 placements cover far
/// more concurrently-recurring stage shapes than any evaluated workload
/// while keeping the worst-case footprint a few MB.
const CAP: usize = 256;

/// The cross-instance template cache. Owned by the scheduler; survives
/// across scheduling instances and jobs (keys are job-independent so a
/// recurring query's next submission hits entries planted by the previous
/// one) and is cleared wholesale on cluster dynamics events.
pub struct TemplateCache {
    mode: PlanCacheMode,
    entries: BTreeMap<TemplateSig, BTreeMap<BucketSig, Entry>>,
    len: usize,
    tick: u64,
    /// Hit/miss counters; drained per scheduling instance.
    pub stats: CacheStats,
}

impl TemplateCache {
    /// Creates an empty cache operating in `mode`.
    pub fn new(mode: PlanCacheMode) -> Self {
        Self {
            mode,
            entries: BTreeMap::new(),
            len: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> PlanCacheMode {
        self.mode
    }

    /// Number of cached placements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every entry (cluster dynamics invalidate all templates: the
    /// slot and bandwidth quantizations baked into every bucket no longer
    /// describe the cluster, and a stale basis would only waste a failed
    /// warm attempt).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.len = 0;
    }

    /// Three-tier lookup for a map-stage problem.
    pub fn lookup_map(
        &mut self,
        tsig: &TemplateSig,
        bsig: &BucketSig,
        p: &MapProblem,
    ) -> MapLookup {
        if self.mode == PlanCacheMode::Off {
            return MapLookup::Miss;
        }
        self.tick += 1;
        let Some(buckets) = self.entries.get_mut(tsig) else {
            return MapLookup::Miss;
        };
        if let Some(e) = buckets.get_mut(bsig) {
            if let Stored::Map {
                problem, placement, ..
            } = &e.stored
            {
                if problem == p {
                    e.last_used = self.tick;
                    self.stats.exact += 1;
                    return MapLookup::Exact(placement.clone());
                }
                if self.mode == PlanCacheMode::Full {
                    if let Some(patched) = patch_map(problem, placement, p) {
                        e.last_used = self.tick;
                        self.stats.patched += 1;
                        return MapLookup::Patched(patched);
                    }
                }
            }
        }
        if self.mode == PlanCacheMode::Full {
            // Warm hint: the most recently used same-template entry.
            if let Some(basis) = buckets
                .values()
                .filter(|e| matches!(e.stored, Stored::Map { .. }))
                .max_by_key(|e| e.last_used)
                .map(|e| match &e.stored {
                    Stored::Map { basis, .. } | Stored::Reduce { basis, .. } => basis.clone(),
                })
            {
                return MapLookup::Warm(basis);
            }
        }
        MapLookup::Miss
    }

    /// Three-tier lookup for a reduce-stage problem.
    pub fn lookup_reduce(
        &mut self,
        tsig: &TemplateSig,
        bsig: &BucketSig,
        p: &ReduceProblem,
    ) -> ReduceLookup {
        if self.mode == PlanCacheMode::Off {
            return ReduceLookup::Miss;
        }
        self.tick += 1;
        let Some(buckets) = self.entries.get_mut(tsig) else {
            return ReduceLookup::Miss;
        };
        if let Some(e) = buckets.get_mut(bsig) {
            if let Stored::Reduce {
                problem, placement, ..
            } = &e.stored
            {
                if problem == p {
                    e.last_used = self.tick;
                    self.stats.exact += 1;
                    return ReduceLookup::Exact(placement.clone());
                }
                if self.mode == PlanCacheMode::Full {
                    if let Some(patched) = patch_reduce(problem, placement, p) {
                        e.last_used = self.tick;
                        self.stats.patched += 1;
                        return ReduceLookup::Patched(patched);
                    }
                }
            }
        }
        if self.mode == PlanCacheMode::Full {
            if let Some(basis) = buckets
                .values()
                .filter(|e| matches!(e.stored, Stored::Reduce { .. }))
                .max_by_key(|e| e.last_used)
                .map(|e| match &e.stored {
                    Stored::Map { basis, .. } | Stored::Reduce { basis, .. } => basis.clone(),
                })
            {
                return ReduceLookup::Warm(basis);
            }
        }
        ReduceLookup::Miss
    }

    /// Records a solved map placement under its fingerprint.
    pub fn insert_map(
        &mut self,
        tsig: TemplateSig,
        bsig: BucketSig,
        problem: MapProblem,
        placement: MapPlacement,
        basis: Basis,
    ) {
        self.insert(
            tsig,
            bsig,
            Stored::Map {
                problem,
                placement,
                basis,
            },
        );
    }

    /// Records a solved reduce placement under its fingerprint.
    pub fn insert_reduce(
        &mut self,
        tsig: TemplateSig,
        bsig: BucketSig,
        problem: ReduceProblem,
        placement: ReducePlacement,
        basis: Basis,
    ) {
        self.insert(
            tsig,
            bsig,
            Stored::Reduce {
                problem,
                placement,
                basis,
            },
        );
    }

    fn insert(&mut self, tsig: TemplateSig, bsig: BucketSig, stored: Stored) {
        if self.mode == PlanCacheMode::Off {
            return;
        }
        self.tick += 1;
        let entry = Entry {
            stored,
            last_used: self.tick,
        };
        let fresh = self
            .entries
            .entry(tsig)
            .or_default()
            .insert(bsig, entry)
            .is_none();
        if fresh {
            self.len += 1;
            if self.len > CAP {
                self.evict_lru();
            }
        }
    }

    /// Removes the least-recently-used entry. `BTreeMap` iteration order
    /// makes the victim deterministic when ticks tie (they cannot: ticks
    /// are unique), keeping runs reproducible.
    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .flat_map(|(t, buckets)| {
                buckets
                    .iter()
                    .map(move |(b, e)| (e.last_used, t.clone(), b.clone()))
            })
            .min_by_key(|(used, _, _)| *used);
        if let Some((_, t, b)) = victim {
            if let Some(buckets) = self.entries.get_mut(&t) {
                buckets.remove(&b);
                if buckets.is_empty() {
                    self.entries.remove(&t);
                }
                self.len -= 1;
            }
        }
    }
}

/// Rescales a cached map placement onto drifted problem data: the
/// fractional split is kept, counts are re-rounded against the current
/// per-source task counts, and times are scaled by the volume / work
/// ratios. Returns `None` when the patch would overspend the current WAN
/// budget or the shapes disagree.
fn patch_map(cached_p: &MapProblem, cached: &MapPlacement, p: &MapProblem) -> Option<MapPlacement> {
    let n = p.input_gb.len();
    if cached.fractions.len() != n || p.forced_dest_gb.is_some() {
        return None;
    }
    let old_total: f64 = cached_p.input_gb.iter().sum();
    let new_total: f64 = p.input_gb.iter().sum();
    if old_total <= 0.0 || new_total <= 0.0 {
        return None;
    }
    let old_work = cached_p.tasks_from.iter().sum::<usize>() as f64 * cached_p.task_secs;
    let new_work = p.tasks_from.iter().sum::<usize>() as f64 * p.task_secs;
    if old_work <= 0.0 {
        return None;
    }
    let t_aggr = cached.times.transfer * new_total / old_total;
    let t_map = cached.times.compute * new_work / old_work;
    let patched = assemble_map(p, cached.fractions.clone(), t_aggr, t_map);
    if let Some(w) = p.wan_budget_gb {
        if patched.wan_gb > w + 1e-9 {
            return None;
        }
    }
    Some(patched)
}

/// Reduce-stage analog of [`patch_map`].
fn patch_reduce(
    cached_p: &ReduceProblem,
    cached: &ReducePlacement,
    p: &ReduceProblem,
) -> Option<ReducePlacement> {
    let n = p.shuffle_gb.len();
    if cached.fractions.len() != n {
        return None;
    }
    let old_total: f64 = cached_p.shuffle_gb.iter().sum();
    let new_total: f64 = p.shuffle_gb.iter().sum();
    if old_total <= 0.0 || new_total <= 0.0 {
        return None;
    }
    let old_work = cached_p.num_tasks as f64 * cached_p.task_secs;
    let new_work = p.num_tasks as f64 * p.task_secs;
    if old_work <= 0.0 {
        return None;
    }
    let fractions = cached.fractions.clone();
    let wan_gb: f64 = (0..n).map(|x| p.shuffle_gb[x] * (1.0 - fractions[x])).sum();
    if let Some(w) = p.wan_budget_gb {
        if wan_gb > w + 1e-9 {
            return None;
        }
    }
    let tasks_at = largest_remainder_round(&fractions, p.num_tasks);
    let slot_demand = (0..n).map(|x| p.slots[x].min(tasks_at[x])).collect();
    Some(ReducePlacement {
        times: crate::analytic::StageTimes {
            transfer: cached.times.transfer * new_total / old_total,
            compute: cached.times.compute * new_work / old_work,
        },
        fractions,
        tasks_at,
        slot_demand,
        wan_gb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_placement::{
        solve_map_placement_canonical, solve_map_placement_warm, MapProblem,
    };
    use crate::reduce_placement::{
        solve_reduce_placement_canonical, solve_reduce_placement_warm, ReduceProblem,
    };

    fn map_p(input: [f64; 3]) -> MapProblem {
        MapProblem {
            tasks_from: input.iter().map(|&g| (g * 10.0).round() as usize).collect(),
            input_gb: input.to_vec(),
            task_secs: 2.0,
            up_gbps: vec![5.0, 1.0, 2.0],
            down_gbps: vec![5.0, 1.0, 5.0],
            slots: vec![40, 10, 20],
            wan_budget_gb: None,
            forced_dest_gb: None,
            next_stage_ratio: None,
            dest_limit: None,
        }
    }

    fn reduce_p(shuffle: [f64; 3]) -> ReduceProblem {
        ReduceProblem {
            shuffle_gb: shuffle.to_vec(),
            num_tasks: 500,
            task_secs: 1.0,
            up_gbps: vec![5.0, 1.0, 2.0],
            down_gbps: vec![5.0, 1.0, 5.0],
            slots: vec![40, 10, 20],
            wan_budget_gb: None,
            network_only: false,
            next_stage_out_gb: None,
        }
    }

    fn solve_and_insert_map(cache: &mut TemplateCache, p: &MapProblem) -> MapPlacement {
        let (tsig, bsig) = map_sigs(0, p);
        let (pl, meta) = solve_map_placement_warm(p, None).unwrap();
        cache.insert_map(tsig, bsig, p.clone(), pl.clone(), meta.basis.unwrap());
        pl
    }

    #[test]
    fn exact_hit_returns_identical_placement() {
        let mut cache = TemplateCache::new(PlanCacheMode::Exact);
        let p = map_p([20.0, 30.0, 50.0]);
        let pl = solve_and_insert_map(&mut cache, &p);
        let (tsig, bsig) = map_sigs(0, &p);
        match cache.lookup_map(&tsig, &bsig, &p) {
            MapLookup::Exact(hit) => assert_eq!(hit, pl),
            _ => panic!("expected exact hit"),
        }
        assert_eq!(cache.stats.take().exact, 1);
    }

    #[test]
    fn exact_mode_never_patches_or_warms() {
        let mut cache = TemplateCache::new(PlanCacheMode::Exact);
        let p = map_p([20.0, 30.0, 50.0]);
        solve_and_insert_map(&mut cache, &p);
        // Mild drift: same bucket, different numbers.
        let drifted = map_p([20.2, 29.9, 50.1]);
        let (tsig, bsig) = map_sigs(0, &drifted);
        assert!(matches!(
            cache.lookup_map(&tsig, &bsig, &drifted),
            MapLookup::Miss
        ));
    }

    #[test]
    fn mild_drift_patches_in_full_mode() {
        let mut cache = TemplateCache::new(PlanCacheMode::Full);
        let p = map_p([20.0, 30.0, 50.0]);
        solve_and_insert_map(&mut cache, &p);
        let drifted = map_p([20.2, 29.9, 50.1]);
        let (tsig, bsig) = map_sigs(0, &drifted);
        let MapLookup::Patched(patched) = cache.lookup_map(&tsig, &bsig, &drifted) else {
            panic!("expected patched hit");
        };
        // Patched counts must respect the drifted per-source task totals.
        for (x, &from) in drifted.tasks_from.iter().enumerate() {
            assert_eq!(patched.counts[x].iter().sum::<usize>(), from);
        }
    }

    #[test]
    fn patch_rejected_when_wan_budget_would_overspend() {
        let mut cache = TemplateCache::new(PlanCacheMode::Full);
        // Cache under a generous budget, then shrink it so the cached
        // split's WAN bytes no longer fit; the patch tier must refuse and
        // degrade to a warm hint.
        let mut p = map_p([20.0, 30.0, 50.0]);
        p.wan_budget_gb = Some(100.0);
        let pl = solve_and_insert_map(&mut cache, &p);
        assert!(pl.wan_gb > 1.0, "fixture should want to move data");
        let mut tight = map_p([20.2, 29.9, 50.1]);
        tight.wan_budget_gb = Some(100.0);
        // Force the same bucket but an unaffordable budget is a different
        // bucket by construction (wan is quantized), so instead drift the
        // data while keeping the budget equal and verify the guard itself.
        let (tsig, bsig) = map_sigs(0, &tight);
        let looked = cache.lookup_map(&tsig, &bsig, &tight);
        let MapLookup::Patched(patched) = looked else {
            panic!("drifted lookup should patch");
        };
        assert!(patched.wan_gb <= 100.0 + 1e-9);
        // Now the direct guard: a budget below the cached split's usage.
        let cached = cache.entries.values().next().unwrap();
        let Stored::Map {
            problem, placement, ..
        } = &cached.values().next().unwrap().stored
        else {
            panic!("map entry expected")
        };
        let mut broke = tight.clone();
        broke.wan_budget_gb = Some(pl.wan_gb / 2.0);
        assert!(patch_map(problem, placement, &broke).is_none());
    }

    #[test]
    fn large_drift_falls_to_warm_tier_and_warm_solve_matches_cold() {
        let mut cache = TemplateCache::new(PlanCacheMode::Full);
        let p = map_p([20.0, 30.0, 50.0]);
        solve_and_insert_map(&mut cache, &p);
        // Octave-level drift: different bucket, same template.
        let far = map_p([50.0, 80.0, 120.0]);
        let (tsig, bsig) = map_sigs(0, &far);
        let MapLookup::Warm(basis) = cache.lookup_map(&tsig, &bsig, &far) else {
            panic!("expected warm hint");
        };
        let (warm, meta) = solve_map_placement_warm(&far, Some(&basis)).unwrap();
        let (cold, _) = solve_map_placement_canonical(&far).unwrap();
        assert!(meta.warm_started);
        assert_eq!(warm, cold, "warm-started solve must be bit-exact");
    }

    #[test]
    fn reduce_exact_and_warm_tiers() {
        let mut cache = TemplateCache::new(PlanCacheMode::Full);
        let p = reduce_p([10.0, 15.0, 25.0]);
        let (tsig, bsig) = reduce_sigs(1, &p);
        let (pl, meta) = solve_reduce_placement_warm(&p, None).unwrap();
        cache.insert_reduce(tsig, bsig, p.clone(), pl.clone(), meta.basis.unwrap());
        let (tsig, bsig) = reduce_sigs(1, &p);
        assert!(matches!(
            cache.lookup_reduce(&tsig, &bsig, &p),
            ReduceLookup::Exact(hit) if hit == pl
        ));
        let far = reduce_p([30.0, 40.0, 70.0]);
        let (tsig, bsig) = reduce_sigs(1, &far);
        let ReduceLookup::Warm(basis) = cache.lookup_reduce(&tsig, &bsig, &far) else {
            panic!("expected warm hint");
        };
        let (warm, meta) = solve_reduce_placement_warm(&far, Some(&basis)).unwrap();
        let (cold, _) = solve_reduce_placement_canonical(&far).unwrap();
        assert!(meta.warm_started);
        assert_eq!(warm, cold);
    }

    #[test]
    fn different_stage_index_is_a_different_template() {
        let mut cache = TemplateCache::new(PlanCacheMode::Full);
        let p = map_p([20.0, 30.0, 50.0]);
        solve_and_insert_map(&mut cache, &p);
        let (tsig, bsig) = map_sigs(3, &p);
        assert!(matches!(
            cache.lookup_map(&tsig, &bsig, &p),
            MapLookup::Miss
        ));
    }

    #[test]
    fn capacity_is_bounded_and_eviction_is_lru() {
        let mut cache = TemplateCache::new(PlanCacheMode::Full);
        let base = map_p([20.0, 30.0, 50.0]);
        let (pl, meta) = solve_map_placement_warm(&base, None).unwrap();
        let basis = meta.basis.unwrap();
        for i in 0..(CAP + 40) {
            // Distinct templates via the stage index.
            let (tsig, bsig) = map_sigs(i, &base);
            cache.insert_map(tsig, bsig, base.clone(), pl.clone(), basis.clone());
            assert!(cache.len() <= CAP);
        }
        assert_eq!(cache.len(), CAP);
        // The oldest entries (lowest stage indices) were evicted.
        let (tsig, bsig) = map_sigs(0, &base);
        assert!(matches!(
            cache.lookup_map(&tsig, &bsig, &base),
            MapLookup::Miss
        ));
        let (tsig, bsig) = map_sigs(CAP + 39, &base);
        assert!(matches!(
            cache.lookup_map(&tsig, &bsig, &base),
            MapLookup::Exact(_)
        ));
    }

    #[test]
    fn off_mode_stores_and_returns_nothing() {
        let mut cache = TemplateCache::new(PlanCacheMode::Off);
        let p = map_p([20.0, 30.0, 50.0]);
        solve_and_insert_map(&mut cache, &p);
        assert!(cache.is_empty());
        let (tsig, bsig) = map_sigs(0, &p);
        assert!(matches!(
            cache.lookup_map(&tsig, &bsig, &p),
            MapLookup::Miss
        ));
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = TemplateCache::new(PlanCacheMode::Full);
        let p = map_p([20.0, 30.0, 50.0]);
        solve_and_insert_map(&mut cache, &p);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        let (tsig, bsig) = map_sigs(0, &p);
        assert!(matches!(
            cache.lookup_map(&tsig, &bsig, &p),
            MapLookup::Miss
        ));
    }
}
