//! OpenTelemetry-compatible span export of an [`ObsReport`].
//!
//! Serializes a recorded run as OTLP/JSON (the `resourceSpans` →
//! `scopeSpans` → `spans` shape of the OTLP protobuf JSON mapping), so
//! off-the-shelf tooling — Jaeger, an OTel collector's file receiver, any
//! OTLP-JSON reader — can open a simulation timeline without knowing
//! anything about Tetrium.
//!
//! ## Span model
//!
//! - One **trace per job** (`traceId` derived from the job index), with a
//!   `job/{j}` root span covering the job's first-to-last task event;
//! - a `stage/{s}` child span per stage;
//! - a task-attempt child span per `(task, copy)`, whose **span events**
//!   are the lifecycle transitions (`queued`, `fetching`, `computing`,
//!   `done`, `failed`, `cancelled`) and whose status is `OK` for the
//!   winning attempt and `ERROR` for one lost to failure injection;
//! - one run-level trace whose single span carries the run's aggregate
//!   attributes: per-site mean link utilization (up/down, GB/s), the
//!   event counters, and the net WAN total.
//!
//! ## Determinism contract (DESIGN.md §14)
//!
//! Ids are *derived, not generated*: `traceId`/`spanId` are splitmix64
//! mixes of a namespace (a hash of the run name) and the job/stage/task
//! indices, zero-guarded per the OTel spec. Times are simulation seconds
//! scaled to integer nanoseconds. The export is therefore a pure function
//! of `(report, run_name)` — byte-identical across `TETRIUM_THREADS`
//! settings, like `ObsReport::to_json(false)` — and distinct serve shards
//! exporting under different run names cannot collide.

use crate::{ObsReport, TaskEvent, TaskPhaseEvent};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Scope name stamped on the exported spans.
pub const OTEL_SCOPE: &str = "tetrium-obs";

/// Serializes the report as pretty OTLP/JSON under the given run name
/// (the id namespace; see the module docs).
pub fn to_otel_string(report: &ObsReport, run_name: &str) -> String {
    // lint:allow(L6, "serializing a serde_json::Value cannot fail")
    serde_json::to_string_pretty(&to_otel_json(report, run_name)).expect("otel export serializes")
}

/// The OTLP/JSON value form of [`to_otel_string`].
pub fn to_otel_json(report: &ObsReport, run_name: &str) -> Value {
    let ns = hash_str(run_name);
    let mut spans: Vec<Value> = vec![run_span(report, run_name, ns)];
    spans.extend(job_spans(report, ns));
    json!({
        "resourceSpans": [{
            "resource": {"attributes": [
                attr_str("service.name", "tetrium"),
                attr_str("tetrium.run", run_name),
                attr_int("tetrium.sites", report.n_sites() as i64),
            ]},
            "scopeSpans": [{
                "scope": {"name": OTEL_SCOPE, "version": "1"},
                "spans": spans,
            }],
        }],
    })
}

/// FNV-1a 64-bit hash: the id namespace from a run name.
fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64: the id mixer. Statistically unbiased, cheap, and stable
/// across platforms — ids must never depend on process state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// 32-hex-char trace id for a job (`job == u64::MAX` is the run trace).
/// The OTel spec forbids the all-zero id, so the low word is forced
/// nonzero.
fn trace_id(ns: u64, job: u64) -> String {
    let hi = splitmix64(ns ^ job.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let lo = splitmix64(hi ^ 0x5bf0_3635);
    let lo = if hi == 0 && lo == 0 { 1 } else { lo };
    format!("{hi:016x}{lo:016x}")
}

/// 16-hex-char span id from the namespace and a structural key.
fn span_id(ns: u64, key: &[u64]) -> String {
    let mut x = ns;
    for k in key {
        x = splitmix64(x ^ k.wrapping_add(1));
    }
    if x == 0 {
        x = 1;
    }
    format!("{x:016x}")
}

/// Simulation seconds → integer Unix nanoseconds (OTLP JSON renders
/// 64-bit integers as decimal strings).
fn nanos(t: f64) -> String {
    format!("{}", (t.max(0.0) * 1e9).round() as u64)
}

fn attr_str(key: &str, v: &str) -> Value {
    json!({"key": key, "value": {"stringValue": v}})
}

fn attr_int(key: &str, v: i64) -> Value {
    json!({"key": key, "value": {"intValue": format!("{v}")}})
}

fn attr_double(key: &str, v: f64) -> Value {
    json!({"key": key, "value": {"doubleValue": v}})
}

fn attr_bool(key: &str, v: bool) -> Value {
    json!({"key": key, "value": {"boolValue": v}})
}

fn attr_double_array(key: &str, vs: &[f64]) -> Value {
    let values: Vec<Value> = vs.iter().map(|v| json!({"doubleValue": v})).collect();
    json!({"key": key, "value": {"arrayValue": {"values": values}}})
}

/// Time-weighted mean of each site's allocated link rate over the sampled
/// window (zeros when fewer than two samples exist).
fn mean_link_rates(report: &ObsReport) -> (Vec<f64>, Vec<f64>) {
    let n = report.n_sites();
    let tl = &report.link_timeline;
    let (mut up, mut down) = (vec![0.0; n], vec![0.0; n]);
    let window = match (tl.first(), tl.last()) {
        (Some(first), Some(last)) if tl.len() >= 2 => last.t - first.t,
        _ => return (up, down),
    };
    if window <= 0.0 {
        return (up, down);
    }
    for w in tl.windows(2) {
        let [prev, next] = w else { continue };
        let dt = next.t - prev.t;
        for (acc, rate) in up.iter_mut().zip(&prev.up) {
            *acc += rate * dt;
        }
        for (acc, rate) in down.iter_mut().zip(&prev.down) {
            *acc += rate * dt;
        }
    }
    for v in up.iter_mut().chain(down.iter_mut()) {
        *v /= window;
    }
    (up, down)
}

/// The run-level span: one trace holding the aggregate view.
fn run_span(report: &ObsReport, run_name: &str, ns: u64) -> Value {
    let (t0, t1) = report
        .task_events
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), e| {
            (lo.min(e.t), hi.max(e.t))
        });
    let (t0, t1) = if report.task_events.is_empty() {
        (0.0, 0.0)
    } else {
        (t0, t1)
    };
    let (up, down) = mean_link_rates(report);
    let c = &report.counters;
    json!({
        "traceId": trace_id(ns, u64::MAX),
        "spanId": span_id(ns, &[u64::MAX]),
        "name": format!("run/{run_name}"),
        "kind": 1,
        "startTimeUnixNano": nanos(t0),
        "endTimeUnixNano": nanos(t1),
        "attributes": [
            attr_double_array("tetrium.link.mean_up_gbps", &up),
            attr_double_array("tetrium.link.mean_down_gbps", &down),
            attr_double("tetrium.wan.total_gb", report.total_wan_gb()),
            attr_int("tetrium.counters.copies_launched", c.copies_launched as i64),
            attr_int("tetrium.counters.copies_won", c.copies_won as i64),
            attr_int("tetrium.counters.attempts_cancelled", c.attempts_cancelled as i64),
            attr_int("tetrium.counters.task_failures", c.task_failures as i64),
            attr_int("tetrium.counters.capacity_drops", c.capacity_drops as i64),
            attr_int("tetrium.counters.dynamics_events", c.dynamics_events as i64),
            attr_int("tetrium.counters.site_outages", c.site_outages as i64),
            attr_int("tetrium.counters.dynamics_retries", c.dynamics_retries as i64),
            attr_int("tetrium.sched.instances", report.sched.len() as i64),
        ],
        "status": {"code": 0},
    })
}

/// Per-job traces: job span → stage spans → task-attempt spans.
fn job_spans(report: &ObsReport, ns: u64) -> Vec<Value> {
    // Group events by job → stage → attempt. BTreeMaps keep the export
    // order a function of the indices alone.
    type AttemptKey = (usize, bool);
    let mut jobs: BTreeMap<usize, BTreeMap<usize, BTreeMap<AttemptKey, Vec<&TaskEvent>>>> =
        BTreeMap::new();
    for e in &report.task_events {
        jobs.entry(e.job)
            .or_default()
            .entry(e.stage)
            .or_default()
            .entry((e.task, e.copy))
            .or_default()
            .push(e);
    }
    let mut spans = Vec::new();
    for (job, stages) in &jobs {
        let tid = trace_id(ns, *job as u64);
        let job_sid = span_id(ns, &[*job as u64]);
        let all: Vec<f64> = stages
            .values()
            .flat_map(|s| s.values())
            .flatten()
            .map(|e| e.t)
            .collect();
        let j0 = all.iter().copied().fold(f64::INFINITY, f64::min);
        let j1 = all.iter().copied().fold(0.0f64, f64::max);
        spans.push(json!({
            "traceId": tid,
            "spanId": job_sid,
            "name": format!("job/{job}"),
            "kind": 1,
            "startTimeUnixNano": nanos(j0),
            "endTimeUnixNano": nanos(j1),
            "attributes": [
                attr_int("tetrium.job", *job as i64),
                attr_int("tetrium.stages", stages.len() as i64),
            ],
            "status": {"code": 0},
        }));
        for (stage, attempts) in stages {
            let stage_sid = span_id(ns, &[*job as u64, *stage as u64]);
            let ts: Vec<f64> = attempts.values().flatten().map(|e| e.t).collect();
            let s0 = ts.iter().copied().fold(f64::INFINITY, f64::min);
            let s1 = ts.iter().copied().fold(0.0f64, f64::max);
            spans.push(json!({
                "traceId": tid,
                "spanId": stage_sid,
                "parentSpanId": job_sid,
                "name": format!("job/{job}/stage/{stage}"),
                "kind": 1,
                "startTimeUnixNano": nanos(s0),
                "endTimeUnixNano": nanos(s1),
                "attributes": [
                    attr_int("tetrium.stage", *stage as i64),
                    attr_int("tetrium.attempts", attempts.len() as i64),
                ],
                "status": {"code": 0},
            }));
            for ((task, copy), events) in attempts {
                let key = [*job as u64, *stage as u64, *task as u64, u64::from(*copy)];
                let (Some(&first), Some(&last)) = (events.first(), events.last()) else {
                    continue;
                };
                let status = match last.phase {
                    TaskPhaseEvent::Done => 1,
                    TaskPhaseEvent::Failed => 2,
                    _ => 0,
                };
                let span_events: Vec<Value> = events
                    .iter()
                    .map(|e| {
                        json!({
                            "timeUnixNano": nanos(e.t),
                            "name": e.phase.as_str(),
                            "attributes": [attr_int("tetrium.site", e.site.index() as i64)],
                        })
                    })
                    .collect();
                let suffix = if *copy { "/copy" } else { "" };
                spans.push(json!({
                    "traceId": tid,
                    "spanId": span_id(ns, &key),
                    "parentSpanId": stage_sid,
                    "name": format!("job/{job}/stage/{stage}/task/{task}{suffix}"),
                    "kind": 1,
                    "startTimeUnixNano": nanos(first.t),
                    "endTimeUnixNano": nanos(last.t),
                    "attributes": [
                        attr_int("tetrium.task", *task as i64),
                        attr_bool("tetrium.copy", *copy),
                        attr_int("tetrium.site", last.site.index() as i64),
                    ],
                    "events": span_events,
                    "status": {"code": status},
                }));
            }
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;
    use tetrium_cluster::SiteId;

    fn small_report() -> ObsReport {
        let obs = Obs::recording(vec![2, 2]);
        let s = SiteId(0);
        obs.task_event(0.0, 0, 0, 0, false, TaskPhaseEvent::Queued, s);
        obs.task_event(0.5, 0, 0, 0, false, TaskPhaseEvent::Fetching, s);
        obs.task_event(1.0, 0, 0, 0, false, TaskPhaseEvent::Computing, s);
        obs.task_event(2.0, 0, 0, 0, false, TaskPhaseEvent::Done, s);
        obs.task_event(0.0, 1, 0, 0, false, TaskPhaseEvent::Queued, SiteId(1));
        obs.task_event(3.0, 1, 0, 0, false, TaskPhaseEvent::Failed, SiteId(1));
        obs.link_sample(0.0, &[1.0, 0.0], &[0.0, 1.0]);
        obs.link_sample(2.0, &[0.0, 0.0], &[0.0, 0.0]);
        obs.wan_transfer(SiteId(0), SiteId(1), 3.0);
        obs.finish().unwrap()
    }

    #[test]
    fn ids_are_deterministic_and_well_formed() {
        let r = small_report();
        let a = to_otel_string(&r, "run-a");
        assert_eq!(a, to_otel_string(&r, "run-a"));
        // Different run names give disjoint id namespaces.
        assert_ne!(a, to_otel_string(&r, "run-b"));
        let v = to_otel_json(&r, "run-a");
        let spans = v["resourceSpans"][0]["scopeSpans"][0]["spans"]
            .as_array()
            .unwrap();
        for s in spans {
            let tid = s["traceId"].as_str().unwrap();
            let sid = s["spanId"].as_str().unwrap();
            assert_eq!(tid.len(), 32);
            assert_eq!(sid.len(), 16);
            assert!(tid.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(tid.chars().any(|c| c != '0'));
            assert!(sid.chars().any(|c| c != '0'));
        }
    }

    #[test]
    fn span_hierarchy_and_status() {
        let v = to_otel_json(&small_report(), "t");
        let spans = v["resourceSpans"][0]["scopeSpans"][0]["spans"]
            .as_array()
            .unwrap();
        // Run span + 2 jobs × (job + stage + task).
        assert_eq!(spans.len(), 1 + 2 * 3);
        let find = |name: &str| spans.iter().find(|s| s["name"] == name).unwrap();
        let job = find("job/0");
        let stage = find("job/0/stage/0");
        let task = find("job/0/stage/0/task/0");
        assert_eq!(stage["parentSpanId"], job["spanId"]);
        assert_eq!(task["parentSpanId"], stage["spanId"]);
        assert_eq!(task["traceId"], job["traceId"]);
        assert_eq!(task["status"]["code"], serde_json::json!(1));
        let failed = find("job/1/stage/0/task/0");
        assert_eq!(failed["status"]["code"], serde_json::json!(2));
        // Lifecycle transitions are span events in order.
        let events = task["events"].as_array().unwrap();
        let names: Vec<&str> = events.iter().map(|e| e["name"].as_str().unwrap()).collect();
        assert_eq!(names, ["queued", "fetching", "computing", "done"]);
        assert_eq!(events[3]["timeUnixNano"], serde_json::json!("2000000000"));
    }

    #[test]
    fn run_span_carries_link_and_counter_attributes() {
        let v = to_otel_json(&small_report(), "t");
        let run = &v["resourceSpans"][0]["scopeSpans"][0]["spans"][0];
        assert!(run["name"].as_str().unwrap().starts_with("run/"));
        let attrs = run["attributes"].as_array().unwrap();
        let get = |key: &str| attrs.iter().find(|a| a["key"] == key).unwrap();
        let up = &get("tetrium.link.mean_up_gbps")["value"]["arrayValue"]["values"];
        assert_eq!(up[0]["doubleValue"], serde_json::json!(1.0));
        assert_eq!(
            get("tetrium.wan.total_gb")["value"]["doubleValue"],
            serde_json::json!(3.0)
        );
    }

    #[test]
    fn empty_report_exports_cleanly() {
        let v = to_otel_json(&ObsReport::default(), "empty");
        let spans = v["resourceSpans"][0]["scopeSpans"][0]["spans"]
            .as_array()
            .unwrap();
        assert_eq!(spans.len(), 1);
    }
}
