//! Event-sourced observability for the execution path.
//!
//! The engine, the WAN model and the schedulers all hold clones of one
//! [`Obs`] handle and emit structured events into it: task lifecycle
//! transitions, per-site slot-occupancy and per-link utilization step
//! timelines (sampled at event boundaries), scheduling-instance records,
//! WAN bytes by `(src, dst)` pair, and counters for speculation, failure
//! and capacity-drop events.
//!
//! The disabled handle is the default and costs one `Option` branch per
//! emission point — the engine's hot path stays allocation-free (the
//! overhead budget is enforced by `perf_snapshot --check` against the
//! committed `benchmarks/perf_baseline.json`). When recording, everything
//! collected is simulation-derived and therefore deterministic for a given
//! seed, except the *measured* per-instance scheduler wall latency;
//! [`ObsReport::to_json`] takes an `include_wall` switch so serialized
//! records can stay byte-identical across worker-thread counts (DESIGN.md
//! §7/§8).
//!
//! A handle is an `Arc<Mutex<…>>` so an engine (and its `Obs` clones) can
//! move across threads — the serve front end runs engines on a worker pool
//! and drains task events from subscriber threads. Within one engine all
//! emissions still happen from a single thread at a time, so the mutex is
//! uncontended on the hot path; the disabled handle skips it entirely at
//! an `Option` branch.

pub mod otel;

pub use otel::{to_otel_json, to_otel_string, OTEL_SCOPE};

use std::sync::{Arc, Mutex};
use tetrium_cluster::SiteId;

/// Why a scheduling instance fired (§5 batching: the first requester of a
/// pending instance wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// A job arrived.
    JobArrival,
    /// A stage finished (possibly activating successors).
    StageDone,
    /// A slot was released mid-stage (batched per the §5 policy).
    SlotRelease,
    /// A site's capacity dropped (§4.2).
    CapacityDrop,
    /// A dynamics-timeline event (outage, recovery, link degradation)
    /// changed the cluster's resources mid-run.
    Dynamics,
    /// A task attempt was lost to failure injection.
    Failure,
    /// The event loop went idle with work remaining and retried.
    IdleRetry,
}

impl Trigger {
    /// Stable string used in serialized records.
    pub fn as_str(self) -> &'static str {
        match self {
            Trigger::JobArrival => "job-arrival",
            Trigger::StageDone => "stage-done",
            Trigger::SlotRelease => "slot-release",
            Trigger::CapacityDrop => "capacity-drop",
            Trigger::Dynamics => "dynamics",
            Trigger::Failure => "failure",
            Trigger::IdleRetry => "idle-retry",
        }
    }
}

/// Lifecycle transition of a task attempt (original or speculative copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPhaseEvent {
    /// Assigned a (new) destination site by a scheduling instance.
    Queued,
    /// Occupied a slot and started fetching remote input.
    Fetching,
    /// All inputs local; compute began.
    Computing,
    /// Completed the task (the winning attempt).
    Done,
    /// Lost to failure injection; the task returns to the pool.
    Failed,
    /// Torn down because the competing attempt won the task.
    Cancelled,
}

impl TaskPhaseEvent {
    /// Stable string used in serialized records.
    pub fn as_str(self) -> &'static str {
        match self {
            TaskPhaseEvent::Queued => "queued",
            TaskPhaseEvent::Fetching => "fetching",
            TaskPhaseEvent::Computing => "computing",
            TaskPhaseEvent::Done => "done",
            TaskPhaseEvent::Failed => "failed",
            TaskPhaseEvent::Cancelled => "cancelled",
        }
    }
}

/// One task lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskEvent {
    /// Simulation time of the transition.
    pub t: f64,
    /// Job id (dense index).
    pub job: usize,
    /// Stage index within the job.
    pub stage: usize,
    /// Task index within the stage.
    pub task: usize,
    /// Whether the attempt is a speculative copy.
    pub copy: bool,
    /// The transition.
    pub phase: TaskPhaseEvent,
    /// Site of the attempt.
    pub site: SiteId,
}

/// One scheduling instance as seen from the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedRecord {
    /// Simulation time of the instance.
    pub at: f64,
    /// What requested it.
    pub trigger: Trigger,
    /// Unfinished jobs in the snapshot.
    pub jobs: usize,
    /// Unlaunched tasks across the snapshot's runnable stages (snapshot
    /// size).
    pub unlaunched: usize,
    /// Stage plans the scheduler returned.
    pub plans: usize,
    /// Task assignments across those plans.
    pub assignments: usize,
    /// Tasks actually launched by the dispatch that followed.
    pub launched: usize,
    /// Measured wall-clock seconds inside `Scheduler::schedule` — the only
    /// non-deterministic field; excluded from `to_json(false)`.
    pub wall_secs: f64,
}

/// Per-instance planner breakdown emitted by the Tetrium scheduler: how
/// each planned stage was obtained. Baselines do not emit these (their
/// instances are still covered by [`SchedRecord`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerRecord {
    /// Simulation time of the instance.
    pub at: f64,
    /// Stages planned with the placement LPs (including template-cache
    /// hits, which replace the solve inside the LP path).
    pub lp_planned: usize,
    /// Stages that reused a cached plan.
    pub cache_reused: usize,
    /// Stages planned with the site-local fallback.
    pub local_planned: usize,
    /// Template-cache exact hits (solver skipped, placement verbatim).
    pub tmpl_exact: usize,
    /// Template-cache patched hits (cached split rescaled).
    pub tmpl_patched: usize,
    /// Solves warm-started from a cached optimal basis.
    pub tmpl_warm: usize,
    /// Cold solves through the template-cache path.
    pub tmpl_miss: usize,
    /// Simplex pivots spent across the instance's warm-started solves.
    pub warm_pivots: usize,
}

/// One sample of every link's allocated rate, taken when the flow set or a
/// capacity changes.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSample {
    /// Simulation time of the sample.
    pub t: f64,
    /// Aggregate uplink rate in use per site, GB/s.
    pub up: Vec<f64>,
    /// Aggregate downlink rate in use per site, GB/s.
    pub down: Vec<f64>,
}

/// Event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Speculative copies launched.
    pub copies_launched: usize,
    /// Speculative copies that won their task.
    pub copies_won: usize,
    /// Attempts (copies or superseded originals) torn down by the winner.
    pub attempts_cancelled: usize,
    /// Task attempts lost to failure injection.
    pub task_failures: usize,
    /// Capacity-drop events applied.
    pub capacity_drops: usize,
    /// Dynamics-timeline events applied (capacity drops, link changes,
    /// outages and recoveries — a superset of `capacity_drops`).
    pub dynamics_events: usize,
    /// Full site outages applied.
    pub site_outages: usize,
    /// Task attempts killed by a site outage and re-queued for
    /// re-placement (bounded by the engine's retry budget).
    pub dynamics_retries: usize,
}

/// Everything one run recorded. Also serves as the live recording state
/// behind an enabled [`Obs`] handle; [`Obs::finish`] extracts it as plain
/// (`Send`) data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Initial slot capacity per site (indexed by site id).
    pub slots: Vec<usize>,
    /// Task lifecycle events in emission (= simulation) order.
    pub task_events: Vec<TaskEvent>,
    /// Per-site `(time, occupied slots)` step timeline; occupancy is 0
    /// before the first step. Samples at identical times coalesce into the
    /// final value at that instant.
    pub slot_timeline: Vec<Vec<(f64, usize)>>,
    /// Per-link utilization samples at flow-set/capacity change boundaries,
    /// coalesced per instant.
    pub link_timeline: Vec<LinkSample>,
    /// Scheduling-instance records in simulation order.
    pub sched: Vec<SchedRecord>,
    /// Planner breakdowns (Tetrium only).
    pub planner: Vec<PlannerRecord>,
    /// Net WAN GB per `(src, dst)` pair, row-major `src * n + dst`
    /// (cancelled flows' unsent remainders are refunded).
    pub wan_pair_gb: Vec<f64>,
    /// Event counters.
    pub counters: Counters,
}

impl ObsReport {
    fn recording(slots: Vec<usize>) -> Self {
        let n = slots.len();
        Self {
            slots,
            slot_timeline: vec![Vec::new(); n],
            wan_pair_gb: vec![0.0; n * n],
            ..Self::default()
        }
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.slots.len()
    }

    /// Net WAN GB moved from `src` to `dst` (zero for out-of-range ids).
    pub fn wan_pair(&self, src: SiteId, dst: SiteId) -> f64 {
        self.wan_pair_gb
            .get(src.index() * self.n_sites() + dst.index())
            .copied()
            .unwrap_or(0.0)
    }

    /// Total net WAN GB across all pairs — reconciles with
    /// `FlowSim::total_wan_gb` over the same run.
    pub fn total_wan_gb(&self) -> f64 {
        self.wan_pair_gb.iter().sum()
    }

    /// Number of `(src, dst)` pairs that moved any bytes.
    pub fn active_pairs(&self) -> usize {
        self.wan_pair_gb.iter().filter(|&&gb| gb > 0.0).count()
    }

    /// Per-site busy slot-seconds over `[0, until]`, integrated from the
    /// occupancy step timeline. With failure injection and speculation off
    /// this reconciles with `metrics::timeline::site_busy_secs` over the
    /// run's trace; with them on it additionally counts losing attempts.
    pub fn busy_secs(&self, until: f64) -> Vec<f64> {
        self.slot_timeline
            .iter()
            .map(|tl| {
                let (mut acc, mut prev_t, mut prev_occ) = (0.0, 0.0, 0usize);
                for &(t, occ) in tl {
                    acc += prev_occ as f64 * (t.min(until) - prev_t).max(0.0);
                    prev_t = t.min(until);
                    prev_occ = occ;
                }
                acc + prev_occ as f64 * (until - prev_t).max(0.0)
            })
            .collect()
    }

    /// Per-site slot utilization over `[0, until]`: busy slot-seconds over
    /// available slot-seconds, unclamped (a value above 1 + eps means the
    /// engine oversubscribed a site).
    pub fn utilization(&self, until: f64) -> Vec<f64> {
        self.busy_secs(until)
            .into_iter()
            .zip(&self.slots)
            .map(|(b, &s)| {
                if until <= 0.0 || s == 0 {
                    0.0
                } else {
                    b / (s as f64 * until)
                }
            })
            .collect()
    }

    /// Total (fetch, compute) slot-seconds across attempts, from the task
    /// event stream. Attempts cancelled mid-phase contribute the time they
    /// held the phase.
    pub fn fetch_compute_split(&self) -> (f64, f64) {
        use std::collections::HashMap;
        let mut fetch_start: HashMap<(usize, usize, usize, bool), f64> = HashMap::new();
        let mut compute_start: HashMap<(usize, usize, usize, bool), f64> = HashMap::new();
        let (mut fetch, mut compute) = (0.0, 0.0);
        for e in &self.task_events {
            let key = (e.job, e.stage, e.task, e.copy);
            match e.phase {
                TaskPhaseEvent::Queued => {}
                TaskPhaseEvent::Fetching => {
                    fetch_start.insert(key, e.t);
                }
                TaskPhaseEvent::Computing => {
                    if let Some(t0) = fetch_start.remove(&key) {
                        fetch += e.t - t0;
                    }
                    compute_start.insert(key, e.t);
                }
                TaskPhaseEvent::Done | TaskPhaseEvent::Failed | TaskPhaseEvent::Cancelled => {
                    if let Some(t0) = compute_start.remove(&key) {
                        compute += e.t - t0;
                    }
                    if let Some(t0) = fetch_start.remove(&key) {
                        fetch += e.t - t0;
                    }
                }
            }
        }
        (fetch, compute)
    }

    /// Nearest-rank `q`-quantile (0..=1) of the measured per-instance
    /// scheduler wall latency, in seconds. Zero when nothing was recorded.
    pub fn sched_wall_percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.sched.is_empty() {
            return 0.0;
        }
        let mut w: Vec<f64> = self.sched.iter().map(|s| s.wall_secs).collect();
        w.sort_by(f64::total_cmp);
        let idx = ((w.len() as f64 - 1.0) * q).round() as usize;
        w.get(idx).copied().unwrap_or(0.0)
    }

    /// Serializes the report. `include_wall` gates the measured scheduler
    /// wall latencies — the only non-simulation-derived content — so that
    /// `to_json(false)` is byte-identical for any worker-thread count
    /// (DESIGN.md §7/§8); the CLI's `--obs` output uses `true`.
    pub fn to_json(&self, include_wall: bool) -> serde_json::Value {
        use serde_json::json;
        let sched: Vec<serde_json::Value> = self
            .sched
            .iter()
            .map(|s| {
                let mut v = json!({
                    "at": s.at,
                    "trigger": s.trigger.as_str(),
                    "jobs": s.jobs,
                    "unlaunched": s.unlaunched,
                    "plans": s.plans,
                    "assignments": s.assignments,
                    "launched": s.launched,
                });
                if include_wall {
                    // lint:allow(L6, "json! builds an object; IndexMut inserts, never panics")
                    v["wall_ms"] = json!(s.wall_secs * 1e3);
                }
                v
            })
            .collect();
        json!({
            "schema": "tetrium-obs/v1",
            "sites": self.n_sites(),
            "slots": self.slots,
            "counters": {
                "copies_launched": self.counters.copies_launched,
                "copies_won": self.counters.copies_won,
                "attempts_cancelled": self.counters.attempts_cancelled,
                "task_failures": self.counters.task_failures,
                "capacity_drops": self.counters.capacity_drops,
                "dynamics_events": self.counters.dynamics_events,
                "site_outages": self.counters.site_outages,
                "dynamics_retries": self.counters.dynamics_retries,
            },
            "wan_pair_gb": self.wan_pair_gb,
            "slot_timeline": self.slot_timeline
                .iter()
                .map(|tl| tl.iter().map(|&(t, occ)| json!([t, occ])).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
            "link_timeline": self.link_timeline
                .iter()
                .map(|s| json!({"t": s.t, "up": s.up, "down": s.down}))
                .collect::<Vec<_>>(),
            "sched": sched,
            "planner": self.planner
                .iter()
                .map(|p| json!({
                    "at": p.at,
                    "lp_planned": p.lp_planned,
                    "cache_reused": p.cache_reused,
                    "local_planned": p.local_planned,
                    "tmpl_exact": p.tmpl_exact,
                    "tmpl_patched": p.tmpl_patched,
                    "tmpl_warm": p.tmpl_warm,
                    "tmpl_miss": p.tmpl_miss,
                    "warm_pivots": p.warm_pivots,
                }))
                .collect::<Vec<_>>(),
            "task_events": self.task_events
                .iter()
                .map(|e| json!({
                    "t": e.t,
                    "job": e.job,
                    "stage": e.stage,
                    "task": e.task,
                    "copy": e.copy,
                    "phase": e.phase.as_str(),
                    "site": e.site.index(),
                }))
                .collect::<Vec<_>>(),
        })
    }
}

/// Cloneable handle to an observability sink. [`Obs::disabled`] (the
/// default) drops every emission at an `Option` branch; [`Obs::recording`]
/// collects into a shared [`ObsReport`].
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<ObsReport>>>,
}

impl Obs {
    /// The no-op sink.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording sink over a cluster with the given per-site slot counts.
    pub fn recording(slots: Vec<usize>) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(ObsReport::recording(slots)))),
        }
    }

    /// Whether emissions are recorded. Callers use this to skip *preparing*
    /// expensive payloads (e.g. link usage vectors); the emission methods
    /// themselves are already no-ops when disabled.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with(&self, f: impl FnOnce(&mut ObsReport)) {
        if let Some(core) = &self.inner {
            // Recover from poisoning: a panic in one engine thread must not
            // cascade through the shared sink and take down unrelated
            // shards. The report data is plain counters/vectors, valid
            // after any partial emission.
            f(&mut core
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner));
        }
    }

    /// Records a task lifecycle transition.
    #[allow(clippy::too_many_arguments)]
    pub fn task_event(
        &self,
        t: f64,
        job: usize,
        stage: usize,
        task: usize,
        copy: bool,
        phase: TaskPhaseEvent,
        site: SiteId,
    ) {
        self.with(|r| {
            r.task_events.push(TaskEvent {
                t,
                job,
                stage,
                task,
                copy,
                phase,
                site,
            })
        });
    }

    /// Records a site's slot occupancy after a change; same-instant samples
    /// coalesce into the final value.
    pub fn slot_sample(&self, t: f64, site: SiteId, occupied: usize) {
        self.with(|r| {
            let Some(tl) = r.slot_timeline.get_mut(site.index()) else {
                return;
            };
            match tl.last_mut() {
                Some(last) if last.0 == t => last.1 = occupied,
                _ => tl.push((t, occupied)),
            }
        });
    }

    /// Records the allocated rate on every link after a flow-set or
    /// capacity change; same-instant samples coalesce.
    pub fn link_sample(&self, t: f64, up: &[f64], down: &[f64]) {
        self.with(|r| match r.link_timeline.last_mut() {
            Some(last) if last.t == t => {
                last.up.clear();
                last.up.extend_from_slice(up);
                last.down.clear();
                last.down.extend_from_slice(down);
            }
            _ => r.link_timeline.push(LinkSample {
                t,
                up: up.to_vec(),
                down: down.to_vec(),
            }),
        });
    }

    /// Accounts `gb` (negative for refunds of unsent bytes) against the
    /// `(src, dst)` WAN matrix.
    pub fn wan_transfer(&self, src: SiteId, dst: SiteId, gb: f64) {
        self.with(|r| {
            let n = r.n_sites();
            if let Some(cell) = r.wan_pair_gb.get_mut(src.index() * n + dst.index()) {
                *cell += gb;
            }
        });
    }

    /// Records a scheduling instance.
    pub fn sched_record(&self, rec: SchedRecord) {
        self.with(|r| r.sched.push(rec));
    }

    /// Records a planner breakdown.
    pub fn planner_record(&self, rec: PlannerRecord) {
        self.with(|r| r.planner.push(rec));
    }

    /// Counts a speculative copy launch.
    pub fn copy_launched(&self) {
        self.with(|r| r.counters.copies_launched += 1);
    }

    /// Counts a speculative copy winning its task.
    pub fn copy_won(&self) {
        self.with(|r| r.counters.copies_won += 1);
    }

    /// Counts a losing attempt being torn down.
    pub fn attempt_cancelled(&self) {
        self.with(|r| r.counters.attempts_cancelled += 1);
    }

    /// Counts a task attempt lost to failure injection.
    pub fn task_failure(&self) {
        self.with(|r| r.counters.task_failures += 1);
    }

    /// Counts a capacity-drop event.
    pub fn capacity_drop(&self) {
        self.with(|r| r.counters.capacity_drops += 1);
    }

    /// Counts an applied dynamics-timeline event of any kind.
    pub fn dynamics_event(&self) {
        self.with(|r| r.counters.dynamics_events += 1);
    }

    /// Counts a full site outage.
    pub fn site_outage(&self) {
        self.with(|r| r.counters.site_outages += 1);
    }

    /// Counts an attempt killed by an outage and re-queued.
    pub fn dynamics_retry(&self) {
        self.with(|r| r.counters.dynamics_retries += 1);
    }

    /// Extracts the recorded report, leaving the shared state empty (other
    /// live clones keep emitting into the drained core, which is harmless
    /// after the run ends). Returns `None` for a disabled sink.
    pub fn finish(&self) -> Option<ObsReport> {
        self.inner.as_ref().map(|core| {
            let mut locked = core
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *locked)
        })
    }

    /// Drains the task events recorded since the last drain, leaving the
    /// rest of the report intact. The serve front end uses this to fan
    /// lifecycle events out to subscribers mid-run without consuming the
    /// report. Returns an empty vec for a disabled sink.
    pub fn drain_task_events(&self) -> Vec<TaskEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |core| {
            let mut locked = core
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut locked.task_events)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
    }

    #[test]
    fn drain_task_events_takes_only_task_events() {
        let obs = Obs::recording(vec![1]);
        obs.task_event(1.0, 0, 0, 0, false, TaskPhaseEvent::Queued, SiteId(0));
        obs.copy_launched();
        let drained = obs.drain_task_events();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].t, 1.0);
        // A second drain sees nothing new; the rest of the report survives.
        assert!(obs.drain_task_events().is_empty());
        let r = obs.finish().unwrap();
        assert!(r.task_events.is_empty());
        assert_eq!(r.counters.copies_launched, 1);
    }

    #[test]
    fn drain_task_events_on_disabled_sink_is_empty() {
        assert!(Obs::disabled().drain_task_events().is_empty());
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.slot_sample(1.0, SiteId(0), 1);
        obs.wan_transfer(SiteId(0), SiteId(1), 2.0);
        obs.copy_launched();
        assert!(obs.finish().is_none());
    }

    #[test]
    fn slot_timeline_integrates_to_busy_seconds() {
        let obs = Obs::recording(vec![2, 1]);
        // Site 0: occupancy 1 over [1,3), 2 over [3,4), 0 after.
        obs.slot_sample(1.0, SiteId(0), 1);
        obs.slot_sample(3.0, SiteId(0), 2);
        obs.slot_sample(4.0, SiteId(0), 0);
        let r = obs.finish().unwrap();
        let busy = r.busy_secs(5.0);
        assert!((busy[0] - 4.0).abs() < 1e-12);
        assert_eq!(busy[1], 0.0);
        let util = r.utilization(5.0);
        assert!((util[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn same_instant_samples_coalesce() {
        let obs = Obs::recording(vec![4]);
        obs.slot_sample(2.0, SiteId(0), 1);
        obs.slot_sample(2.0, SiteId(0), 2);
        obs.slot_sample(2.0, SiteId(0), 3);
        obs.link_sample(2.0, &[1.0], &[1.0]);
        obs.link_sample(2.0, &[2.0], &[2.0]);
        let r = obs.finish().unwrap();
        assert_eq!(r.slot_timeline[0], vec![(2.0, 3)]);
        assert_eq!(r.link_timeline.len(), 1);
        assert_eq!(r.link_timeline[0].up, vec![2.0]);
    }

    #[test]
    fn utilization_is_unclamped() {
        let obs = Obs::recording(vec![1]);
        obs.slot_sample(0.0, SiteId(0), 2); // Oversubscribed on purpose.
        obs.slot_sample(4.0, SiteId(0), 0);
        let r = obs.finish().unwrap();
        assert!((r.utilization(4.0)[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wan_matrix_nets_out_refunds() {
        let obs = Obs::recording(vec![0; 3]);
        obs.wan_transfer(SiteId(0), SiteId(1), 5.0);
        obs.wan_transfer(SiteId(0), SiteId(1), -2.0);
        obs.wan_transfer(SiteId(2), SiteId(1), 1.0);
        let r = obs.finish().unwrap();
        assert!((r.wan_pair(SiteId(0), SiteId(1)) - 3.0).abs() < 1e-12);
        assert!((r.total_wan_gb() - 4.0).abs() < 1e-12);
        assert_eq!(r.active_pairs(), 2);
    }

    #[test]
    fn fetch_compute_split_handles_cancelled_attempts() {
        let obs = Obs::recording(vec![2]);
        let s = SiteId(0);
        // Original: fetch [0,2), compute [2,5), done.
        obs.task_event(0.0, 0, 0, 0, false, TaskPhaseEvent::Fetching, s);
        obs.task_event(2.0, 0, 0, 0, false, TaskPhaseEvent::Computing, s);
        obs.task_event(5.0, 0, 0, 0, false, TaskPhaseEvent::Done, s);
        // Copy: fetch [3,5), cancelled mid-fetch when the original won.
        obs.task_event(3.0, 0, 0, 0, true, TaskPhaseEvent::Fetching, s);
        obs.task_event(5.0, 0, 0, 0, true, TaskPhaseEvent::Cancelled, s);
        let r = obs.finish().unwrap();
        let (fetch, compute) = r.fetch_compute_split();
        assert!((fetch - 4.0).abs() < 1e-12);
        assert!((compute - 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_excludes_wall_unless_asked() {
        let obs = Obs::recording(vec![1]);
        obs.sched_record(SchedRecord {
            at: 1.0,
            trigger: Trigger::JobArrival,
            jobs: 1,
            unlaunched: 3,
            plans: 1,
            assignments: 3,
            launched: 1,
            wall_secs: 0.25,
        });
        let r = obs.finish().unwrap();
        let bare = serde_json::to_string(&r.to_json(false)).unwrap();
        let full = serde_json::to_string(&r.to_json(true)).unwrap();
        assert!(!bare.contains("wall_ms"));
        assert!(full.contains("wall_ms"));
        assert!(bare.contains("\"trigger\":\"job-arrival\""));
    }

    #[test]
    fn wall_percentiles_are_ranked() {
        let obs = Obs::recording(vec![1]);
        for (i, w) in [0.3, 0.1, 0.2].into_iter().enumerate() {
            obs.sched_record(SchedRecord {
                at: i as f64,
                trigger: Trigger::SlotRelease,
                jobs: 1,
                unlaunched: 0,
                plans: 0,
                assignments: 0,
                launched: 0,
                wall_secs: w,
            });
        }
        let r = obs.finish().unwrap();
        assert!((r.sched_wall_percentile(0.0) - 0.1).abs() < 1e-12);
        assert!((r.sched_wall_percentile(0.5) - 0.2).abs() < 1e-12);
        assert!((r.sched_wall_percentile(1.0) - 0.3).abs() < 1e-12);
        assert_eq!(ObsReport::default().sched_wall_percentile(0.5), 0.0);
    }
}
