//! `tetrium-cli` — generate, run and compare geo-distributed scheduling
//! scenarios from the command line.
//!
//! ```text
//! tetrium-cli generate --kind trace --sites trace-50 --jobs 16 --seed 7 --out scenario.json
//! tetrium-cli ingest   --trace cluster_trace.json --sites ec2-8 --out scenario.json
//! tetrium-cli run      --scenario scenario.json --scheduler tetrium --rho 0.75
//! tetrium-cli run      --trace cluster_trace.json --sites ec2-8 --obs-otel spans.json
//! tetrium-cli compare  --scenario scenario.json
//! tetrium-cli serve    --scenario scenario.json --shards 2
//! ```
//!
//! Argument parsing is hand-rolled (`--flag value` pairs) to keep the
//! workspace dependency-light. Arguments are taken as OS strings so
//! non-UTF-8 paths work (and non-UTF-8 text flags fail cleanly).

mod args;
mod commands;

use std::ffi::OsString;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<OsString> = std::env::args_os().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
