//! Minimal `--flag value` argument parsing.
//!
//! Values are kept as [`OsString`] so path-valued flags round-trip
//! non-UTF-8 file names untouched (they go to the filesystem APIs as
//! [`Path`]s, never through `str`). Flags that *are* text — scheduler
//! names, numbers, presets — are decoded on access and a non-UTF-8 value
//! is a clean CLI error, not a panic.

use std::collections::BTreeMap;
use std::ffi::OsString;
use std::path::Path;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, OsString>,
}

impl Args {
    /// Parses `--name value` pairs; rejects dangling or unknown-form args.
    /// Flag *names* must be UTF-8; values may be arbitrary OS strings.
    pub fn parse(argv: &[OsString]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let name = a
                .to_str()
                .ok_or_else(|| format!("flag name {a:?} is not valid UTF-8"))?
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", a.to_string_lossy()))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            if flags.insert(name.to_string(), value.clone()).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
        }
        Ok(Self { flags })
    }

    /// Required text flag; errors when missing or not UTF-8.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)?
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional text flag; errors when present but not UTF-8.
    pub fn get(&self, name: &str) -> Result<Option<&str>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v.to_str().map(Some).ok_or_else(|| {
                format!(
                    "flag --{name}: value {:?} is not valid UTF-8",
                    v.to_string_lossy()
                )
            }),
        }
    }

    /// Required path flag; any OS string is a valid path.
    pub fn require_path(&self, name: &str) -> Result<&Path, String> {
        self.get_path(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional path flag; any OS string is a valid path.
    pub fn get_path(&self, name: &str) -> Option<&Path> {
        self.flags.get(name).map(Path::new)
    }

    /// Whether the flag was given at all.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Optional flag parsed to a type, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }

    /// Rejects flags outside the allowed set (typo protection).
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("unknown flag --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<OsString> {
        v.iter().map(OsString::from).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&sv(&["--jobs", "16", "--seed", "7"])).unwrap();
        assert_eq!(a.require("jobs").unwrap(), "16");
        assert_eq!(a.get_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.get_or::<f64>("rho", 1.0).unwrap(), 1.0);
        assert!(a.has("jobs"));
        assert!(!a.has("rho"));
    }

    #[test]
    fn rejects_dangling_and_duplicates() {
        assert!(Args::parse(&sv(&["--jobs"])).is_err());
        assert!(Args::parse(&sv(&["jobs", "16"])).is_err());
        assert!(Args::parse(&sv(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn unknown_flags_are_caught() {
        let a = Args::parse(&sv(&["--oops", "1"])).unwrap();
        assert!(a.allow_only(&["jobs"]).is_err());
        assert!(a.allow_only(&["oops"]).is_ok());
    }

    #[cfg(unix)]
    #[test]
    fn non_utf8_values_are_paths_not_panics() {
        use std::os::unix::ffi::OsStringExt;
        let weird = OsString::from_vec(vec![b'/', b't', b'm', b'p', b'/', 0xff, 0xfe]);
        let argv = vec![OsString::from("--out"), weird.clone()];
        let a = Args::parse(&argv).unwrap();
        // As a path it round-trips byte-exactly.
        assert_eq!(a.require_path("out").unwrap(), Path::new(&weird));
        assert_eq!(a.get_path("out").unwrap(), Path::new(&weird));
        // As text it is a clean error, not a panic.
        let err = a.require("out").unwrap_err();
        assert!(err.contains("not valid UTF-8"), "{err}");
        assert!(a.get("out").is_err());
        assert!(a.get_or::<f64>("out", 1.0).is_err());
    }
}
