//! Minimal `--flag value` argument parsing.

use std::collections::BTreeMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses `--name value` pairs; rejects dangling or unknown-form args.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let name = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{a}'"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            if flags.insert(name.to_string(), value.clone()).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
        }
        Ok(Self { flags })
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Optional flag parsed to a type, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }

    /// Rejects flags outside the allowed set (typo protection).
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("unknown flag --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&sv(&["--jobs", "16", "--seed", "7"])).unwrap();
        assert_eq!(a.require("jobs").unwrap(), "16");
        assert_eq!(a.get_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.get_or::<f64>("rho", 1.0).unwrap(), 1.0);
    }

    #[test]
    fn rejects_dangling_and_duplicates() {
        assert!(Args::parse(&sv(&["--jobs"])).is_err());
        assert!(Args::parse(&sv(&["jobs", "16"])).is_err());
        assert!(Args::parse(&sv(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn unknown_flags_are_caught() {
        let a = Args::parse(&sv(&["--oops", "1"])).unwrap();
        assert!(a.allow_only(&["jobs"]).is_err());
        assert!(a.allow_only(&["oops"]).is_ok());
    }
}
