//! Subcommand implementations: generate / ingest / run / compare / serve.

use crate::args::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ffi::OsString;
use std::path::Path;
use tetrium::cluster::Cluster;
use tetrium::core::{PlanCacheMode, TetriumConfig, WanKnob};
use tetrium::sim::EngineConfig;
use tetrium::workload::ingest::{
    read_trace_file, scenario_from_trace, TraceProfile, ValidatorConfig,
};
use tetrium::workload::{
    bigdata_like_jobs, tpcds_like_jobs, trace_like_jobs, Scenario, TraceParams,
};
use tetrium::{run_workload, run_workload_dynamic, SchedulerKind};

/// Help text printed on argument errors.
pub const USAGE: &str = "\
usage:
  tetrium-cli generate --kind trace|tpcds|bigdata --sites ec2-8|ec2-30|trace-50
                       [--jobs N] [--seed S] [--interarrival SECS] [--scale GB]
                       --out scenario.json
  tetrium-cli ingest   --trace trace.json|trace.csv --sites ec2-8|ec2-30|trace-50
                       [--out scenario.json] [--profile reference-trace.json]
                       [--max-drift FRAC] [--byte-tolerance FRAC] [--seed S]
  tetrium-cli run      --scenario scenario.json | --trace trace.json --sites PRESET
                       [--scheduler tetrium|in-place|iridium|centralized|tetris|swag]
                       [--rho R] [--epsilon E] [--seed S] [--json out.json]
                       [--plan-cache off|exact|full]
                       [--chrome-trace trace.json] [--obs obs.json]
                       [--obs-otel spans.json] [--dynamics timeline.json]
  tetrium-cli compare  --scenario scenario.json [--seed S]
  tetrium-cli serve    --scenario scenario.json [--shards N]
                       [--scheduler tetrium|in-place|iridium|centralized|tetris|swag]
                       [--rho R] [--epsilon E] [--seed S] [--json out.json]
                       [--obs-otel spans.json]";

/// Routes a command line to its subcommand.
pub fn dispatch(argv: &[OsString]) -> Result<(), String> {
    let (cmd, rest) = argv.split_first().ok_or("no subcommand given")?;
    match cmd.to_str() {
        Some("generate") => generate(&Args::parse(rest)?),
        Some("ingest") => ingest(&Args::parse(rest)?),
        Some("run") => run(&Args::parse(rest)?),
        Some("compare") => compare(&Args::parse(rest)?),
        Some("serve") => serve(&Args::parse(rest)?),
        Some("help" | "--help" | "-h") => {
            println!("{USAGE}");
            Ok(())
        }
        _ => Err(format!("unknown subcommand '{}'", cmd.to_string_lossy())),
    }
}

fn cluster_preset(name: &str, seed: u64) -> Result<Cluster, String> {
    match name {
        "ec2-8" => Ok(tetrium::cluster::ec2_eight_regions()),
        "ec2-30" => Ok(tetrium::cluster::ec2_thirty_instances()),
        "trace-50" => {
            let mut rng = StdRng::seed_from_u64(seed);
            Ok(tetrium::cluster::trace_fifty_sites(&mut rng))
        }
        other => Err(format!(
            "unknown site preset '{other}' (ec2-8, ec2-30, trace-50)"
        )),
    }
}

fn plan_cache_mode(name: &str) -> Result<PlanCacheMode, String> {
    match name {
        "off" => Ok(PlanCacheMode::Off),
        "exact" => Ok(PlanCacheMode::Exact),
        "full" => Ok(PlanCacheMode::Full),
        other => Err(format!(
            "unknown plan-cache mode '{other}' (off, exact, full)"
        )),
    }
}

fn scheduler_kind(
    name: &str,
    rho: f64,
    epsilon: f64,
    plan_cache: PlanCacheMode,
) -> Result<SchedulerKind, String> {
    let custom = rho < 1.0 || epsilon < 1.0 || plan_cache != PlanCacheMode::Off;
    match name {
        "tetrium" if !custom => Ok(SchedulerKind::Tetrium),
        "tetrium" => Ok(SchedulerKind::TetriumWith(TetriumConfig {
            wan: WanKnob::new(rho),
            epsilon,
            plan_cache,
            ..TetriumConfig::default()
        })),
        "in-place" => Ok(SchedulerKind::InPlace),
        "iridium" => Ok(SchedulerKind::Iridium),
        "centralized" => Ok(SchedulerKind::Centralized),
        "tetris" => Ok(SchedulerKind::Tetris),
        "swag" => Ok(SchedulerKind::Swag),
        other => Err(format!("unknown scheduler '{other}'")),
    }
}

fn write_pretty(path: &Path, value: &serde_json::Value) -> Result<(), String> {
    let body = serde_json::to_string_pretty(value)
        .map_err(|e| format!("cannot serialize {}: {e}", path.display()))?;
    std::fs::write(path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn generate(args: &Args) -> Result<(), String> {
    args.allow_only(&[
        "kind",
        "sites",
        "jobs",
        "seed",
        "interarrival",
        "scale",
        "out",
    ])?;
    let kind = args.require("kind")?;
    let sites = args.require("sites")?;
    let out = args.require_path("out")?;
    let jobs_n: usize = args.get_or("jobs", 12)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let interarrival: f64 = args.get_or("interarrival", 30.0)?;
    let scale: f64 = args.get_or("scale", 10.0)?;

    let cluster = cluster_preset(sites, seed)?;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let jobs = match kind {
        "trace" => {
            let params = TraceParams {
                mean_interarrival_secs: interarrival,
                median_input_gb: scale,
                ..TraceParams::default()
            };
            trace_like_jobs(&cluster, jobs_n, &params, &mut rng)
        }
        "tpcds" => tpcds_like_jobs(&cluster, jobs_n, interarrival, scale, &mut rng),
        "bigdata" => bigdata_like_jobs(&cluster, jobs_n, interarrival, scale, &mut rng),
        other => return Err(format!("unknown workload kind '{other}'")),
    };
    let description = format!(
        "kind={kind} sites={sites} jobs={jobs_n} seed={seed} interarrival={interarrival} scale={scale}"
    );
    let scenario = Scenario::new(description, cluster, jobs).map_err(|e| e.to_string())?;
    scenario.save(out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} jobs, {} sites, {:.1} GB total input",
        out.display(),
        scenario.jobs.len(),
        scenario.cluster.len(),
        scenario.jobs.iter().map(|j| j.input_gb()).sum::<f64>()
    );
    Ok(())
}

/// Builds the validator config from the shared ingestion flags
/// (`--byte-tolerance`, `--profile`, `--max-drift`).
fn validator_config(args: &Args) -> Result<ValidatorConfig, String> {
    let mut cfg = ValidatorConfig::default();
    cfg.byte_tolerance = args.get_or("byte-tolerance", cfg.byte_tolerance)?;
    cfg.max_drift = args.get_or("max-drift", cfg.max_drift)?;
    if let Some(reference) = args.get_path("profile") {
        let trace = read_trace_file(reference).map_err(|e| e.to_string())?;
        cfg.profile = Some(TraceProfile::from_trace(&trace).ok_or_else(|| {
            format!(
                "reference trace {} has too few jobs to profile",
                reference.display()
            )
        })?);
    }
    Ok(cfg)
}

/// Loads a raw trace, runs the validation gate, and converts to a
/// scenario over the given site preset. All violations surface in the
/// error string, row-addressed.
fn load_trace_scenario(args: &Args, seed: u64) -> Result<Scenario, String> {
    let path = args.require_path("trace")?;
    let sites = args.require("sites")?;
    let cluster = cluster_preset(sites, seed)?;
    let trace = read_trace_file(path).map_err(|e| e.to_string())?;
    let cfg = validator_config(args)?;
    scenario_from_trace(&trace, cluster, &cfg).map_err(|e| e.to_string())
}

/// Validates a raw trace file and (optionally) freezes it as a scenario.
fn ingest(args: &Args) -> Result<(), String> {
    args.allow_only(&[
        "trace",
        "sites",
        "out",
        "profile",
        "max-drift",
        "byte-tolerance",
        "seed",
    ])?;
    let seed: u64 = args.get_or("seed", 1)?;
    let scenario = load_trace_scenario(args, seed)?;
    println!(
        "trace accepted: {} jobs, {} stages, {} sites, {:.1} GB total input",
        scenario.jobs.len(),
        scenario.jobs.iter().map(|j| j.num_stages()).sum::<usize>(),
        scenario.cluster.len(),
        scenario.jobs.iter().map(|j| j.input_gb()).sum::<f64>()
    );
    if let Some(out) = args.get_path("out") {
        scenario.save(out).map_err(|e| e.to_string())?;
        println!("wrote {}", out.display());
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    args.allow_only(&[
        "scenario",
        "trace",
        "sites",
        "profile",
        "max-drift",
        "byte-tolerance",
        "scheduler",
        "rho",
        "epsilon",
        "seed",
        "json",
        "plan-cache",
        "chrome-trace",
        "obs",
        "obs-otel",
        "dynamics",
    ])?;
    let seed: u64 = args.get_or("seed", 0)?;
    let scenario = match (args.has("scenario"), args.has("trace")) {
        (true, false) => {
            Scenario::load(args.require_path("scenario")?).map_err(|e| e.to_string())?
        }
        (false, true) => load_trace_scenario(args, seed)?,
        (true, true) => return Err("--scenario and --trace are mutually exclusive".into()),
        (false, false) => return Err("one of --scenario or --trace is required".into()),
    };
    let rho: f64 = args.get_or("rho", 1.0)?;
    let epsilon: f64 = args.get_or("epsilon", 1.0)?;
    let plan_cache = plan_cache_mode(args.get("plan-cache")?.unwrap_or("off"))?;
    let kind = scheduler_kind(
        args.get("scheduler")?.unwrap_or("tetrium"),
        rho,
        epsilon,
        plan_cache,
    )?;
    let dynamics = args
        .get_path("dynamics")
        .map(|path| load_dynamics(path, &scenario.cluster))
        .transpose()?;

    let mut cfg = EngineConfig::trace_like(seed);
    cfg.record_trace = args.has("chrome-trace");
    cfg.record_obs = args.has("obs") || args.has("obs-otel");
    let report = match dynamics {
        Some(timeline) => {
            run_workload_dynamic(scenario.cluster, scenario.jobs, kind, cfg, timeline)
        }
        None => run_workload(scenario.cluster, scenario.jobs, kind, cfg),
    }
    .map_err(|e| e.to_string())?;

    println!(
        "{}: {} jobs, avg response {:.1} s, p90 {:.1} s, WAN {:.1} GB, makespan {:.1} s",
        report.scheduler,
        report.jobs.len(),
        report.avg_response(),
        report.response_percentile(0.9),
        report.total_wan_gb,
        report.makespan
    );
    for j in &report.jobs {
        println!(
            "  {:<12} arrival {:>8.1}  response {:>8.1} s  wan {:>7.2} GB  stages {}",
            j.name, j.arrival, j.response, j.wan_gb, j.num_stages
        );
    }
    if let Some(path) = args.get_path("obs") {
        let obs = report.obs.as_ref().expect("record_obs was set");
        print_obs_summary(obs, report.makespan);
        write_pretty(path, &obs.to_json(true))?;
        println!("wrote {} (schema tetrium-obs/v1)", path.display());
    }
    if let Some(path) = args.get_path("obs-otel") {
        let obs = report.obs.as_ref().expect("record_obs was set");
        // The run name seeds the span-id namespace; it must be a pure
        // function of the run's inputs so the export stays
        // byte-deterministic across worker-thread counts.
        let run_name = format!("run/{}/seed-{seed}", report.scheduler);
        std::fs::write(path, tetrium::obs::to_otel_string(obs, &run_name))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {} (OTLP/JSON spans)", path.display());
    }
    if let Some(path) = args.get_path("chrome-trace") {
        std::fs::write(path, tetrium::metrics::chrome_trace(&report.trace))
            .map_err(|e| e.to_string())?;
        println!(
            "wrote {} (load in chrome://tracing or Perfetto)",
            path.display()
        );
    }
    if let Some(path) = args.get_path("json") {
        let rows: Vec<serde_json::Value> = report
            .jobs
            .iter()
            .map(|j| {
                serde_json::json!({
                    "id": j.id.index(), "name": j.name, "arrival_s": j.arrival,
                    "response_s": j.response, "wan_gb": j.wan_gb,
                })
            })
            .collect();
        let v = serde_json::json!({
            "scheduler": report.scheduler,
            "avg_response_s": report.avg_response(),
            "wan_gb": report.total_wan_gb,
            "makespan_s": report.makespan,
            "jobs": rows,
        });
        write_pretty(path, &v)?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

/// Loads and validates a mid-run dynamics timeline (a JSON array of
/// `{"site": N, "at_time": S, "change": {"kind": ...}}` events).
fn load_dynamics(
    path: &Path,
    cluster: &Cluster,
) -> Result<tetrium::cluster::DynamicsTimeline, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read dynamics {}: {e}", path.display()))?;
    let timeline: tetrium::cluster::DynamicsTimeline =
        serde_json::from_str(&body).map_err(|e| format!("bad dynamics {}: {e}", path.display()))?;
    timeline
        .validate_for(cluster)
        .map_err(|e| format!("bad dynamics {}: {e}", path.display()))?;
    Ok(timeline)
}

/// Console digest of a run's observability record: per-site occupancy,
/// where attempt time went, and how the scheduler behaved.
fn print_obs_summary(obs: &tetrium::obs::ObsReport, makespan: f64) {
    println!("\nobservability summary (over makespan {makespan:.1} s)");
    println!(
        "{:<6} {:>6} {:>12} {:>12}",
        "site", "slots", "busy (s)", "util"
    );
    let busy = obs.busy_secs(makespan);
    let util = obs.utilization(makespan);
    for (i, (b, u)) in busy.iter().zip(&util).enumerate() {
        println!("s{i:<5} {:>6} {b:>12.1} {u:>12.3}", obs.slots[i]);
    }
    let (fetch, compute) = obs.fetch_compute_split();
    let total = fetch + compute;
    let pct = |x: f64| if total > 0.0 { 100.0 * x / total } else { 0.0 };
    println!(
        "attempt time: fetch {fetch:.1} s ({:.0}%), compute {compute:.1} s ({:.0}%)",
        pct(fetch),
        pct(compute)
    );
    println!(
        "scheduler: {} instances, wall p50 {:.2} ms / p99 {:.2} ms",
        obs.sched.len(),
        obs.sched_wall_percentile(0.5) * 1e3,
        obs.sched_wall_percentile(0.99) * 1e3
    );
    println!(
        "wan: {:.1} GB net over {} active (src,dst) pairs",
        obs.total_wan_gb(),
        obs.active_pairs()
    );
    let c = obs.counters;
    println!(
        "events: {} copies launched, {} won, {} attempts cancelled, {} failures, {} capacity drops",
        c.copies_launched, c.copies_won, c.attempts_cancelled, c.task_failures, c.capacity_drops
    );
    if c.dynamics_events > 0 {
        println!(
            "dynamics: {} timeline events, {} site outages, {} attempts retried",
            c.dynamics_events, c.site_outages, c.dynamics_retries
        );
    }
}

/// Runs a scenario through the `tetrium-serve` front end: jobs are
/// submitted over the async submission channel, sharded by job id, and
/// the merged shard reports are printed. The service is started held and
/// opened only after every submission so each shard sees exactly one
/// epoch — that pins the epoch partition and makes the output
/// reproducible (see the `tetrium-serve` determinism contract).
fn serve(args: &Args) -> Result<(), String> {
    args.allow_only(&[
        "scenario",
        "shards",
        "scheduler",
        "rho",
        "epsilon",
        "seed",
        "json",
        "plan-cache",
        "obs-otel",
    ])?;
    let scenario = Scenario::load(args.require_path("scenario")?).map_err(|e| e.to_string())?;
    let shards: usize = args.get_or("shards", 2)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let rho: f64 = args.get_or("rho", 1.0)?;
    let epsilon: f64 = args.get_or("epsilon", 1.0)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let plan_cache = plan_cache_mode(args.get("plan-cache")?.unwrap_or("off"))?;
    let kind = scheduler_kind(
        args.get("scheduler")?.unwrap_or("tetrium"),
        rho,
        epsilon,
        plan_cache,
    )?;
    let otel_path = args.get_path("obs-otel");
    let mut engine_cfg = EngineConfig::trace_like(seed);
    // Task events only flow to subscribers (and thus to the span tap)
    // when the shard engines record obs.
    engine_cfg.record_obs = otel_path.is_some();
    let cfg = tetrium_serve::ServeConfig {
        shards,
        scheduler: kind,
        engine: engine_cfg,
        ..tetrium_serve::ServeConfig::default()
    };
    let n_jobs = scenario.jobs.len();
    let rt = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .map_err(|e| format!("cannot build runtime: {e}"))?;
    let (report, observed_finished, tap) = rt.block_on(async {
        let svc = tetrium_serve::TetriumService::start_held(&scenario.cluster, &cfg);
        let mut events = svc.subscribe();
        let counter = tokio::spawn(async move {
            let mut tap = tetrium_serve::SpanTap::new();
            let mut finished = 0usize;
            loop {
                use tokio::sync::broadcast::error::RecvError;
                match events.recv().await {
                    Ok(event) => {
                        if matches!(event, tetrium_serve::JobEvent::Finished { .. }) {
                            finished += 1;
                        }
                        tap.observe(&event);
                    }
                    Err(RecvError::Lagged(_)) => {}
                    Err(RecvError::Closed) => break,
                }
            }
            (finished, tap)
        });
        for job in scenario.jobs {
            svc.submit(job).await.map_err(|e| e.to_string())?;
        }
        svc.open();
        let report = svc.join().await.map_err(|e| e.to_string())?;
        let (finished, tap) = counter
            .await
            .map_err(|_| "event counter lost".to_string())?;
        Ok::<_, String>((report, finished, tap))
    })?;
    println!(
        "serve: {shards} shard(s), {n_jobs} job(s) submitted, {observed_finished} Finished event(s) observed"
    );
    for s in &report.shards {
        println!(
            "  shard {}: {:>3} jobs, makespan {:>8.1} s, WAN {:>7.1} GB",
            s.shard,
            s.report.jobs.len(),
            s.report.makespan,
            s.report.total_wan_gb
        );
    }
    println!(
        "total: {} jobs, avg response {:.1} s, max makespan {:.1} s, WAN {:.1} GB",
        report.total_jobs(),
        report.avg_response(),
        report.makespan(),
        report.total_wan_gb()
    );
    if let Some(path) = otel_path {
        let run_name = format!("serve/seed-{seed}");
        std::fs::write(path, tap.to_otel_string(&run_name))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {} (OTLP/JSON spans)", path.display());
    }
    if let Some(path) = args.get_path("json") {
        write_pretty(path, &report.to_json())?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn compare(args: &Args) -> Result<(), String> {
    args.allow_only(&["scenario", "seed"])?;
    let scenario = Scenario::load(args.require_path("scenario")?).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0)?;
    println!(
        "{:<13} {:>10} {:>10} {:>10} {:>10}",
        "scheduler", "avg (s)", "p90 (s)", "WAN (GB)", "makespan"
    );
    for kind in [
        SchedulerKind::Tetrium,
        SchedulerKind::Iridium,
        SchedulerKind::InPlace,
        SchedulerKind::Swag,
        SchedulerKind::Tetris,
        SchedulerKind::Centralized,
    ] {
        let report = run_workload(
            scenario.cluster.clone(),
            scenario.jobs.clone(),
            kind,
            EngineConfig::trace_like(seed),
        )
        .map_err(|e| e.to_string())?;
        println!(
            "{:<13} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            report.scheduler,
            report.avg_response(),
            report.response_percentile(0.9),
            report.total_wan_gb,
            report.makespan
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrium::workload::ingest::trace_from_jobs;

    fn sv(v: &[&str]) -> Vec<OsString> {
        v.iter().map(OsString::from).collect()
    }

    fn svp(v: &[&str], tail: &[&Path]) -> Vec<OsString> {
        let mut out = sv(v);
        out.extend(tail.iter().map(|p| p.as_os_str().to_os_string()));
        out
    }

    /// Writes a small valid trace over the ec2-8 preset and returns its
    /// path.
    fn write_mini_trace(dir: &Path) -> std::path::PathBuf {
        let cluster = tetrium::cluster::ec2_eight_regions();
        let mut rng = StdRng::seed_from_u64(11);
        let jobs = trace_like_jobs(&cluster, 3, &TraceParams::default(), &mut rng);
        let trace = trace_from_jobs(&jobs, cluster.len(), "cli-test");
        let path = dir.join("mini_trace.json");
        std::fs::write(&path, trace.to_json()).unwrap();
        path
    }

    #[test]
    fn end_to_end_generate_run_compare() {
        let dir = std::env::temp_dir().join("tetrium_cli_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("scenario.json");
        dispatch(&svp(
            &[
                "generate", "--kind", "bigdata", "--sites", "ec2-8", "--jobs", "3", "--seed", "5",
                "--scale", "2.0", "--out",
            ],
            &[&path],
        ))
        .unwrap();
        dispatch(&svp(
            &["run", "--scheduler", "tetrium", "--scenario"],
            &[&path],
        ))
        .unwrap();
        dispatch(&svp(
            &["run", "--scheduler", "swag", "--scenario"],
            &[&path],
        ))
        .unwrap();
        let trace_out = dir.join("trace.json");
        dispatch(&svp(
            &["run", "--scenario"],
            &[&path, Path::new("--chrome-trace"), &trace_out],
        ))
        .unwrap();
        let body = std::fs::read_to_string(&trace_out).unwrap();
        assert!(body.starts_with('['), "chrome trace must be a JSON array");
        let obs_out = dir.join("obs.json");
        dispatch(&svp(
            &["run", "--scenario"],
            &[&path, Path::new("--obs"), &obs_out],
        ))
        .unwrap();
        let body = std::fs::read_to_string(&obs_out).unwrap();
        assert!(
            body.contains("tetrium-obs/v1"),
            "obs file carries schema tag"
        );
        assert!(
            body.contains("wall_ms"),
            "CLI obs output includes wall latency"
        );
        // A mid-run dynamics timeline loads, validates and runs end to end.
        let dyn_path = dir.join("dynamics.json");
        std::fs::write(
            &dyn_path,
            r#"[
                {"site": 0, "at_time": 30.0, "change": {"kind": "capacity", "keep": 0.5}},
                {"site": 0, "at_time": 200.0, "change": {"kind": "recover"}}
            ]"#,
        )
        .unwrap();
        dispatch(&svp(
            &["run", "--scenario"],
            &[&path, Path::new("--dynamics"), &dyn_path],
        ))
        .unwrap();
        // Out-of-range sites are rejected at load time, not mid-run.
        std::fs::write(
            &dyn_path,
            r#"[{"site": 99, "at_time": 1.0, "change": {"kind": "outage"}}]"#,
        )
        .unwrap();
        let err = dispatch(&svp(
            &["run", "--scenario"],
            &[&path, Path::new("--dynamics"), &dyn_path],
        ))
        .unwrap_err();
        assert!(err.contains("out of range"), "err: {err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ingest_and_trace_replay_with_otel_export() {
        let dir = std::env::temp_dir().join("tetrium_cli_ingest_test");
        let _ = std::fs::create_dir_all(&dir);
        let trace_path = write_mini_trace(&dir);
        // ingest: validation gate + scenario freeze.
        let scenario_out = dir.join("from_trace.json");
        dispatch(&svp(
            &["ingest", "--sites", "ec2-8", "--trace"],
            &[&trace_path, Path::new("--out"), &scenario_out],
        ))
        .unwrap();
        assert!(Scenario::load(&scenario_out).is_ok());
        // Self-profiling never drifts: the trace checked against its own
        // profile passes.
        dispatch(&svp(
            &["ingest", "--sites", "ec2-8", "--trace"],
            &[&trace_path, Path::new("--profile"), &trace_path],
        ))
        .unwrap();
        // run --trace replays the raw trace directly, with OTel export.
        let otel_out = dir.join("spans.json");
        dispatch(&svp(
            &["run", "--sites", "ec2-8", "--trace"],
            &[&trace_path, Path::new("--obs-otel"), &otel_out],
        ))
        .unwrap();
        let spans: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&otel_out).unwrap()).unwrap();
        assert!(spans["resourceSpans"][0]["scopeSpans"][0]["spans"]
            .as_array()
            .is_some_and(|s| s.len() > 1));
        // A malformed trace is rejected with row-addressed violations, not
        // a panic, and --scenario/--trace exclusivity is enforced.
        let bad = dir.join("bad_trace.json");
        std::fs::write(
            &bad,
            r#"{"format": "tetrium-trace/v1", "sites": 8, "rows": [
                {"job": "x", "submit_s": -1.0, "stage": 0, "deps": [], "kind": "mop",
                 "tasks": 0, "task_s": 1.0, "input_gb_by_site": [1.0], "output_gb": 1.0}
            ]}"#,
        )
        .unwrap();
        let err = dispatch(&svp(&["ingest", "--sites", "ec2-8", "--trace"], &[&bad])).unwrap_err();
        assert!(err.contains("row 1"), "err: {err}");
        assert!(err.contains("violation"), "err: {err}");
        let err = dispatch(&svp(
            &["run", "--sites", "ec2-8", "--scenario", "x.json", "--trace"],
            &[&trace_path],
        ))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "err: {err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn serve_runs_scenario_through_the_async_front_end() {
        let dir = std::env::temp_dir().join("tetrium_cli_serve_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("scenario.json");
        dispatch(&svp(
            &[
                "generate", "--kind", "bigdata", "--sites", "ec2-8", "--jobs", "4", "--seed", "5",
                "--scale", "2.0", "--out",
            ],
            &[&path],
        ))
        .unwrap();
        let json_out = dir.join("serve.json");
        let otel_out = dir.join("serve_spans.json");
        dispatch(&svp(
            &["serve", "--shards", "2", "--scenario"],
            &[
                &path,
                Path::new("--json"),
                &json_out,
                Path::new("--obs-otel"),
                &otel_out,
            ],
        ))
        .unwrap();
        let body = std::fs::read_to_string(&json_out).unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["total_jobs"], 4);
        assert_eq!(v["shards"].as_array().unwrap().len(), 2);
        // The span tap exported one resource per shard that ran tasks.
        let spans: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&otel_out).unwrap()).unwrap();
        assert!(!spans["resourceSpans"].as_array().unwrap().is_empty());
        assert!(dispatch(&svp(&["serve", "--shards", "0", "--scenario"], &[&path])).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(dispatch(&sv(&["frobnicate"])).is_err());
        assert!(dispatch(&sv(&["generate", "--kind", "nope"])).is_err());
        assert!(dispatch(&sv(&["run", "--scenario", "/nonexistent.json"])).is_err());
        assert!(dispatch(&sv(&["run"])).is_err());
        assert!(scheduler_kind("alien", 1.0, 1.0, PlanCacheMode::Off).is_err());
        assert!(cluster_preset("mars", 0).is_err());
        assert!(plan_cache_mode("sometimes").is_err());
    }

    #[cfg(unix)]
    #[test]
    fn non_utf8_output_paths_are_not_a_panic() {
        use std::os::unix::ffi::OsStringExt;
        let dir = std::env::temp_dir().join("tetrium_cli_nonutf8_test");
        let _ = std::fs::create_dir_all(&dir);
        let mut bytes = dir.as_os_str().to_os_string().into_vec();
        bytes.extend(*b"/scen-");
        bytes.extend([0xff, 0xfe]);
        bytes.extend(*b".json");
        let weird = OsString::from_vec(bytes);
        let mut argv = sv(&[
            "generate", "--kind", "bigdata", "--sites", "ec2-8", "--jobs", "2", "--seed", "5",
            "--scale", "2.0", "--out",
        ]);
        argv.push(weird.clone());
        // The non-UTF-8 path is threaded through as a Path and written.
        dispatch(&argv).unwrap();
        assert!(Path::new(&weird).exists());
        // A non-UTF-8 value where text is required errors instead of
        // panicking.
        let mut argv = sv(&["run", "--scenario"]);
        argv.push(weird.clone());
        argv.push(OsString::from("--scheduler"));
        argv.push(OsString::from_vec(vec![0xff]));
        let err = dispatch(&argv).unwrap_err();
        assert!(err.contains("not valid UTF-8"), "err: {err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn custom_knobs_build_custom_scheduler() {
        let k = scheduler_kind("tetrium", 0.5, 1.0, PlanCacheMode::Off).unwrap();
        assert!(matches!(k, SchedulerKind::TetriumWith(_)));
        let k = scheduler_kind("tetrium", 1.0, 1.0, PlanCacheMode::Off).unwrap();
        assert!(matches!(k, SchedulerKind::Tetrium));
        // A non-default plan-cache mode forces the custom config path.
        let k = scheduler_kind("tetrium", 1.0, 1.0, PlanCacheMode::Full).unwrap();
        let SchedulerKind::TetriumWith(cfg) = k else {
            panic!("expected custom config");
        };
        assert_eq!(cfg.plan_cache, PlanCacheMode::Full);
    }
}
