//! Subcommand implementations: generate / run / compare / serve.

use crate::args::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrium::cluster::Cluster;
use tetrium::core::{PlanCacheMode, TetriumConfig, WanKnob};
use tetrium::sim::EngineConfig;
use tetrium::workload::{
    bigdata_like_jobs, tpcds_like_jobs, trace_like_jobs, Scenario, TraceParams,
};
use tetrium::{run_workload, run_workload_dynamic, SchedulerKind};

/// Help text printed on argument errors.
pub const USAGE: &str = "\
usage:
  tetrium-cli generate --kind trace|tpcds|bigdata --sites ec2-8|ec2-30|trace-50
                       [--jobs N] [--seed S] [--interarrival SECS] [--scale GB]
                       --out scenario.json
  tetrium-cli run      --scenario scenario.json
                       [--scheduler tetrium|in-place|iridium|centralized|tetris|swag]
                       [--rho R] [--epsilon E] [--seed S] [--json out.json]
                       [--plan-cache off|exact|full]
                       [--trace chrome_trace.json] [--obs obs.json]
                       [--dynamics timeline.json]
  tetrium-cli compare  --scenario scenario.json [--seed S]
  tetrium-cli serve    --scenario scenario.json [--shards N]
                       [--scheduler tetrium|in-place|iridium|centralized|tetris|swag]
                       [--rho R] [--epsilon E] [--seed S] [--json out.json]";

/// Routes a command line to its subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = argv.split_first().ok_or("no subcommand given")?;
    match cmd.as_str() {
        "generate" => generate(&Args::parse(rest)?),
        "run" => run(&Args::parse(rest)?),
        "compare" => compare(&Args::parse(rest)?),
        "serve" => serve(&Args::parse(rest)?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn cluster_preset(name: &str, seed: u64) -> Result<Cluster, String> {
    match name {
        "ec2-8" => Ok(tetrium::cluster::ec2_eight_regions()),
        "ec2-30" => Ok(tetrium::cluster::ec2_thirty_instances()),
        "trace-50" => {
            let mut rng = StdRng::seed_from_u64(seed);
            Ok(tetrium::cluster::trace_fifty_sites(&mut rng))
        }
        other => Err(format!(
            "unknown site preset '{other}' (ec2-8, ec2-30, trace-50)"
        )),
    }
}

fn plan_cache_mode(name: &str) -> Result<PlanCacheMode, String> {
    match name {
        "off" => Ok(PlanCacheMode::Off),
        "exact" => Ok(PlanCacheMode::Exact),
        "full" => Ok(PlanCacheMode::Full),
        other => Err(format!(
            "unknown plan-cache mode '{other}' (off, exact, full)"
        )),
    }
}

fn scheduler_kind(
    name: &str,
    rho: f64,
    epsilon: f64,
    plan_cache: PlanCacheMode,
) -> Result<SchedulerKind, String> {
    let custom = rho < 1.0 || epsilon < 1.0 || plan_cache != PlanCacheMode::Off;
    match name {
        "tetrium" if !custom => Ok(SchedulerKind::Tetrium),
        "tetrium" => Ok(SchedulerKind::TetriumWith(TetriumConfig {
            wan: WanKnob::new(rho),
            epsilon,
            plan_cache,
            ..TetriumConfig::default()
        })),
        "in-place" => Ok(SchedulerKind::InPlace),
        "iridium" => Ok(SchedulerKind::Iridium),
        "centralized" => Ok(SchedulerKind::Centralized),
        "tetris" => Ok(SchedulerKind::Tetris),
        "swag" => Ok(SchedulerKind::Swag),
        other => Err(format!("unknown scheduler '{other}'")),
    }
}

fn generate(args: &Args) -> Result<(), String> {
    args.allow_only(&[
        "kind",
        "sites",
        "jobs",
        "seed",
        "interarrival",
        "scale",
        "out",
    ])?;
    let kind = args.require("kind")?;
    let sites = args.require("sites")?;
    let out = args.require("out")?;
    let jobs_n: usize = args.get_or("jobs", 12)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let interarrival: f64 = args.get_or("interarrival", 30.0)?;
    let scale: f64 = args.get_or("scale", 10.0)?;

    let cluster = cluster_preset(sites, seed)?;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let jobs = match kind {
        "trace" => {
            let params = TraceParams {
                mean_interarrival_secs: interarrival,
                median_input_gb: scale,
                ..TraceParams::default()
            };
            trace_like_jobs(&cluster, jobs_n, &params, &mut rng)
        }
        "tpcds" => tpcds_like_jobs(&cluster, jobs_n, interarrival, scale, &mut rng),
        "bigdata" => bigdata_like_jobs(&cluster, jobs_n, interarrival, scale, &mut rng),
        other => return Err(format!("unknown workload kind '{other}'")),
    };
    let description = format!(
        "kind={kind} sites={sites} jobs={jobs_n} seed={seed} interarrival={interarrival} scale={scale}"
    );
    let scenario = Scenario::new(description, cluster, jobs).map_err(|e| e.to_string())?;
    scenario.save(out).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} jobs, {} sites, {:.1} GB total input",
        scenario.jobs.len(),
        scenario.cluster.len(),
        scenario.jobs.iter().map(|j| j.input_gb()).sum::<f64>()
    );
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    args.allow_only(&[
        "scenario",
        "scheduler",
        "rho",
        "epsilon",
        "seed",
        "json",
        "plan-cache",
        "trace",
        "obs",
        "dynamics",
    ])?;
    let scenario = Scenario::load(args.require("scenario")?).map_err(|e| e.to_string())?;
    let rho: f64 = args.get_or("rho", 1.0)?;
    let epsilon: f64 = args.get_or("epsilon", 1.0)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let plan_cache = plan_cache_mode(args.get("plan-cache").unwrap_or("off"))?;
    let kind = scheduler_kind(
        args.get("scheduler").unwrap_or("tetrium"),
        rho,
        epsilon,
        plan_cache,
    )?;
    let dynamics = args
        .get("dynamics")
        .map(|path| load_dynamics(path, &scenario.cluster))
        .transpose()?;

    let mut cfg = EngineConfig::trace_like(seed);
    cfg.record_trace = args.get("trace").is_some();
    cfg.record_obs = args.get("obs").is_some();
    let report = match dynamics {
        Some(timeline) => {
            run_workload_dynamic(scenario.cluster, scenario.jobs, kind, cfg, timeline)
        }
        None => run_workload(scenario.cluster, scenario.jobs, kind, cfg),
    }
    .map_err(|e| e.to_string())?;

    println!(
        "{}: {} jobs, avg response {:.1} s, p90 {:.1} s, WAN {:.1} GB, makespan {:.1} s",
        report.scheduler,
        report.jobs.len(),
        report.avg_response(),
        report.response_percentile(0.9),
        report.total_wan_gb,
        report.makespan
    );
    for j in &report.jobs {
        println!(
            "  {:<12} arrival {:>8.1}  response {:>8.1} s  wan {:>7.2} GB  stages {}",
            j.name, j.arrival, j.response, j.wan_gb, j.num_stages
        );
    }
    if let Some(path) = args.get("obs") {
        let obs = report.obs.as_ref().expect("record_obs was set");
        print_obs_summary(obs, report.makespan);
        std::fs::write(
            path,
            serde_json::to_string_pretty(&obs.to_json(true)).unwrap(),
        )
        .map_err(|e| e.to_string())?;
        println!("wrote {path} (schema tetrium-obs/v1)");
    }
    if let Some(path) = args.get("trace") {
        std::fs::write(path, tetrium::metrics::chrome_trace(&report.trace))
            .map_err(|e| e.to_string())?;
        println!("wrote {path} (load in chrome://tracing or Perfetto)");
    }
    if let Some(path) = args.get("json") {
        let rows: Vec<serde_json::Value> = report
            .jobs
            .iter()
            .map(|j| {
                serde_json::json!({
                    "id": j.id.index(), "name": j.name, "arrival_s": j.arrival,
                    "response_s": j.response, "wan_gb": j.wan_gb,
                })
            })
            .collect();
        let v = serde_json::json!({
            "scheduler": report.scheduler,
            "avg_response_s": report.avg_response(),
            "wan_gb": report.total_wan_gb,
            "makespan_s": report.makespan,
            "jobs": rows,
        });
        std::fs::write(path, serde_json::to_string_pretty(&v).unwrap())
            .map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Loads and validates a mid-run dynamics timeline (a JSON array of
/// `{"site": N, "at_time": S, "change": {"kind": ...}}` events).
fn load_dynamics(
    path: &str,
    cluster: &Cluster,
) -> Result<tetrium::cluster::DynamicsTimeline, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read dynamics {path}: {e}"))?;
    let timeline: tetrium::cluster::DynamicsTimeline =
        serde_json::from_str(&body).map_err(|e| format!("bad dynamics {path}: {e}"))?;
    timeline
        .validate_for(cluster)
        .map_err(|e| format!("bad dynamics {path}: {e}"))?;
    Ok(timeline)
}

/// Console digest of a run's observability record: per-site occupancy,
/// where attempt time went, and how the scheduler behaved.
fn print_obs_summary(obs: &tetrium::obs::ObsReport, makespan: f64) {
    println!("\nobservability summary (over makespan {makespan:.1} s)");
    println!(
        "{:<6} {:>6} {:>12} {:>12}",
        "site", "slots", "busy (s)", "util"
    );
    let busy = obs.busy_secs(makespan);
    let util = obs.utilization(makespan);
    for (i, (b, u)) in busy.iter().zip(&util).enumerate() {
        println!("s{i:<5} {:>6} {b:>12.1} {u:>12.3}", obs.slots[i]);
    }
    let (fetch, compute) = obs.fetch_compute_split();
    let total = fetch + compute;
    let pct = |x: f64| if total > 0.0 { 100.0 * x / total } else { 0.0 };
    println!(
        "attempt time: fetch {fetch:.1} s ({:.0}%), compute {compute:.1} s ({:.0}%)",
        pct(fetch),
        pct(compute)
    );
    println!(
        "scheduler: {} instances, wall p50 {:.2} ms / p99 {:.2} ms",
        obs.sched.len(),
        obs.sched_wall_percentile(0.5) * 1e3,
        obs.sched_wall_percentile(0.99) * 1e3
    );
    println!(
        "wan: {:.1} GB net over {} active (src,dst) pairs",
        obs.total_wan_gb(),
        obs.active_pairs()
    );
    let c = obs.counters;
    println!(
        "events: {} copies launched, {} won, {} attempts cancelled, {} failures, {} capacity drops",
        c.copies_launched, c.copies_won, c.attempts_cancelled, c.task_failures, c.capacity_drops
    );
    if c.dynamics_events > 0 {
        println!(
            "dynamics: {} timeline events, {} site outages, {} attempts retried",
            c.dynamics_events, c.site_outages, c.dynamics_retries
        );
    }
}

/// Runs a scenario through the `tetrium-serve` front end: jobs are
/// submitted over the async submission channel, sharded by job id, and
/// the merged shard reports are printed. The service is started held and
/// opened only after every submission so each shard sees exactly one
/// epoch — that pins the epoch partition and makes the output
/// reproducible (see the `tetrium-serve` determinism contract).
fn serve(args: &Args) -> Result<(), String> {
    args.allow_only(&[
        "scenario",
        "shards",
        "scheduler",
        "rho",
        "epsilon",
        "seed",
        "json",
        "plan-cache",
    ])?;
    let scenario = Scenario::load(args.require("scenario")?).map_err(|e| e.to_string())?;
    let shards: usize = args.get_or("shards", 2)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let rho: f64 = args.get_or("rho", 1.0)?;
    let epsilon: f64 = args.get_or("epsilon", 1.0)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let plan_cache = plan_cache_mode(args.get("plan-cache").unwrap_or("off"))?;
    let kind = scheduler_kind(
        args.get("scheduler").unwrap_or("tetrium"),
        rho,
        epsilon,
        plan_cache,
    )?;
    let cfg = tetrium_serve::ServeConfig {
        shards,
        scheduler: kind,
        engine: EngineConfig::trace_like(seed),
        ..tetrium_serve::ServeConfig::default()
    };
    let n_jobs = scenario.jobs.len();
    let rt = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .map_err(|e| format!("cannot build runtime: {e}"))?;
    let (report, observed_finished) = rt.block_on(async {
        let svc = tetrium_serve::TetriumService::start_held(&scenario.cluster, &cfg);
        let mut events = svc.subscribe();
        let counter = tokio::spawn(async move {
            let mut finished = 0usize;
            loop {
                use tokio::sync::broadcast::error::RecvError;
                match events.recv().await {
                    Ok(tetrium_serve::JobEvent::Finished { .. }) => finished += 1,
                    Ok(_) => {}
                    Err(RecvError::Lagged(_)) => {}
                    Err(RecvError::Closed) => break,
                }
            }
            finished
        });
        for job in scenario.jobs {
            svc.submit(job).await.map_err(|e| e.to_string())?;
        }
        svc.open();
        let report = svc.join().await.map_err(|e| e.to_string())?;
        let finished = counter
            .await
            .map_err(|_| "event counter lost".to_string())?;
        Ok::<_, String>((report, finished))
    })?;
    println!(
        "serve: {shards} shard(s), {n_jobs} job(s) submitted, {observed_finished} Finished event(s) observed"
    );
    for s in &report.shards {
        println!(
            "  shard {}: {:>3} jobs, makespan {:>8.1} s, WAN {:>7.1} GB",
            s.shard,
            s.report.jobs.len(),
            s.report.makespan,
            s.report.total_wan_gb
        );
    }
    println!(
        "total: {} jobs, avg response {:.1} s, max makespan {:.1} s, WAN {:.1} GB",
        report.total_jobs(),
        report.avg_response(),
        report.makespan(),
        report.total_wan_gb()
    );
    if let Some(path) = args.get("json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&report.to_json()).unwrap(),
        )
        .map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn compare(args: &Args) -> Result<(), String> {
    args.allow_only(&["scenario", "seed"])?;
    let scenario = Scenario::load(args.require("scenario")?).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0)?;
    println!(
        "{:<13} {:>10} {:>10} {:>10} {:>10}",
        "scheduler", "avg (s)", "p90 (s)", "WAN (GB)", "makespan"
    );
    for kind in [
        SchedulerKind::Tetrium,
        SchedulerKind::Iridium,
        SchedulerKind::InPlace,
        SchedulerKind::Swag,
        SchedulerKind::Tetris,
        SchedulerKind::Centralized,
    ] {
        let report = run_workload(
            scenario.cluster.clone(),
            scenario.jobs.clone(),
            kind,
            EngineConfig::trace_like(seed),
        )
        .map_err(|e| e.to_string())?;
        println!(
            "{:<13} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            report.scheduler,
            report.avg_response(),
            report.response_percentile(0.9),
            report.total_wan_gb,
            report.makespan
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn end_to_end_generate_run_compare() {
        let dir = std::env::temp_dir().join("tetrium_cli_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("scenario.json");
        let out = path.to_str().unwrap();
        dispatch(&sv(&[
            "generate", "--kind", "bigdata", "--sites", "ec2-8", "--jobs", "3", "--seed", "5",
            "--scale", "2.0", "--out", out,
        ]))
        .unwrap();
        dispatch(&sv(&["run", "--scenario", out, "--scheduler", "tetrium"])).unwrap();
        dispatch(&sv(&["run", "--scenario", out, "--scheduler", "swag"])).unwrap();
        let trace_out = dir.join("trace.json");
        dispatch(&sv(&[
            "run",
            "--scenario",
            out,
            "--trace",
            trace_out.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&trace_out).unwrap();
        assert!(body.starts_with('['), "chrome trace must be a JSON array");
        let obs_out = dir.join("obs.json");
        dispatch(&sv(&[
            "run",
            "--scenario",
            out,
            "--obs",
            obs_out.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&obs_out).unwrap();
        assert!(
            body.contains("tetrium-obs/v1"),
            "obs file carries schema tag"
        );
        assert!(
            body.contains("wall_ms"),
            "CLI obs output includes wall latency"
        );
        // A mid-run dynamics timeline loads, validates and runs end to end.
        let dyn_path = dir.join("dynamics.json");
        std::fs::write(
            &dyn_path,
            r#"[
                {"site": 0, "at_time": 30.0, "change": {"kind": "capacity", "keep": 0.5}},
                {"site": 0, "at_time": 200.0, "change": {"kind": "recover"}}
            ]"#,
        )
        .unwrap();
        dispatch(&sv(&[
            "run",
            "--scenario",
            out,
            "--dynamics",
            dyn_path.to_str().unwrap(),
        ]))
        .unwrap();
        // Out-of-range sites are rejected at load time, not mid-run.
        std::fs::write(
            &dyn_path,
            r#"[{"site": 99, "at_time": 1.0, "change": {"kind": "outage"}}]"#,
        )
        .unwrap();
        let err = dispatch(&sv(&[
            "run",
            "--scenario",
            out,
            "--dynamics",
            dyn_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("out of range"), "err: {err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn serve_runs_scenario_through_the_async_front_end() {
        let dir = std::env::temp_dir().join("tetrium_cli_serve_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("scenario.json");
        let out = path.to_str().unwrap();
        dispatch(&sv(&[
            "generate", "--kind", "bigdata", "--sites", "ec2-8", "--jobs", "4", "--seed", "5",
            "--scale", "2.0", "--out", out,
        ]))
        .unwrap();
        let json_out = dir.join("serve.json");
        dispatch(&sv(&[
            "serve",
            "--scenario",
            out,
            "--shards",
            "2",
            "--json",
            json_out.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&json_out).unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["total_jobs"], 4);
        assert_eq!(v["shards"].as_array().unwrap().len(), 2);
        assert!(dispatch(&sv(&["serve", "--scenario", out, "--shards", "0"])).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(dispatch(&sv(&["frobnicate"])).is_err());
        assert!(dispatch(&sv(&["generate", "--kind", "nope"])).is_err());
        assert!(dispatch(&sv(&["run", "--scenario", "/nonexistent.json"])).is_err());
        assert!(scheduler_kind("alien", 1.0, 1.0, PlanCacheMode::Off).is_err());
        assert!(cluster_preset("mars", 0).is_err());
        assert!(plan_cache_mode("sometimes").is_err());
    }

    #[test]
    fn custom_knobs_build_custom_scheduler() {
        let k = scheduler_kind("tetrium", 0.5, 1.0, PlanCacheMode::Off).unwrap();
        assert!(matches!(k, SchedulerKind::TetriumWith(_)));
        let k = scheduler_kind("tetrium", 1.0, 1.0, PlanCacheMode::Off).unwrap();
        assert!(matches!(k, SchedulerKind::Tetrium));
        // A non-default plan-cache mode forces the custom config path.
        let k = scheduler_kind("tetrium", 1.0, 1.0, PlanCacheMode::Full).unwrap();
        let SchedulerKind::TetriumWith(cfg) = k else {
            panic!("expected custom config");
        };
        assert_eq!(cfg.plan_cache, PlanCacheMode::Full);
    }
}
