//! Totally ordered discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events the engine schedules on its own heap.
///
/// Flow completions are *not* heap events: their times move whenever max-min
/// rates change, so the engine queries [`tetrium_net::FlowSim`] for the next
/// completion instead of enqueuing stale entries.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A job (by workload index) arrives at the global manager.
    JobArrival(usize),
    /// A task finished its compute phase: `(job, stage, task)`.
    ComputeDone(usize, usize, usize),
    /// A speculative copy finished computing: `(job, stage, task, copy id)`.
    CopyComputeDone(usize, usize, usize, u64),
    /// A batched scheduling instance fires.
    SchedulingPoint,
    /// A dynamics-timeline event (by index into the engine's timeline —
    /// capacity drop, link change, outage or recovery) takes effect.
    Dynamics(usize),
}

/// A heap entry ordered by `(time, seq)`.
///
/// `seq` is a monotonically increasing tie-breaker so simultaneous events
/// process in insertion order, which keeps runs deterministic.
#[derive(Debug, Clone)]
struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn push(&mut self, time: f64, event: Event) {
        assert!(time.is_finite(), "event time must be finite");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Whether no events are pending.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, Event::SchedulingPoint);
        q.push(1.0, Event::JobArrival(0));
        q.push(2.0, Event::ComputeDone(0, 0, 0));
        assert_eq!(q.pop().unwrap().0, 1.0);
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert_eq!(q.pop().unwrap().0, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::JobArrival(7));
        q.push(1.0, Event::JobArrival(9));
        assert_eq!(q.pop().unwrap().1, Event::JobArrival(7));
        assert_eq!(q.pop().unwrap().1, Event::JobArrival(9));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(5.5, Event::SchedulingPoint);
        assert_eq!(q.peek_time(), Some(5.5));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
