//! The scheduler interface: snapshots in, task assignments out.

use tetrium_cluster::SiteId;
use tetrium_jobs::{JobId, StageKind};

/// Point-in-time view of one site's capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteState {
    /// Current total slots (after any capacity drops).
    pub slots: usize,
    /// Slots not currently occupied by a task.
    pub free_slots: usize,
    /// Current uplink bandwidth in GB/s.
    pub up_gbps: f64,
    /// Current downlink bandwidth in GB/s.
    pub down_gbps: f64,
}

/// Lifecycle phase of a task as seen by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPhase {
    /// Not yet launched; the scheduler may (re-)assign it.
    Unlaunched,
    /// Occupying a slot (fetching or computing); cannot be moved.
    Running,
    /// Finished.
    Done,
}

/// One task of a runnable stage.
#[derive(Debug, Clone)]
pub struct TaskSnapshot {
    /// Index within the stage.
    pub index: usize,
    /// Current phase.
    pub phase: TaskPhase,
    /// For map tasks: the site holding this task's input partition.
    pub input_site: Option<SiteId>,
    /// Input volume of this task in GB (partition size for map tasks, total
    /// shuffle share for reduce tasks).
    pub input_gb: f64,
    /// This task's share of the stage input (uniform unless key-skewed).
    pub share: f64,
    /// Where the task is running or ran (for `Running`/`Done`).
    pub running_site: Option<SiteId>,
}

/// A runnable stage and its tasks.
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    /// Stage index within the job.
    pub stage_index: usize,
    /// Communication pattern.
    pub kind: StageKind,
    /// Estimated mean task compute time in seconds (the scheduler's belief,
    /// which may deviate from the true mean by the configured estimation
    /// error).
    pub est_task_secs: f64,
    /// Number of tasks in the stage.
    pub num_tasks: usize,
    /// Realized input distribution of the stage (GB per site): external input
    /// for roots, materialized parent outputs otherwise.
    pub input_gb: Vec<f64>,
    /// Task states, indexed by task index.
    pub tasks: Vec<TaskSnapshot>,
}

impl StageSnapshot {
    /// Tasks the scheduler may still place.
    pub fn unlaunched(&self) -> impl Iterator<Item = &TaskSnapshot> {
        self.tasks
            .iter()
            .filter(|t| t.phase == TaskPhase::Unlaunched)
    }

    /// Number of unlaunched tasks.
    pub fn unlaunched_count(&self) -> usize {
        self.unlaunched().count()
    }
}

/// Lightweight description of one stage of a job's DAG, available for every
/// stage (not just runnable ones) so schedulers can reason about downstream
/// work (e.g. reverse planning in §3.4).
#[derive(Debug, Clone)]
pub struct StageMeta {
    /// Communication pattern.
    pub kind: StageKind,
    /// Parent stage indices.
    pub deps: Vec<usize>,
    /// Number of tasks.
    pub num_tasks: usize,
    /// Nominal mean task seconds from the job description (pre-activation
    /// stages have no refined estimate yet).
    pub task_secs: f64,
    /// Output/input volume ratio.
    pub output_ratio: f64,
    /// Whether the stage already finished.
    pub done: bool,
}

/// A job with at least one unfinished stage.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Job id.
    pub id: JobId,
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Total stages in the job's DAG.
    pub total_stages: usize,
    /// Stages not yet complete (`G_j` in §4.1).
    pub remaining_stages: usize,
    /// DAG summary of every stage, indexed by stage index.
    pub stages: Vec<StageMeta>,
    /// Stages that are currently runnable (parents finished, tasks left).
    pub runnable: Vec<StageSnapshot>,
}

impl JobSnapshot {
    /// Remaining tasks across runnable stages (the `f_i` proxy used for
    /// fairness in §4.4): unlaunched plus running.
    pub fn remaining_runnable_tasks(&self) -> usize {
        self.runnable
            .iter()
            .map(|s| {
                s.tasks
                    .iter()
                    .filter(|t| t.phase != TaskPhase::Done)
                    .count()
            })
            .sum()
    }
}

/// Point-in-time view of the whole system handed to the scheduler.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Simulation time of this scheduling instance.
    pub now: f64,
    /// Per-site capacities and free slots, indexed by site id.
    pub sites: Vec<SiteState>,
    /// Unfinished jobs, in arrival order.
    pub jobs: Vec<JobSnapshot>,
}

impl Snapshot {
    /// Total free slots across sites.
    pub fn total_free_slots(&self) -> usize {
        self.sites.iter().map(|s| s.free_slots).sum()
    }

    /// Total slots across sites.
    pub fn total_slots(&self) -> usize {
        self.sites.iter().map(|s| s.slots).sum()
    }

    /// Uplink capacities as a dense vector (GB/s).
    pub fn up_vec(&self) -> Vec<f64> {
        self.sites.iter().map(|s| s.up_gbps).collect()
    }

    /// Downlink capacities as a dense vector (GB/s).
    pub fn down_vec(&self) -> Vec<f64> {
        self.sites.iter().map(|s| s.down_gbps).collect()
    }

    /// Slot counts as a dense vector.
    pub fn slots_vec(&self) -> Vec<usize> {
        self.sites.iter().map(|s| s.slots).collect()
    }
}

/// Assignment of one unlaunched task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskAssignment {
    /// Task index within the stage.
    pub task: usize,
    /// Site the task should run at.
    pub site: SiteId,
    /// Launch priority: at each site, free slots go to the assigned task
    /// with the smallest priority value. Priorities are global across jobs,
    /// which is how job-level ordering (e.g. SRPT) reaches the dispatcher.
    pub priority: i64,
}

/// Placement decisions for one runnable stage.
#[derive(Debug, Clone)]
pub struct StagePlan {
    /// Target job.
    pub job: JobId,
    /// Stage index within the job.
    pub stage: usize,
    /// Assignments for (a subset of) the stage's unlaunched tasks.
    /// Unassigned tasks stay unlaunched until a later scheduling instance.
    pub assignments: Vec<TaskAssignment>,
}

/// A pluggable cluster scheduler.
///
/// Implementations receive a [`Snapshot`] at every scheduling instance and
/// return placements for unlaunched tasks. Assignments overwrite earlier
/// assignments of still-unlaunched tasks, which is what lets schedulers
/// re-plan queued work as conditions change (the paper's per-instance
/// re-evaluation).
///
/// `Send` is a supertrait so a boxed scheduler (and the engine holding it)
/// can move to a worker thread; schedulers are still driven from one
/// thread at a time and need no internal synchronization.
pub trait Scheduler: Send {
    /// Human-readable name used in reports.
    fn name(&self) -> &str;

    /// Produces placements for the current instant.
    fn schedule(&mut self, snapshot: &Snapshot) -> Vec<StagePlan>;

    /// Hands the scheduler an observability sink to emit planner-internal
    /// records into (e.g. Tetrium's per-instance LP/cache breakdown). The
    /// engine calls this once at construction; the default implementation
    /// drops the handle, which is correct for schedulers with nothing
    /// internal to report.
    fn attach_obs(&mut self, _obs: tetrium_obs::Obs) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(i: usize, phase: TaskPhase) -> TaskSnapshot {
        TaskSnapshot {
            index: i,
            phase,
            input_site: Some(SiteId(0)),
            input_gb: 1.0,
            share: 0.5,
            running_site: None,
        }
    }

    #[test]
    fn stage_unlaunched_filtering() {
        let s = StageSnapshot {
            stage_index: 0,
            kind: StageKind::Map,
            est_task_secs: 1.0,
            num_tasks: 2,
            input_gb: vec![2.0],
            tasks: vec![task(0, TaskPhase::Unlaunched), task(1, TaskPhase::Running)],
        };
        assert_eq!(s.unlaunched_count(), 1);
    }

    #[test]
    fn snapshot_helpers() {
        let snap = Snapshot {
            now: 0.0,
            sites: vec![
                SiteState {
                    slots: 4,
                    free_slots: 2,
                    up_gbps: 1.0,
                    down_gbps: 2.0,
                },
                SiteState {
                    slots: 8,
                    free_slots: 8,
                    up_gbps: 3.0,
                    down_gbps: 4.0,
                },
            ],
            jobs: vec![],
        };
        assert_eq!(snap.total_free_slots(), 10);
        assert_eq!(snap.total_slots(), 12);
        assert_eq!(snap.up_vec(), vec![1.0, 3.0]);
        assert_eq!(snap.down_vec(), vec![2.0, 4.0]);
        assert_eq!(snap.slots_vec(), vec![4, 8]);
    }

    #[test]
    fn remaining_tasks_counts_running_and_unlaunched() {
        let j = JobSnapshot {
            id: JobId(0),
            arrival: 0.0,
            total_stages: 2,
            remaining_stages: 2,
            stages: Vec::new(),
            runnable: vec![StageSnapshot {
                stage_index: 0,
                kind: StageKind::Map,
                est_task_secs: 1.0,
                num_tasks: 3,
                input_gb: vec![1.0],
                tasks: vec![
                    task(0, TaskPhase::Unlaunched),
                    task(1, TaskPhase::Running),
                    task(2, TaskPhase::Done),
                ],
            }],
        };
        assert_eq!(j.remaining_runnable_tasks(), 2);
    }
}
