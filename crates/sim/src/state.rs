//! Runtime state of jobs, stages and tasks inside the engine.

use std::sync::Arc;
use tetrium_cluster::{DataDistribution, SiteId};
use tetrium_jobs::{largest_remainder_round, Job, StageKind};
use tetrium_net::FlowKey;

/// Lifecycle of a task inside the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskState {
    /// Waiting for an assignment and a free slot.
    Unlaunched,
    /// Occupying a slot while its input flows drain.
    Fetching {
        /// Flows currently in flight.
        pending: Vec<FlowKey>,
        /// Fetches not yet opened `(source, GB)`; drained as in-flight
        /// flows finish, bounding per-task fetch concurrency like a real
        /// shuffle client.
        queued: Vec<(SiteId, f64)>,
    },
    /// Occupying a slot while computing; finishes at the stored time.
    Computing {
        /// Absolute completion time.
        done_at: f64,
    },
    /// Finished.
    Done,
}

/// Runtime record of one task.
#[derive(Debug, Clone)]
pub struct TaskRt {
    /// For map tasks, the site holding the input partition.
    pub input_site: Option<SiteId>,
    /// Input volume in GB (partition size for map; total shuffle share for
    /// reduce).
    pub input_gb: f64,
    /// Share of the stage input (reduce key skew; uniform otherwise).
    pub share: f64,
    /// Scheduler-chosen site (None until first assigned).
    pub assigned_site: Option<SiteId>,
    /// Scheduler-chosen launch priority (lower launches first).
    pub priority: i64,
    /// Current lifecycle state.
    pub state: TaskState,
    /// Site the task is or was running at.
    pub run_site: Option<SiteId>,
    /// Actual compute seconds (sampled at launch).
    pub actual_secs: Option<f64>,
    /// When the task's compute phase started (for speculation).
    pub compute_started: Option<f64>,
    /// When the task was launched into a slot (for trace recording).
    pub launched_at: Option<f64>,
    /// Attempts of this task lost so far (failure injection or site
    /// outage); bounded by `EngineConfig::max_task_retries`.
    pub retries: usize,
}

/// Stage status within the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Some parent stage has not finished.
    Blocked,
    /// Parents finished; tasks may be scheduled.
    Runnable,
    /// All tasks finished.
    Done,
}

/// Runtime record of one stage.
#[derive(Debug)]
pub struct StageRt {
    /// Current status.
    pub status: StageStatus,
    /// Task records (empty until the stage activates).
    pub tasks: Vec<TaskRt>,
    /// Realized input distribution (GB per site), set at activation. Held
    /// behind `Arc` so the launch hot path shares it by reference — cloning
    /// the distribution itself per task is a type error, not a perf bug
    /// waiting to recur.
    pub input: Option<Arc<DataDistribution>>,
    /// Output accumulated at the sites where tasks ran (GB per site).
    pub output: DataDistribution,
    /// Tasks finished so far.
    pub done_tasks: usize,
    /// Estimated mean task seconds shown to the scheduler (true mean plus
    /// estimation error, sampled once per stage).
    pub est_task_secs: f64,
    /// Time the stage became runnable.
    pub activated_at: Option<f64>,
    /// Time the stage finished.
    pub finished_at: Option<f64>,
}

/// A live speculative copy of a running task (§8's straggler mitigation).
#[derive(Debug, Clone)]
pub struct CopyRt {
    /// Monotone id distinguishing re-launched copies in stale events.
    pub id: u64,
    /// Site the copy occupies a slot at.
    pub site: SiteId,
    /// Copy input flows still in flight.
    pub pending: Vec<FlowKey>,
    /// Fetches not yet opened.
    pub queued: Vec<(SiteId, f64)>,
    /// Whether the copy reached its compute phase.
    pub computing: bool,
    /// Sampled compute duration of the copy.
    pub secs: f64,
    /// Time the copy occupied its slot (the copy's own timeline, so a
    /// winning copy's trace does not mix with the original's).
    pub launched_at: f64,
    /// Time the copy's compute phase began, once it has.
    pub compute_started: Option<f64>,
}

/// Runtime record of one job.
#[derive(Debug)]
pub struct JobRt {
    /// The static description.
    pub job: Job,
    /// Per-stage runtime state.
    pub stages: Vec<StageRt>,
    /// Stages finished so far.
    pub done_stages: usize,
    /// Whether the job has arrived.
    pub arrived: bool,
    /// Completion time, when finished.
    pub finished_at: Option<f64>,
    /// WAN bytes (GB) this job moved across sites.
    pub wan_gb: f64,
}

impl JobRt {
    /// Creates runtime state for a job (stages all blocked/runnable later).
    pub fn new(job: Job, n_sites: usize) -> Self {
        let stages = job
            .stages
            .iter()
            .map(|s| StageRt {
                status: StageStatus::Blocked,
                tasks: Vec::new(),
                input: None,
                output: DataDistribution::zeros(n_sites),
                done_tasks: 0,
                est_task_secs: s.task_secs,
                activated_at: None,
                finished_at: None,
            })
            .collect();
        Self {
            job,
            stages,
            done_stages: 0,
            arrived: false,
            finished_at: None,
            wan_gb: 0.0,
        }
    }

    /// Whether every stage has finished.
    pub fn is_finished(&self) -> bool {
        self.done_stages == self.stages.len()
    }

    /// Stage indices whose parents are all done but which are still blocked —
    /// i.e. stages ready to activate.
    pub fn activatable_stages(&self) -> Vec<usize> {
        (0..self.stages.len())
            .filter(|&i| {
                self.stages[i].status == StageStatus::Blocked
                    && self.job.stages[i]
                        .deps
                        .iter()
                        .all(|&d| self.stages[d].status == StageStatus::Done)
            })
            .collect()
    }

    /// Realized input distribution of stage `i`: the external input for
    /// roots, or the summed realized outputs of its parents.
    pub fn realized_input(&self, i: usize, n_sites: usize) -> DataDistribution {
        let spec = &self.job.stages[i];
        if let Some(input) = &spec.input {
            return input.clone();
        }
        let mut acc = vec![0.0; n_sites];
        for &d in &spec.deps {
            for (s, v) in acc.iter_mut().enumerate() {
                *v += self.stages[d].output.at(SiteId(s));
            }
        }
        DataDistribution::new(acc)
    }
}

/// Builds the task records for a stage activating with realized `input`.
///
/// Map stages split the input into `num_tasks` partitions homed at sites in
/// proportion to the input distribution: every site holding data receives at
/// least one partition when task counts allow, remaining partitions follow
/// largest-remainder on volume, and each site's partitions share its volume
/// equally. Reduce tasks read `share_i` of every site's data; their
/// `input_gb` is the total volume they consume.
pub fn build_tasks(
    kind: StageKind,
    num_tasks: usize,
    input: &DataDistribution,
    task_share: impl Fn(usize) -> f64,
) -> Vec<TaskRt> {
    let blank = |input_site, input_gb, share| TaskRt {
        input_site,
        input_gb,
        share,
        assigned_site: None,
        priority: i64::MAX,
        state: TaskState::Unlaunched,
        run_site: None,
        actual_secs: None,
        compute_started: None,
        launched_at: None,
        retries: 0,
    };
    match kind {
        StageKind::Map => {
            let n_sites = input.len();
            let total = input.total();
            let counts = if total <= 1e-12 {
                // No data anywhere: home all partitions at site 0.
                let mut c = vec![0usize; n_sites];
                c[0] = num_tasks;
                c
            } else {
                partition_counts(input, num_tasks)
            };
            // Fold volumes of uncovered sites (possible only when tasks are
            // scarcer than data sites) into the largest covered site so data
            // is conserved.
            let mut vols: Vec<f64> = (0..n_sites).map(|s| input.at(SiteId(s))).collect();
            if let Some(target) = (0..n_sites)
                .filter(|&s| counts[s] > 0)
                .max_by(|&a, &b| vols[a].total_cmp(&vols[b]))
            {
                for s in 0..n_sites {
                    if counts[s] == 0 && vols[s] > 0.0 {
                        let v = vols[s];
                        vols[s] = 0.0;
                        vols[target] += v;
                    }
                }
            }
            let mut tasks = Vec::with_capacity(num_tasks);
            for (s, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let per = vols[s] / c as f64;
                for _ in 0..c {
                    tasks.push(blank(Some(SiteId(s)), per, 1.0 / num_tasks as f64));
                }
            }
            debug_assert_eq!(tasks.len(), num_tasks);
            tasks
        }
        StageKind::Reduce => {
            let total = input.total();
            (0..num_tasks)
                .map(|i| {
                    let share = task_share(i);
                    blank(None, total * share, share)
                })
                .collect()
        }
    }
}

/// Number of partitions homed at each site: sites with data get at least one
/// partition when `num_tasks` allows, the rest follow largest remainder.
fn partition_counts(input: &DataDistribution, num_tasks: usize) -> Vec<usize> {
    let n_sites = input.len();
    let with_data: Vec<usize> = (0..n_sites)
        .filter(|&s| input.at(SiteId(s)) > 1e-12)
        .collect();
    if num_tasks <= with_data.len() {
        // Fewer tasks than data sites: give partitions to the largest sites;
        // volumes at uncovered sites are folded into the largest covered
        // site's partitions (a modeling shortcut for pathological inputs —
        // real workloads have far more tasks than sites).
        let mut order = with_data.clone();
        order.sort_by(|&a, &b| {
            input
                .at(SiteId(b))
                .total_cmp(&input.at(SiteId(a)))
                .then(a.cmp(&b))
        });
        let mut counts = vec![0usize; n_sites];
        for &s in order.iter().take(num_tasks) {
            counts[s] = 1;
        }
        return counts;
    }
    // Reserve one partition per data site, distribute the rest by volume.
    let reserve = with_data.len();
    let fracs: Vec<f64> = (0..n_sites).map(|s| input.at(SiteId(s))).collect();
    let extra = largest_remainder_round(&fracs, num_tasks - reserve);
    let mut counts = extra;
    for &s in &with_data {
        counts[s] += 1;
    }
    // Sites without data must hold no partitions.
    for s in 0..n_sites {
        if input.at(SiteId(s)) <= 1e-12 && counts[s] > 0 {
            // Largest-remainder over zero fractions cannot assign here, but
            // guard anyway: move stray counts to the largest data site.
            let target = *with_data
                .iter()
                .max_by(|&&a, &&b| input.at(SiteId(a)).total_cmp(&input.at(SiteId(b))))
                .expect("some site has data");
            counts[target] += counts[s];
            counts[s] = 0;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_partitions_follow_data() {
        let input = DataDistribution::new(vec![20.0, 30.0, 50.0]);
        let tasks = build_tasks(StageKind::Map, 1000, &input, |_| 0.0);
        assert_eq!(tasks.len(), 1000);
        let at = |s: usize| {
            tasks
                .iter()
                .filter(|t| t.input_site == Some(SiteId(s)))
                .count()
        };
        assert_eq!(at(0), 200);
        assert_eq!(at(1), 300);
        assert_eq!(at(2), 500);
        // Volume is conserved.
        let vol: f64 = tasks.iter().map(|t| t.input_gb).sum();
        assert!((vol - 100.0).abs() < 1e-9);
    }

    #[test]
    fn every_data_site_gets_a_partition() {
        let input = DataDistribution::new(vec![0.001, 99.0, 0.999]);
        let tasks = build_tasks(StageKind::Map, 10, &input, |_| 0.0);
        for s in 0..3 {
            assert!(
                tasks.iter().any(|t| t.input_site == Some(SiteId(s))),
                "site {s} lost its data"
            );
        }
    }

    #[test]
    fn reduce_tasks_share_all_data() {
        let input = DataDistribution::new(vec![10.0, 15.0, 25.0]);
        let tasks = build_tasks(StageKind::Reduce, 500, &input, |_| 1.0 / 500.0);
        assert_eq!(tasks.len(), 500);
        assert!(tasks.iter().all(|t| t.input_site.is_none()));
        let vol: f64 = tasks.iter().map(|t| t.input_gb).sum();
        assert!((vol - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_map_stage_still_builds() {
        let input = DataDistribution::zeros(3);
        let tasks = build_tasks(StageKind::Map, 5, &input, |_| 0.0);
        assert_eq!(tasks.len(), 5);
        assert!(tasks.iter().all(|t| t.input_gb == 0.0));
    }

    #[test]
    fn fewer_tasks_than_sites_takes_largest() {
        let input = DataDistribution::new(vec![1.0, 5.0, 3.0, 2.0]);
        let tasks = build_tasks(StageKind::Map, 2, &input, |_| 0.0);
        assert_eq!(tasks.len(), 2);
        let sites: Vec<_> = tasks.iter().map(|t| t.input_site.unwrap()).collect();
        assert!(sites.contains(&SiteId(1)));
        assert!(sites.contains(&SiteId(2)));
    }
}
