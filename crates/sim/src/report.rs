//! Run outcomes: per-job records and aggregate statistics.

use tetrium_cluster::SiteId;
use tetrium_jobs::JobId;

/// One task execution record (emitted when trace recording is enabled).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTrace {
    /// Job the task belongs to.
    pub job: JobId,
    /// Stage index within the job.
    pub stage: usize,
    /// Task index within the stage.
    pub task: usize,
    /// Site the winning execution ran at.
    pub site: SiteId,
    /// Time the execution occupied a slot.
    pub launched_at: f64,
    /// Time its compute phase began (equals `launched_at` for local reads).
    pub compute_started: f64,
    /// Completion time.
    pub finished_at: f64,
    /// Whether a speculative copy produced the result.
    pub was_copy: bool,
}

impl TaskTrace {
    /// Seconds spent fetching input (slot occupied, not computing).
    pub fn fetch_secs(&self) -> f64 {
        (self.compute_started - self.launched_at).max(0.0)
    }

    /// Seconds spent computing.
    pub fn compute_secs(&self) -> f64 {
        (self.finished_at - self.compute_started).max(0.0)
    }
}

/// Outcome of one job in a finished run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job id.
    pub id: JobId,
    /// Job name (query template).
    pub name: String,
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Completion time in seconds.
    pub finished: f64,
    /// Response time (`finished - arrival`).
    pub response: f64,
    /// WAN bytes this job moved across sites, in GB.
    pub wan_gb: f64,
    /// Number of stages in the job.
    pub num_stages: usize,
    /// Total tasks across stages.
    pub total_tasks: usize,
    /// External input volume in GB.
    pub input_gb: f64,
    /// Expected intermediate volume in GB (for Fig 12a bucketing).
    pub intermediate_gb: f64,
    /// Coefficient of variation of the job's input across sites (Fig 12b).
    pub input_skew_cv: f64,
    /// Mean absolute relative estimation error over the job's stages
    /// (Fig 12d).
    pub est_error: f64,
    /// Per-stage `(activated, finished)` times in seconds, by stage index.
    pub stage_spans: Vec<(f64, f64)>,
}

impl JobOutcome {
    /// Debug-asserts that the outcome's response and WAN values are finite,
    /// catching a NaN at the source (construction) rather than deep inside
    /// a percentile sort. Release builds skip the check.
    pub fn debug_assert_finite(&self) {
        debug_assert!(
            self.response.is_finite() && self.finished.is_finite(),
            "job {:?} has non-finite response {} (finished {})",
            self.id,
            self.response,
            self.finished
        );
        debug_assert!(
            self.wan_gb.is_finite(),
            "job {:?} has non-finite wan_gb {}",
            self.id,
            self.wan_gb
        );
    }
}

/// Aggregate record of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Name of the scheduler that produced this run.
    pub scheduler: String,
    /// Per-job outcomes in job-id order.
    pub jobs: Vec<JobOutcome>,
    /// Time the last job finished.
    pub makespan: f64,
    /// Total WAN bytes moved, in GB.
    pub total_wan_gb: f64,
    /// Number of scheduling instances that invoked the scheduler.
    pub sched_invocations: usize,
    /// Total wall-clock time spent inside `Scheduler::schedule`, in seconds
    /// (the quantity of Fig 7).
    pub sched_wall_secs: f64,
    /// Speculative copies launched (0 unless speculation is enabled).
    pub copies_launched: usize,
    /// Speculative copies that finished before their original.
    pub copies_won: usize,
    /// Task attempts lost to injected failures and re-run.
    pub task_failures: usize,
    /// Mid-run dynamics-timeline events applied (capacity drops, link
    /// changes, outages, recoveries).
    pub dynamics_events: usize,
    /// Per-task execution records (empty unless trace recording is on).
    pub trace: Vec<TaskTrace>,
    /// Observability record of the run (`None` unless
    /// [`crate::EngineConfig::record_obs`] is set).
    pub obs: Option<tetrium_obs::ObsReport>,
}

impl RunReport {
    /// Mean job response time in seconds.
    pub fn avg_response(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.response).sum::<f64>() / self.jobs.len() as f64
    }

    /// Response time of the job with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the job is not in the report.
    pub fn response_of(&self, id: JobId) -> f64 {
        self.jobs
            .iter()
            .find(|j| j.id == id)
            .expect("job in report")
            .response
    }

    /// The `q`-quantile (0..=1) of response times (nearest-rank).
    pub fn response_percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.jobs.is_empty() {
            return 0.0;
        }
        // total_cmp rather than partial_cmp().unwrap(): a NaN response (a
        // bug upstream, caught by JobOutcome::debug_assert_finite in debug
        // builds) must not turn a report query into a panic.
        let mut r: Vec<f64> = self.jobs.iter().map(|j| j.response).collect();
        r.sort_by(f64::total_cmp);
        let idx = ((r.len() as f64 - 1.0) * q).round() as usize;
        r[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: usize, response: f64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            name: format!("j{id}"),
            arrival: 0.0,
            finished: response,
            response,
            wan_gb: 0.0,
            num_stages: 1,
            total_tasks: 1,
            input_gb: 1.0,
            intermediate_gb: 0.5,
            input_skew_cv: 0.0,
            est_error: 0.0,
            stage_spans: Vec::new(),
        }
    }

    fn report(rs: &[f64]) -> RunReport {
        RunReport {
            scheduler: "test".into(),
            jobs: rs.iter().enumerate().map(|(i, &r)| outcome(i, r)).collect(),
            makespan: rs.iter().cloned().fold(0.0, f64::max),
            total_wan_gb: 0.0,
            sched_invocations: 0,
            sched_wall_secs: 0.0,
            copies_launched: 0,
            copies_won: 0,
            task_failures: 0,
            dynamics_events: 0,
            trace: Vec::new(),
            obs: None,
        }
    }

    #[test]
    fn averages_and_percentiles() {
        let r = report(&[1.0, 2.0, 3.0, 10.0]);
        assert!((r.avg_response() - 4.0).abs() < 1e-12);
        assert_eq!(r.response_percentile(0.0), 1.0);
        assert_eq!(r.response_percentile(1.0), 10.0);
        assert_eq!(r.response_percentile(0.5), 3.0);
        assert_eq!(r.response_of(JobId(3)), 10.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = report(&[]);
        assert_eq!(r.avg_response(), 0.0);
        assert_eq!(r.response_percentile(0.5), 0.0);
    }

    #[test]
    fn percentile_tolerates_nan_without_panicking() {
        // total_cmp orders NaN after every number, so the finite quantiles
        // stay meaningful and nothing panics.
        let r = report(&[2.0, f64::NAN, 1.0]);
        assert_eq!(r.response_percentile(0.0), 1.0);
        assert_eq!(r.response_percentile(0.5), 2.0);
        assert!(r.response_percentile(1.0).is_nan());
    }

    #[test]
    fn finite_outcomes_pass_the_debug_assertion() {
        outcome(0, 1.5).debug_assert_finite();
    }

    #[test]
    #[should_panic(expected = "non-finite response")]
    #[cfg(debug_assertions)]
    fn nan_response_trips_the_debug_assertion() {
        outcome(0, f64::NAN).debug_assert_finite();
    }
}
