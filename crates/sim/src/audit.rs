//! Feature-gated runtime invariant auditor (DESIGN.md §10).
//!
//! With `--features audit`, the engine calls into this module after every
//! processed event, re-deriving each conservation invariant from scratch
//! and panicking with full event context on the first violation. The
//! auditor holds only *shadow* state (previous event time, previous retry
//! counts) — it never feeds anything back into the simulation, so enabling
//! it cannot change any figure or obs output, only abort a broken run.
//!
//! The invariants checked here are the engine-level half of the audit; the
//! flow-level half (bit-exact waterfill rates, link conservation, per-flow
//! byte conservation) lives in `FlowSim::audit`.

use std::collections::BTreeMap;

/// Shadow state carried across events by the auditing engine.
#[derive(Debug)]
pub(crate) struct Auditor {
    /// Events processed so far (for context dumps).
    pub events: u64,
    /// Timestamp of the previous event; event times must be monotone.
    last_time: f64,
    /// Retry count of each task at the previous event, keyed
    /// `(job, stage, task)`. A `BTreeMap` so the auditor itself iterates
    /// deterministically.
    retries: BTreeMap<(usize, usize, usize), usize>,
}

impl Auditor {
    pub fn new() -> Self {
        Self {
            events: 0,
            last_time: f64::NEG_INFINITY,
            retries: BTreeMap::new(),
        }
    }

    /// Event-time monotonicity: simulation time never moves backwards.
    pub fn check_time(&mut self, now: f64, ctx: &str) {
        assert!(
            now >= self.last_time,
            "audit[{ctx}]: event time went backwards: {} -> {now} (event #{})",
            self.last_time,
            self.events
        );
        self.last_time = now;
        self.events += 1;
    }

    /// Retry-budget monotonicity: a task's retry count never decreases and
    /// never exceeds the budget by more than the one increment that trips
    /// the fatal abort.
    pub fn check_retry(
        &mut self,
        key: (usize, usize, usize),
        retries: usize,
        max_retries: usize,
        ctx: &str,
    ) {
        let prev = self.retries.entry(key).or_insert(0);
        assert!(
            retries >= *prev,
            "audit[{ctx}]: task {key:?} retry count shrank: {} -> {retries} (event #{})",
            *prev,
            self.events
        );
        assert!(
            retries <= max_retries + 1,
            "audit[{ctx}]: task {key:?} exceeded its retry budget: {retries} > {} + 1 (event #{})",
            max_retries,
            self.events
        );
        *prev = retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_sequences_pass() {
        let mut a = Auditor::new();
        a.check_time(0.0, "t0");
        a.check_time(0.0, "t1"); // equal times are fine (same-instant burst)
        a.check_time(3.5, "t2");
        a.check_retry((0, 0, 0), 0, 2, "r0");
        a.check_retry((0, 0, 0), 1, 2, "r1");
        a.check_retry((0, 0, 0), 3, 2, "r2"); // max + 1: the fatal increment
        assert_eq!(a.events, 3);
    }

    #[test]
    #[should_panic(expected = "event time went backwards")]
    fn time_regression_panics() {
        let mut a = Auditor::new();
        a.check_time(5.0, "t0");
        a.check_time(4.0, "t1");
    }

    #[test]
    #[should_panic(expected = "retry count shrank")]
    fn retry_shrink_panics() {
        let mut a = Auditor::new();
        a.check_retry((1, 2, 3), 2, 5, "r0");
        a.check_retry((1, 2, 3), 1, 5, "r1");
    }

    #[test]
    #[should_panic(expected = "exceeded its retry budget")]
    fn retry_overrun_panics() {
        let mut a = Auditor::new();
        a.check_retry((0, 0, 0), 4, 2, "r0");
    }
}
