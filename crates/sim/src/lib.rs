//! Discrete-event execution engine for geo-distributed data-parallel jobs.
//!
//! This crate is the Spark-like substrate the reproduction runs on: it plays
//! the role the authors' modified Spark deployment and trace-driven simulator
//! play in the paper. It executes [`tetrium_jobs::Job`] DAGs over a
//! [`tetrium_cluster::Cluster`]:
//!
//! - each site has `S_x` compute slots; a launched task occupies one slot for
//!   its input fetch plus its compute time (multi-wave execution emerges when
//!   a stage has more tasks at a site than slots, §2.2),
//! - wide-area fetches are fluid flows over the max-min fair WAN model of
//!   [`tetrium_net`], so network transfer time reacts to concurrent load,
//! - a stage becomes runnable when all its parent stages finish (stage
//!   barrier), with its input distribution realized from where the parent
//!   tasks actually ran,
//! - the pluggable [`Scheduler`] is invoked at *scheduling instances* — job
//!   arrivals, stage activations and (batched, §5) slot releases — and
//!   assigns unlaunched tasks to sites with launch priorities,
//! - capacity-drop events degrade a site's slots and bandwidth mid-run
//!   (§4.2), and straggler/estimation noise reproduce the production-trace
//!   characteristics the paper simulates (§6.1, Fig 12d).
//!
//! The engine records per-job response times, WAN usage and scheduler
//! decision latency, which the harness turns into every figure of §6.

#[cfg(feature = "audit")]
mod audit;
mod config;
mod engine;
mod event;
mod report;
mod sched;
mod state;

/// Whether this build carries the runtime invariant auditor (feature
/// `audit`). Perf tooling asserts this is `false` before measuring, so the
/// gate never times auditor overhead.
pub fn audit_enabled() -> bool {
    cfg!(feature = "audit")
}

pub use config::{BatchPolicy, EngineConfig, SpeculationConfig};
pub use engine::{Engine, SimError};
pub use report::{JobOutcome, RunReport, TaskTrace};
pub use sched::{
    JobSnapshot, Scheduler, SiteState, Snapshot, StageMeta, StagePlan, StageSnapshot,
    TaskAssignment, TaskPhase, TaskSnapshot,
};
pub use tetrium_obs::{Obs, ObsReport};
