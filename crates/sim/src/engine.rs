//! The discrete-event engine: event loop, task launching, dispatch.

use crate::config::{BatchPolicy, EngineConfig, SpeculationConfig};
use crate::event::{Event, EventQueue};
use crate::report::{JobOutcome, RunReport, TaskTrace};
use crate::sched::{
    JobSnapshot, Scheduler, SiteState, Snapshot, StageSnapshot, TaskPhase, TaskSnapshot,
};
use crate::state::{build_tasks, CopyRt, JobRt, StageRt, StageStatus, TaskState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;
use tetrium_cluster::{CapacityDrop, Cluster, DynamicsChange, DynamicsTimeline, SiteId};
use tetrium_jobs::{Job, JobId, StageKind};
use tetrium_net::{FlowKey, FlowSim};
use tetrium_obs::{Obs, SchedRecord, TaskPhaseEvent, Trigger};

/// Errors terminating a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The scheduler stopped assigning tasks while work remained.
    Stalled {
        /// Number of unfinished jobs at the stall.
        unfinished: usize,
    },
    /// One task lost more attempts (to failure injection or site outages)
    /// than [`EngineConfig::max_task_retries`] allows.
    RetriesExhausted {
        /// Workload index of the job.
        job: usize,
        /// Stage index within the job.
        stage: usize,
        /// Task index within the stage.
        task: usize,
        /// Attempts lost when the run aborted.
        retries: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled { unfinished } => {
                write!(f, "scheduler stalled with {unfinished} unfinished jobs")
            }
            SimError::RetriesExhausted {
                job,
                stage,
                task,
                retries,
            } => {
                write!(
                    f,
                    "task {task} of job {job} stage {stage} lost {retries} attempts"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// What a WAN flow feeds: an original task's fetch or a speculative copy's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowOwner {
    Task(usize, usize, usize),
    Copy(usize, usize, usize, u64),
}

/// Timeline of the attempt (original or speculative copy) that completed a
/// task, recorded into the trace by [`Engine::finish_task`].
#[derive(Debug, Clone, Copy)]
struct TaskCompletion {
    /// Site the winning attempt ran at.
    site: SiteId,
    /// When the winning attempt occupied its slot.
    launched_at: f64,
    /// When the winning attempt began computing.
    compute_started: f64,
    /// The attempt's sampled compute seconds (feeds adaptive batching).
    secs: f64,
    /// Whether a speculative copy, rather than the original, won.
    was_copy: bool,
}

/// The execution engine. Construct with a cluster, a workload and a
/// scheduler; call [`Engine::run`] to simulate to completion.
pub struct Engine {
    cluster: Cluster,
    // Current (possibly degraded) capacities.
    cur_slots: Vec<usize>,
    cur_up: Vec<f64>,
    cur_down: Vec<f64>,
    occupied: Vec<usize>,
    flows: FlowSim,
    events: EventQueue,
    jobs: Vec<JobRt>,
    job_index: HashMap<JobId, usize>,
    /// Owner of each in-flight flow, indexed by `FlowKey::index()` (flow
    /// keys are dense slab indices, so a vector beats a hash map on the
    /// per-flow-event path).
    flow_owner: Vec<Option<FlowOwner>>,
    copies: BTreeMap<(usize, usize, usize), CopyRt>,
    next_copy_id: u64,
    scheduler: Box<dyn Scheduler>,
    cfg: EngineConfig,
    rng: StdRng,
    now: f64,
    dynamics: DynamicsTimeline,
    /// Set when a per-task retry budget is exhausted; checked by the event
    /// loop after each event so the run aborts deterministically.
    fatal: Option<SimError>,
    dynamics_applied: usize,
    sched_pending: bool,
    /// Trigger of the pending scheduling instance: the first requester of a
    /// batched instance wins (later requests coalesce into it).
    pending_trigger: Trigger,
    recent_secs: VecDeque<f64>,
    sched_invocations: usize,
    sched_wall_secs: f64,
    copies_launched: usize,
    copies_won: usize,
    task_failures: usize,
    trace: Vec<TaskTrace>,
    obs: Obs,
    /// Per-job flag: outcome already handed out by [`Engine::drain_finished`].
    reported_finished: Vec<bool>,
    // Scratch buffers reused across scheduler invocations so the steady
    // state of the event loop allocates nothing per invocation.
    snapshot_scratch: Snapshot,
    dispatch_scratch: Vec<Vec<(i64, usize, usize, usize)>>,
    launch_scratch: Vec<(i64, usize, usize, usize)>,
    usage_scratch: (Vec<f64>, Vec<f64>),
    fetch_scratch: Vec<(SiteId, f64)>,
    /// Shadow state for the runtime invariant auditor (DESIGN.md §10).
    #[cfg(feature = "audit")]
    auditor: crate::audit::Auditor,
}

/// Per-stage cap on live speculative copies: `ceil(tasks × frac)`, at
/// least one. The float→integer rounding for this ledger quantity is
/// confined to one documented helper so the engine hot path carries no
/// inline lossy casts; task counts sit far below f64's exact-integer range,
/// so the product and its ceiling are exact.
fn copy_cap(tasks: usize, frac: f64) -> usize {
    // lint:allow(L4) -- documented rounding helper (see doc comment)
    ((tasks as f64 * frac).ceil() as usize).max(1)
}

impl Engine {
    /// Creates an engine over `cluster` running `jobs` under `scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if any job's root inputs do not match the cluster's site count.
    pub fn new(
        cluster: Cluster,
        jobs: Vec<Job>,
        mut scheduler: Box<dyn Scheduler>,
        cfg: EngineConfig,
    ) -> Self {
        for j in &jobs {
            assert!(
                j.matches_cluster(&cluster),
                "job {} input does not match cluster",
                j.id
            );
        }
        let n = cluster.len();
        let cur_slots = cluster.slots_vec();
        let cur_up: Vec<f64> = cluster.iter().map(|(_, s)| s.up_gbps).collect();
        let cur_down: Vec<f64> = cluster.iter().map(|(_, s)| s.down_gbps).collect();
        let obs = if cfg.record_obs {
            Obs::recording(cur_slots.clone())
        } else {
            Obs::disabled()
        };
        let mut flows = FlowSim::new(cur_up.clone(), cur_down.clone());
        flows.set_obs(obs.clone());
        scheduler.attach_obs(obs.clone());
        let job_index: HashMap<JobId, usize> =
            jobs.iter().enumerate().map(|(i, j)| (j.id, i)).collect();
        assert_eq!(job_index.len(), jobs.len(), "job ids must be unique");
        let seed = cfg.seed;
        let n_jobs = jobs.len();
        Self {
            cluster,
            cur_slots,
            cur_up,
            cur_down,
            occupied: vec![0; n],
            flows,
            events: EventQueue::new(),
            jobs: jobs.into_iter().map(|j| JobRt::new(j, n)).collect(),
            job_index,
            flow_owner: Vec::new(),
            copies: BTreeMap::new(),
            next_copy_id: 0,
            scheduler,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            now: 0.0,
            dynamics: DynamicsTimeline::default(),
            fatal: None,
            dynamics_applied: 0,
            sched_pending: false,
            pending_trigger: Trigger::JobArrival,
            recent_secs: VecDeque::with_capacity(64),
            sched_invocations: 0,
            sched_wall_secs: 0.0,
            copies_launched: 0,
            copies_won: 0,
            task_failures: 0,
            trace: Vec::new(),
            obs,
            reported_finished: vec![false; n_jobs],
            snapshot_scratch: Snapshot::default(),
            dispatch_scratch: Vec::new(),
            launch_scratch: Vec::new(),
            usage_scratch: (Vec::new(), Vec::new()),
            fetch_scratch: Vec::new(),
            #[cfg(feature = "audit")]
            auditor: crate::audit::Auditor::new(),
        }
    }

    /// Records `owner` for an in-flight flow.
    fn set_flow_owner(&mut self, key: FlowKey, owner: FlowOwner) {
        let i = key.index();
        if self.flow_owner.len() <= i {
            self.flow_owner.resize(i + 1, None);
        }
        self.flow_owner[i] = Some(owner);
    }

    /// Removes and returns the owner of a flow, if any.
    fn take_flow_owner(&mut self, key: FlowKey) -> Option<FlowOwner> {
        self.flow_owner.get_mut(key.index()).and_then(Option::take)
    }

    /// Adds capacity-drop events that fire during the run (§4.2).
    ///
    /// Legacy entry point: the drops are converted into the equivalent
    /// [`DynamicsTimeline`] and merged with any timeline already set.
    pub fn with_drops(self, drops: Vec<CapacityDrop>) -> Self {
        self.with_dynamics(DynamicsTimeline::from_drops(&drops))
    }

    /// Merges a mid-run resource-dynamics timeline into the run: capacity
    /// drops and recoveries, link degradations and full site outages fire
    /// at their `at_time` through the event queue.
    pub fn with_dynamics(mut self, timeline: DynamicsTimeline) -> Self {
        self.dynamics.extend(timeline);
        self
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> Result<RunReport, SimError> {
        self.seed_initial_events();
        self.step_until_idle()?;
        Ok(self.into_report())
    }

    /// Pushes the arrival events for every job configured at construction
    /// plus the dynamics timeline. [`Engine::run`] calls this once; a
    /// front end driving the engine incrementally calls it once before the
    /// first [`Engine::step_until_idle`].
    pub fn seed_initial_events(&mut self) {
        for i in 0..self.jobs.len() {
            self.events
                .push(self.jobs[i].job.arrival, Event::JobArrival(i));
        }
        for i in 0..self.dynamics.len() {
            let at = self.dynamics.events()[i].at_time;
            self.events.push(at, Event::Dynamics(i));
        }
    }

    /// Admits `job` into a (possibly already stepped) engine, clamping its
    /// arrival to the current virtual time — a job submitted to a service
    /// cannot arrive in the engine's past. Call
    /// [`Engine::step_until_idle`] afterwards to process it.
    ///
    /// # Panics
    ///
    /// Panics if the job's root inputs do not match the cluster or its id
    /// collides with an already admitted job, mirroring [`Engine::new`].
    pub fn submit_job(&mut self, mut job: Job) -> JobId {
        assert!(
            job.matches_cluster(&self.cluster),
            "job {} input does not match cluster",
            job.id
        );
        job.arrival = job.arrival.max(self.now);
        let id = job.id;
        let i = self.jobs.len();
        let prev = self.job_index.insert(id, i);
        assert!(prev.is_none(), "job ids must be unique (duplicate {id})");
        let n = self.cluster.len();
        self.events.push(job.arrival, Event::JobArrival(i));
        self.jobs.push(JobRt::new(job, n));
        self.reported_finished.push(false);
        id
    }

    /// Processes events until the engine is idle: every admitted job has
    /// finished and no event remains. Identical to the [`Engine::run`]
    /// event loop — `run` is exactly seed + one `step_until_idle` — so
    /// incremental driving preserves byte-determinism for the same
    /// submission history.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] when unfinished jobs remain but the scheduler
    /// launches nothing, and whatever fatal error an event handler arms
    /// (e.g. [`SimError::RetriesExhausted`]).
    pub fn step_until_idle(&mut self) -> Result<(), SimError> {
        loop {
            let t_heap = self.events.peek_time();
            let t_net = self.flows.next_completion().map(|(_, t)| t);
            match (t_heap, t_net) {
                (None, None) => {
                    if self.unfinished() == 0 {
                        break;
                    }
                    // Idle but unfinished: give the scheduler one more chance
                    // (e.g. it withheld assignments waiting for more slots).
                    let launched = self.run_scheduler(Trigger::IdleRetry);
                    if launched == 0 {
                        return Err(SimError::Stalled {
                            unfinished: self.unfinished(),
                        });
                    }
                }
                (heap, net) => {
                    let take_net = match (heap, net) {
                        (Some(h), Some(n)) => n <= h,
                        (None, Some(_)) => true,
                        _ => false,
                    };
                    if take_net {
                        let (key, t) = self.flows.next_completion().expect("net event");
                        self.advance_to(t);
                        self.on_flow_done(key);
                        #[cfg(feature = "audit")]
                        self.audit_check(&format!("FlowDone({}) at t={t}", key.index()));
                    } else {
                        let (t, ev) = self.events.pop().expect("heap event");
                        #[cfg(feature = "audit")]
                        let ctx = format!("{ev:?} at t={t}");
                        self.advance_to(t);
                        self.on_event(ev);
                        #[cfg(feature = "audit")]
                        self.audit_check(&ctx);
                    }
                }
            }
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// A clone of the engine's observability handle. A front end holds
    /// this to drain task events between steps (e.g. fanning them out to
    /// subscribers) while the engine keeps recording; disabled unless
    /// [`crate::EngineConfig::record_obs`] is set.
    pub fn obs_handle(&self) -> Obs {
        self.obs.clone()
    }

    /// Total WAN gigabytes charged so far.
    pub fn total_wan_gb(&self) -> f64 {
        self.flows.total_wan_gb()
    }

    /// Number of admitted jobs (finished or not).
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Outcomes of jobs that finished since the last drain, in admission
    /// order. A front end polls this between [`Engine::step_until_idle`]
    /// calls to report completions without consuming the engine.
    pub fn drain_finished(&mut self) -> Vec<JobOutcome> {
        let mut out = Vec::new();
        for i in 0..self.jobs.len() {
            if !self.reported_finished[i] && self.jobs[i].finished_at.is_some() {
                self.reported_finished[i] = true;
                out.push(Self::job_outcome(&self.jobs[i]));
            }
        }
        out
    }

    fn unfinished(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.arrived && !j.is_finished())
            .count()
            + self.jobs.iter().filter(|j| !j.arrived).count()
    }

    fn advance_to(&mut self, t: f64) {
        let t = t.max(self.now);
        self.flows.advance_to(t);
        self.now = t;
    }

    /// Occupies a slot at `site`, sampling the occupancy timeline.
    fn occupy_slot(&mut self, site: SiteId) {
        self.occupied[site.index()] += 1;
        self.obs
            .slot_sample(self.now, site, self.occupied[site.index()]);
    }

    /// Releases a slot at `site`, sampling the occupancy timeline.
    fn vacate_slot(&mut self, site: SiteId) {
        self.occupied[site.index()] -= 1;
        self.obs
            .slot_sample(self.now, site, self.occupied[site.index()]);
    }

    fn on_event(&mut self, ev: Event) {
        match ev {
            Event::JobArrival(i) => {
                self.jobs[i].arrived = true;
                self.activate_stages(i);
                self.request_sched(true, Trigger::JobArrival);
            }
            Event::ComputeDone(j, s, t) => self.on_compute_done(j, s, t),
            Event::CopyComputeDone(j, s, t, id) => self.on_copy_compute_done(j, s, t, id),
            Event::SchedulingPoint => {
                let trigger = self.pending_trigger;
                self.sched_pending = false;
                self.run_scheduler(trigger);
                self.maybe_speculate();
            }
            Event::Dynamics(i) => self.apply_dynamics(i),
        }
    }

    /// Applies dynamics-timeline event `i`: swaps the site's live capacities
    /// to the event's target (always derived from the configured baseline),
    /// updates the flow simulator, fails attempts stranded by an outage and
    /// requests rescheduling.
    ///
    /// Occupancy above a shrunken slot count drains naturally: dispatch and
    /// speculation compute free slots with `saturating_sub`, so no new task
    /// launches at the site until enough running attempts finish
    /// (clamp-and-drain), and `occupied` keeps tracking real slot holders.
    fn apply_dynamics(&mut self, i: usize) {
        let ev = self.dynamics.events()[i];
        let site = ev.site;
        let target = ev.target(self.cluster.site(site));
        let s = site.index();
        self.cur_slots[s] = target.slots;
        self.cur_up[s] = target.up_gbps;
        self.cur_down[s] = target.down_gbps;
        self.flows
            .set_capacity(site, target.up_gbps, target.down_gbps);
        self.dynamics_applied += 1;
        self.obs.dynamics_event();
        let trigger = match ev.change {
            DynamicsChange::Capacity { .. } => {
                // Converted legacy `CapacityDrop`s keep emitting the counter
                // and trigger they always did.
                self.obs.capacity_drop();
                Trigger::CapacityDrop
            }
            DynamicsChange::Outage => {
                self.obs.site_outage();
                self.fail_attempts_at(site);
                Trigger::Dynamics
            }
            DynamicsChange::Links { .. } | DynamicsChange::Recover => Trigger::Dynamics,
        };
        self.request_sched(true, trigger);
    }

    /// Fails every attempt running at `site` (a full outage): originals
    /// re-enter the scheduling pool through the bounded retry path, and
    /// speculative copies are torn down with their WAN refunds.
    fn fail_attempts_at(&mut self, site: SiteId) {
        for j in 0..self.jobs.len() {
            for s in 0..self.jobs[j].stages.len() {
                if self.jobs[j].stages[s].status != StageStatus::Runnable {
                    continue;
                }
                for t in 0..self.jobs[j].stages[s].tasks.len() {
                    let task = &self.jobs[j].stages[s].tasks[t];
                    let running_here = task.run_site == Some(site)
                        && matches!(
                            task.state,
                            TaskState::Fetching { .. } | TaskState::Computing { .. }
                        );
                    if running_here {
                        self.obs.dynamics_retry();
                        self.fail_attempt(j, s, t, site);
                    }
                }
            }
        }
        // Copies at the dead site are torn down too. `copies` is a BTreeMap,
        // so iteration is already in key order and no compensating sort is
        // needed before the order-dependent teardown effects.
        let doomed: Vec<(usize, usize, usize)> = self
            .copies
            .iter()
            .filter(|(_, c)| c.site == site)
            .map(|(&k, _)| k)
            .collect();
        for (j, s, t) in doomed {
            self.cancel_copy(j, s, t);
        }
    }

    /// Fails one original attempt of task `(j, s, t)` running at `site`:
    /// refunds WAN charged for fetches that will never complete (the unsent
    /// remainder of in-flight flows plus fetches still queued behind the
    /// concurrency cap, both charged in full at launch), releases the slot,
    /// and returns the task to the pool for re-placement. Arms
    /// [`SimError::RetriesExhausted`] once the attempt budget is spent.
    fn fail_attempt(&mut self, j: usize, s: usize, t: usize, site: SiteId) {
        // Fetch teardown first: a computing attempt has none, so for the
        // classic failure-injection path this is a no-op.
        let (pending, queued) = match &mut self.jobs[j].stages[s].tasks[t].state {
            TaskState::Fetching { pending, queued } => {
                (std::mem::take(pending), std::mem::take(queued))
            }
            _ => (Vec::new(), Vec::new()),
        };
        for key in pending {
            let unsent = self.flows.remove_flow(key);
            self.take_flow_owner(key);
            self.jobs[j].wan_gb -= unsent;
        }
        for (_, gb) in queued {
            self.jobs[j].wan_gb -= gb;
        }
        self.vacate_slot(site);
        self.task_failures += 1;
        self.obs.task_failure();
        self.obs
            .task_event(self.now, j, s, t, false, TaskPhaseEvent::Failed, site);
        let task = &mut self.jobs[j].stages[s].tasks[t];
        task.state = TaskState::Unlaunched;
        task.run_site = None;
        task.actual_secs = None;
        task.compute_started = None;
        task.launched_at = None;
        task.retries += 1;
        if task.retries > self.cfg.max_task_retries && self.fatal.is_none() {
            self.fatal = Some(SimError::RetriesExhausted {
                job: j,
                stage: s,
                task: t,
                retries: task.retries,
            });
        }
    }

    /// Activates every stage of job `j` whose parents are done: realizes its
    /// input distribution, builds task records and samples the duration
    /// estimate shown to the scheduler.
    fn activate_stages(&mut self, j: usize) {
        let n = self.cluster.len();
        for s in self.jobs[j].activatable_stages() {
            let input = self.jobs[j].realized_input(s, n);
            let spec = self.jobs[j].job.stages[s].clone();
            let tasks = build_tasks(spec.kind, spec.num_tasks, &input, |i| spec.task_share(i));
            let e = self.cfg.estimation_error;
            let err = if e > 0.0 {
                self.rng.gen_range(-e..=e)
            } else {
                0.0
            };
            let st = &mut self.jobs[j].stages[s];
            st.status = StageStatus::Runnable;
            st.input = Some(Arc::new(input));
            st.tasks = tasks;
            st.est_task_secs = (spec.task_secs * (1.0 + err)).max(1e-6);
            st.activated_at = Some(self.now);
        }
    }

    fn on_flow_done(&mut self, key: FlowKey) {
        self.flows.remove_flow(key);
        let Some(owner) = self.take_flow_owner(key) else {
            return;
        };
        let (j, s, t) = match owner {
            FlowOwner::Task(j, s, t) => (j, s, t),
            FlowOwner::Copy(j, s, t, id) => {
                self.on_copy_flow_done(j, s, t, id, key);
                return;
            }
        };
        let (open_next, site) = {
            let task = &mut self.jobs[j].stages[s].tasks[t];
            let TaskState::Fetching { pending, queued } = &mut task.state else {
                unreachable!("flow completion for a non-fetching task");
            };
            pending.retain(|k| *k != key);
            (
                queued.pop(),
                task.run_site.expect("fetching task has a site"),
            )
        };
        if let Some((src, gb)) = open_next {
            let flow = self.flows.add_flow(src, site, gb);
            self.set_flow_owner(flow, FlowOwner::Task(j, s, t));
            if let TaskState::Fetching { pending, .. } = &mut self.jobs[j].stages[s].tasks[t].state
            {
                pending.push(flow);
            }
        }
        let done = matches!(
            &self.jobs[j].stages[s].tasks[t].state,
            TaskState::Fetching { pending, queued } if pending.is_empty() && queued.is_empty()
        );
        if done {
            self.begin_compute(j, s, t);
        }
    }

    /// Transitions a task whose inputs are local/arrived into its compute
    /// phase.
    fn begin_compute(&mut self, j: usize, s: usize, t: usize) {
        let secs = self.jobs[j].stages[s].tasks[t]
            .actual_secs
            .expect("duration sampled at launch");
        let done_at = self.now + secs;
        let task = &mut self.jobs[j].stages[s].tasks[t];
        task.state = TaskState::Computing { done_at };
        task.compute_started = Some(self.now);
        let site = task.run_site.expect("computing task has a site");
        self.obs
            .task_event(self.now, j, s, t, false, TaskPhaseEvent::Computing, site);
        self.events.push(done_at, Event::ComputeDone(j, s, t));
    }

    fn on_compute_done(&mut self, j: usize, s: usize, t: usize) {
        let (site, secs, launched_at, compute_started) = {
            let task = &self.jobs[j].stages[s].tasks[t];
            let TaskState::Computing { done_at } = task.state else {
                // A speculative copy already finished this task, or the
                // attempt was lost to a failure or an outage.
                return;
            };
            if done_at != self.now {
                // Stale event: the attempt that pushed it was failed by an
                // outage and the task relaunched; the live attempt enqueued
                // its own completion. (Exact float equality holds — the
                // event carries the same bits `done_at` was set to.)
                return;
            }
            (
                task.run_site.expect("running task has a site"),
                task.actual_secs.unwrap_or(0.0),
                task.launched_at.unwrap_or(self.now),
                task.compute_started.unwrap_or(self.now),
            )
        };
        // Fail-over injection (§6.1 trace): the attempt is lost and the task
        // returns to the pool for re-placement. A live speculative copy, if
        // any, keeps running and may still complete the task.
        if self.cfg.failure_prob > 0.0 && self.rng.gen::<f64>() < self.cfg.failure_prob {
            self.fail_attempt(j, s, t, site);
            self.request_sched(true, Trigger::Failure);
            return;
        }
        self.jobs[j].stages[s].tasks[t].state = TaskState::Done;
        self.vacate_slot(site);
        self.cancel_copy(j, s, t);
        self.finish_task(
            j,
            s,
            t,
            TaskCompletion {
                site,
                launched_at,
                compute_started,
                secs,
                was_copy: false,
            },
        );
    }

    /// Shared completion accounting for originals and winning copies:
    /// materializes the task's output at the attempt's site, advances
    /// stage/job state and requests scheduling. `done` carries the winning
    /// attempt's own timeline — a winning copy reports when *it* occupied a
    /// slot and started computing, not the original's times, so the trace
    /// never shows a negative fetch phase.
    fn finish_task(&mut self, j: usize, s: usize, t: usize, done: TaskCompletion) {
        let site = done.site;
        self.obs
            .task_event(self.now, j, s, t, done.was_copy, TaskPhaseEvent::Done, site);
        if self.cfg.record_trace {
            self.trace.push(TaskTrace {
                job: self.jobs[j].job.id,
                stage: s,
                task: t,
                site,
                launched_at: done.launched_at,
                compute_started: done.compute_started,
                finished_at: self.now,
                was_copy: done.was_copy,
            });
        }
        self.recent_secs.push_back(done.secs);
        if self.recent_secs.len() > 64 {
            self.recent_secs.pop_front();
        }
        // Materialize this task's output where it ran.
        let ratio = self.jobs[j].job.stages[s].output_ratio;
        let input_gb = self.jobs[j].stages[s].tasks[t].input_gb;
        *self.jobs[j].stages[s].output.at_mut(site) += input_gb * ratio;
        self.jobs[j].stages[s].done_tasks += 1;

        let stage_done = self.jobs[j].stages[s].done_tasks == self.jobs[j].stages[s].tasks.len();
        if stage_done {
            self.jobs[j].stages[s].status = StageStatus::Done;
            self.jobs[j].stages[s].finished_at = Some(self.now);
            self.jobs[j].done_stages += 1;
            if self.jobs[j].is_finished() {
                self.jobs[j].finished_at = Some(self.now);
            } else {
                self.activate_stages(j);
            }
            self.request_sched(true, Trigger::StageDone);
        } else {
            self.request_sched(false, Trigger::SlotRelease);
        }
    }

    /// Queues a scheduling instance. `immediate` instances (arrivals, stage
    /// activations, capacity drops) fire now; slot releases are batched per
    /// the configured policy (§5). The `trigger` of the first request wins —
    /// later requests coalesce into the already-pending instance.
    fn request_sched(&mut self, immediate: bool, trigger: Trigger) {
        if self.sched_pending {
            return;
        }
        self.pending_trigger = trigger;
        let delay = if immediate {
            0.0
        } else {
            match self.cfg.batch {
                BatchPolicy::None => 0.0,
                BatchPolicy::Fixed(w) => w,
                BatchPolicy::Adaptive { factor, max_secs } => {
                    if self.recent_secs.is_empty() {
                        0.0
                    } else {
                        let mean =
                            self.recent_secs.iter().sum::<f64>() / self.recent_secs.len() as f64;
                        (mean * factor).min(max_secs)
                    }
                }
            }
        };
        self.sched_pending = true;
        self.events.push(self.now + delay, Event::SchedulingPoint);
    }

    /// Builds a snapshot, invokes the scheduler, applies its plans and
    /// dispatches launchable tasks. Returns the number launched.
    fn run_scheduler(&mut self, trigger: Trigger) -> usize {
        let mut snapshot = std::mem::take(&mut self.snapshot_scratch);
        self.fill_snapshot(&mut snapshot);
        if snapshot.jobs.is_empty() {
            self.snapshot_scratch = snapshot;
            return 0;
        }
        // Snapshot-size stats feed the SchedRecord; skip computing them on
        // the disabled path.
        let (rec_jobs, rec_unlaunched) = if self.obs.is_enabled() {
            let unlaunched = snapshot
                .jobs
                .iter()
                .flat_map(|j| &j.runnable)
                .map(|st| st.unlaunched_count())
                .sum();
            (snapshot.jobs.len(), unlaunched)
        } else {
            (0, 0)
        };
        // Scheduler wall-latency telemetry: feeds `sched_wall_secs`, which
        // is excluded from deterministic figure/obs output (DESIGN.md §7).
        // lint:allow(L3) -- telemetry timing only, never in sim output
        let started = Instant::now();
        let plans = self.scheduler.schedule(&snapshot);
        let wall_secs = started.elapsed().as_secs_f64();
        self.sched_wall_secs += wall_secs;
        self.sched_invocations += 1;
        self.snapshot_scratch = snapshot;
        let (rec_plans, rec_assignments) = if self.obs.is_enabled() {
            (plans.len(), plans.iter().map(|p| p.assignments.len()).sum())
        } else {
            (0, 0)
        };

        for plan in plans {
            let j = *self
                .job_index
                .get(&plan.job)
                .unwrap_or_else(|| panic!("plan for unknown job {}", plan.job));
            let s = plan.stage;
            assert!(
                s < self.jobs[j].stages.len(),
                "plan for unknown stage {s} of {}",
                plan.job
            );
            if self.jobs[j].stages[s].status != StageStatus::Runnable {
                continue;
            }
            for a in plan.assignments {
                assert!(a.site.index() < self.cluster.len(), "bad site in plan");
                let task = &mut self.jobs[j].stages[s].tasks[a.task];
                if task.state == TaskState::Unlaunched {
                    // Queued events record first assignments and site moves;
                    // re-assignments to the same site would flood the stream
                    // without carrying information.
                    if task.assigned_site != Some(a.site) {
                        self.obs.task_event(
                            self.now,
                            j,
                            s,
                            a.task,
                            false,
                            TaskPhaseEvent::Queued,
                            a.site,
                        );
                    }
                    task.assigned_site = Some(a.site);
                    task.priority = a.priority;
                }
            }
        }
        let launched = self.dispatch();
        if self.obs.is_enabled() {
            self.obs.sched_record(SchedRecord {
                at: self.now,
                trigger,
                jobs: rec_jobs,
                unlaunched: rec_unlaunched,
                plans: rec_plans,
                assignments: rec_assignments,
                launched,
                wall_secs,
            });
        }
        launched
    }

    /// Fills free slots: at each site, launches assigned unlaunched tasks in
    /// priority order. Returns the number of tasks launched.
    #[allow(clippy::needless_range_loop)]
    fn dispatch(&mut self) -> usize {
        let n = self.cluster.len();
        // Collect launch candidates per site: (priority, j, s, t). The
        // per-site buckets and the per-site launch list are scratch fields so
        // steady-state dispatch reuses their capacity.
        let mut per_site = std::mem::take(&mut self.dispatch_scratch);
        per_site.resize_with(n, Vec::new);
        for bucket in &mut per_site {
            bucket.clear();
        }
        for (j, job) in self.jobs.iter().enumerate() {
            if !job.arrived || job.is_finished() {
                continue;
            }
            for (s, st) in job.stages.iter().enumerate() {
                if st.status != StageStatus::Runnable {
                    continue;
                }
                for (t, task) in st.tasks.iter().enumerate() {
                    if task.state == TaskState::Unlaunched {
                        if let Some(site) = task.assigned_site {
                            per_site[site.index()].push((task.priority, j, s, t));
                        }
                    }
                }
            }
        }
        let mut launched = 0;
        let mut list = std::mem::take(&mut self.launch_scratch);
        for site in 0..n {
            let free = self.cur_slots[site].saturating_sub(self.occupied[site]);
            if free == 0 || per_site[site].is_empty() {
                continue;
            }
            per_site[site].sort_unstable();
            let take = free.min(per_site[site].len());
            // Split the borrow: move the list out to launch against `self`.
            list.clear();
            list.extend(per_site[site].drain(..take));
            for &(_, j, s, t) in &list {
                self.launch(j, s, t, SiteId(site));
                launched += 1;
            }
        }
        list.clear();
        self.launch_scratch = list;
        self.dispatch_scratch = per_site;
        launched
    }

    /// Launches one task at `site`: samples its actual duration, starts its
    /// input flows (map: one source partition; reduce: a fetch from every
    /// site holding shuffle data) and begins compute immediately when all
    /// inputs are local.
    fn launch(&mut self, j: usize, s: usize, t: usize, site: SiteId) {
        self.occupy_slot(site);
        self.obs
            .task_event(self.now, j, s, t, false, TaskPhaseEvent::Fetching, site);
        let kind = self.jobs[j].job.stages[s].kind;
        let mean = self.jobs[j].job.stages[s].task_secs;
        let secs = self.sample_duration(mean);
        {
            let task = &mut self.jobs[j].stages[s].tasks[t];
            task.run_site = Some(site);
            task.actual_secs = Some(secs);
            task.launched_at = Some(self.now);
        }

        // Collect this task's remote fetches, then open at most
        // `max_fetch_concurrency` immediately; the rest queue behind them.
        // All flows of a same-instant launch burst (an n-source shuffle
        // fan-out, or many tasks dispatched at one scheduling point) enter
        // the simulator before the next completion query, so the whole
        // burst costs one rate refresh.
        let mut fetches = std::mem::take(&mut self.fetch_scratch);
        self.collect_fetches(j, s, t, kind, site, &mut fetches);
        if fetches.is_empty() {
            self.fetch_scratch = fetches;
            self.begin_compute(j, s, t);
            return;
        }
        for &(_, gb) in &fetches {
            self.jobs[j].wan_gb += gb;
        }
        let cap = self.cfg.max_fetch_concurrency.max(1);
        let mut pending = Vec::new();
        let mut queued = Vec::new();
        for (i, &(src, gb)) in fetches.iter().enumerate() {
            if i < cap {
                let key = self.flows.add_flow(src, site, gb);
                self.set_flow_owner(key, FlowOwner::Task(j, s, t));
                pending.push(key);
            } else {
                queued.push((src, gb));
            }
        }
        self.fetch_scratch = fetches;
        self.jobs[j].stages[s].tasks[t].state = TaskState::Fetching { pending, queued };
    }

    /// Fills `fetches` with the remote inputs an attempt of task `(j, s, t)`
    /// running at `site` must pull over the WAN: a map task's home
    /// partition, or a reduce task's shuffle share from every other site.
    fn collect_fetches(
        &self,
        j: usize,
        s: usize,
        t: usize,
        kind: StageKind,
        site: SiteId,
        fetches: &mut Vec<(SiteId, f64)>,
    ) {
        fetches.clear();
        let task = &self.jobs[j].stages[s].tasks[t];
        match kind {
            StageKind::Map => {
                // A map task without a home partition (placeable-anywhere
                // snapshot) has nothing to pull over the WAN.
                if let Some(src) = task.input_site {
                    if src != site && task.input_gb > 1e-12 {
                        fetches.push((src, task.input_gb));
                    }
                }
            }
            StageKind::Reduce => {
                let input = self.jobs[j].stages[s]
                    .input
                    .as_deref()
                    .expect("runnable stage has realized input");
                for x in 0..self.cluster.len() {
                    let vol = task.share * input.at(SiteId(x));
                    if SiteId(x) != site && vol > 1e-12 {
                        fetches.push((SiteId(x), vol));
                    }
                }
            }
        }
    }

    fn sample_duration(&mut self, mean: f64) -> f64 {
        let mut secs = mean;
        if self.cfg.duration_cv > 0.0 {
            let cv = self.cfg.duration_cv;
            let sigma2 = (1.0 + cv * cv).ln();
            let ln = LogNormal::new(-sigma2 / 2.0, sigma2.sqrt()).expect("valid lognormal");
            secs *= ln.sample(&mut self.rng);
        }
        if self.cfg.straggler_prob > 0.0 && self.rng.gen::<f64>() < self.cfg.straggler_prob {
            let (a, b) = self.cfg.straggler_mult;
            secs *= self.rng.gen_range(a..=b);
        }
        secs.max(1e-9)
    }

    /// Launches speculative copies for straggling tasks (§8): any task
    /// computing longer than `threshold` × its stage estimate gets a copy at
    /// the free-est site, bounded by `max_copies_frac` live copies per
    /// stage. The first finisher wins; the loser is cancelled.
    fn maybe_speculate(&mut self) {
        let Some(spec) = self.cfg.speculation else {
            return;
        };
        let n = self.cluster.len();
        let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
        for (j, job) in self.jobs.iter().enumerate() {
            if !job.arrived || job.is_finished() {
                continue;
            }
            for (si, st) in job.stages.iter().enumerate() {
                if st.status != StageStatus::Runnable {
                    continue;
                }
                let cap = copy_cap(st.tasks.len(), spec.max_copies_frac);
                let live = (0..st.tasks.len())
                    .filter(|&t| self.copies.contains_key(&(j, si, t)))
                    .count();
                if live >= cap {
                    continue;
                }
                let mut budget = cap - live;
                for (t, task) in st.tasks.iter().enumerate() {
                    if budget == 0 {
                        break;
                    }
                    let straggling = matches!(task.state, TaskState::Computing { .. })
                        && task.compute_started.is_some_and(|start| {
                            self.now - start > spec.threshold * st.est_task_secs
                        })
                        && !self.copies.contains_key(&(j, si, t));
                    if straggling {
                        candidates.push((j, si, t));
                        budget -= 1;
                    }
                }
            }
        }
        for (j, si, t) in candidates {
            // Free-est site; skip speculation when the cluster is full.
            let Some(site) = (0..n)
                .max_by_key(|&x| self.cur_slots[x].saturating_sub(self.occupied[x]))
                .filter(|&x| self.cur_slots[x] > self.occupied[x])
            else {
                return;
            };
            self.launch_copy(j, si, t, SiteId(site), spec);
        }
    }

    fn launch_copy(
        &mut self,
        j: usize,
        s: usize,
        t: usize,
        site: SiteId,
        _spec: SpeculationConfig,
    ) {
        self.occupy_slot(site);
        self.obs
            .task_event(self.now, j, s, t, true, TaskPhaseEvent::Fetching, site);
        self.obs.copy_launched();
        let id = self.next_copy_id;
        self.next_copy_id += 1;
        let mean = self.jobs[j].job.stages[s].task_secs;
        let secs = self.sample_duration(mean);
        let kind = self.jobs[j].job.stages[s].kind;
        let mut fetches = std::mem::take(&mut self.fetch_scratch);
        self.collect_fetches(j, s, t, kind, site, &mut fetches);
        for &(_, gb) in &fetches {
            self.jobs[j].wan_gb += gb;
        }
        let cap = self.cfg.max_fetch_concurrency.max(1);
        let mut pending = Vec::new();
        let mut queued = Vec::new();
        for (i, &(src, gb)) in fetches.iter().enumerate() {
            if i < cap {
                let key = self.flows.add_flow(src, site, gb);
                self.set_flow_owner(key, FlowOwner::Copy(j, s, t, id));
                pending.push(key);
            } else {
                queued.push((src, gb));
            }
        }
        self.fetch_scratch = fetches;
        self.copies_launched += 1;
        let computing = pending.is_empty();
        if computing {
            self.obs
                .task_event(self.now, j, s, t, true, TaskPhaseEvent::Computing, site);
            self.events
                .push(self.now + secs, Event::CopyComputeDone(j, s, t, id));
        }
        self.copies.insert(
            (j, s, t),
            CopyRt {
                id,
                site,
                pending,
                queued,
                computing,
                secs,
                launched_at: self.now,
                compute_started: if computing { Some(self.now) } else { None },
            },
        );
    }

    fn on_copy_flow_done(&mut self, j: usize, s: usize, t: usize, id: u64, key: FlowKey) {
        let Some(copy) = self.copies.get_mut(&(j, s, t)) else {
            return; // Copy was cancelled; the flow was already torn down.
        };
        if copy.id != id {
            return;
        }
        copy.pending.retain(|k| *k != key);
        let site = copy.site;
        if let Some((src, gb)) = copy.queued.pop() {
            let flow = self.flows.add_flow(src, site, gb);
            self.set_flow_owner(flow, FlowOwner::Copy(j, s, t, id));
            if let Some(copy) = self.copies.get_mut(&(j, s, t)) {
                copy.pending.push(flow);
            }
            return;
        }
        let copy = self.copies.get_mut(&(j, s, t)).expect("copy checked above");
        if copy.pending.is_empty() && !copy.computing {
            copy.computing = true;
            copy.compute_started = Some(self.now);
            let secs = copy.secs;
            self.obs
                .task_event(self.now, j, s, t, true, TaskPhaseEvent::Computing, site);
            self.events
                .push(self.now + secs, Event::CopyComputeDone(j, s, t, id));
        }
    }

    fn on_copy_compute_done(&mut self, j: usize, s: usize, t: usize, id: u64) {
        let Some(copy) = self.copies.get(&(j, s, t)) else {
            return; // Cancelled before finishing.
        };
        if copy.id != id {
            return;
        }
        let copy_site = copy.site;
        let copy_secs = copy.secs;
        let copy_launched_at = copy.launched_at;
        let copy_compute_started = copy.compute_started.unwrap_or(self.now);
        // The copy won: tear down the original (if it is still occupying a
        // slot — a failure injection may have returned it to the pool) and
        // complete the task here.
        let (orig_site, orig_flows, orig_queued) = {
            let task = &mut self.jobs[j].stages[s].tasks[t];
            if task.state == TaskState::Done {
                // The original finished in the same instant; it won.
                self.copies.remove(&(j, s, t));
                self.vacate_slot(copy_site);
                self.obs.attempt_cancelled();
                self.obs.task_event(
                    self.now,
                    j,
                    s,
                    t,
                    true,
                    TaskPhaseEvent::Cancelled,
                    copy_site,
                );
                return;
            }
            let (flows, queued) = match &mut task.state {
                TaskState::Fetching { pending, queued } => {
                    (std::mem::take(pending), std::mem::take(queued))
                }
                _ => (Vec::new(), Vec::new()),
            };
            let site = task.run_site;
            task.state = TaskState::Done;
            (site, flows, queued)
        };
        // Refund WAN the original was charged for but will never move: the
        // unsent remainder of in-flight fetches AND fetches still queued
        // behind the concurrency cap (which were charged in full at launch).
        for key in orig_flows {
            let unsent = self.flows.remove_flow(key);
            self.take_flow_owner(key);
            self.jobs[j].wan_gb -= unsent;
        }
        for (_, gb) in orig_queued {
            self.jobs[j].wan_gb -= gb;
        }
        if let Some(site) = orig_site {
            self.vacate_slot(site);
            self.obs.attempt_cancelled();
            self.obs
                .task_event(self.now, j, s, t, false, TaskPhaseEvent::Cancelled, site);
        }
        self.vacate_slot(copy_site);
        self.copies.remove(&(j, s, t));
        self.copies_won += 1;
        self.obs.copy_won();
        self.finish_task(
            j,
            s,
            t,
            TaskCompletion {
                site: copy_site,
                launched_at: copy_launched_at,
                compute_started: copy_compute_started,
                secs: copy_secs,
                was_copy: true,
            },
        );
    }

    /// Cancels a live copy after the original finished first.
    fn cancel_copy(&mut self, j: usize, s: usize, t: usize) {
        let Some(copy) = self.copies.remove(&(j, s, t)) else {
            return;
        };
        // Refund both the unsent remainder of in-flight fetches and fetches
        // still queued behind the concurrency cap — the copy was charged for
        // all of them up front at launch.
        for key in copy.pending {
            let unsent = self.flows.remove_flow(key);
            self.take_flow_owner(key);
            self.jobs[j].wan_gb -= unsent;
        }
        for (_, gb) in copy.queued {
            self.jobs[j].wan_gb -= gb;
        }
        self.vacate_slot(copy.site);
        self.obs.attempt_cancelled();
        self.obs.task_event(
            self.now,
            j,
            s,
            t,
            true,
            TaskPhaseEvent::Cancelled,
            copy.site,
        );
        // A pending CopyComputeDone event becomes stale: the id check in
        // `on_copy_compute_done` ignores it.
    }

    /// Fills `out` with the current cluster and job state, reusing the
    /// caller's top-level buffers instead of allocating a fresh snapshot per
    /// scheduling instance.
    fn fill_snapshot(&mut self, out: &mut Snapshot) {
        // Report *available* bandwidth: capacity minus what in-flight flows
        // currently consume (the paper measures available bandwidth rather
        // than configured capacity, §5). A 5% floor keeps the placement
        // models finite when a link is saturated.
        let (mut up_used, mut down_used) = std::mem::take(&mut self.usage_scratch);
        self.flows.link_usage_into(&mut up_used, &mut down_used);
        out.now = self.now;
        out.sites.clear();
        out.sites.extend((0..self.cluster.len()).map(|s| {
            SiteState {
                slots: self.cur_slots[s],
                free_slots: self.cur_slots[s].saturating_sub(self.occupied[s]),
                // The extra 1e-4 floor only bites when a dynamics event zeroed
                // the link outright; it keeps scheduler transfer-time models
                // finite (no 0/0) without perturbing healthy-link reports.
                // The floor must sit well above the LP solvers' 1e-9 pivot
                // tolerance: a dead-link bandwidth near the tolerance after
                // row normalization makes feasibility of the placement model
                // numerically ambiguous, and pivots on such entries amplify
                // roundoff past the tolerance. At 1e-4 GB/s a "dead" link
                // still needs ~1e4 s per GB — far beyond any realized
                // makespan — so placements are unaffected.
                up_gbps: (self.cur_up[s] - up_used[s])
                    .max(self.cur_up[s] * 0.05)
                    .max(1e-4),
                down_gbps: (self.cur_down[s] - down_used[s])
                    .max(self.cur_down[s] * 0.05)
                    .max(1e-4),
            }
        }));
        self.usage_scratch = (up_used, down_used);
        out.jobs.clear();
        for job in &self.jobs {
            if !job.arrived || job.is_finished() {
                continue;
            }
            let runnable = job
                .stages
                .iter()
                .enumerate()
                .filter(|(_, st)| st.status == StageStatus::Runnable)
                .map(|(si, st)| self.stage_snapshot(&job.job, si, st))
                .collect();
            let stages = job
                .job
                .stages
                .iter()
                .zip(&job.stages)
                .map(|(spec, rt)| crate::sched::StageMeta {
                    kind: spec.kind,
                    deps: spec.deps.clone(),
                    num_tasks: spec.num_tasks,
                    task_secs: spec.task_secs,
                    output_ratio: spec.output_ratio,
                    done: rt.status == StageStatus::Done,
                })
                .collect();
            out.jobs.push(JobSnapshot {
                id: job.job.id,
                arrival: job.job.arrival,
                total_stages: job.stages.len(),
                remaining_stages: job.stages.len() - job.done_stages,
                stages,
                runnable,
            });
        }
    }

    fn stage_snapshot(&self, job: &Job, si: usize, st: &StageRt) -> StageSnapshot {
        let tasks = st
            .tasks
            .iter()
            .enumerate()
            .map(|(i, task)| TaskSnapshot {
                index: i,
                phase: match task.state {
                    TaskState::Unlaunched => TaskPhase::Unlaunched,
                    TaskState::Fetching { .. } | TaskState::Computing { .. } => TaskPhase::Running,
                    TaskState::Done => TaskPhase::Done,
                },
                input_site: task.input_site,
                input_gb: task.input_gb,
                share: task.share,
                running_site: task.run_site,
            })
            .collect();
        StageSnapshot {
            stage_index: si,
            kind: job.stages[si].kind,
            est_task_secs: st.est_task_secs,
            num_tasks: st.tasks.len(),
            input_gb: st
                .input
                .as_ref()
                .map(|d| d.as_slice().to_vec())
                .unwrap_or_default(),
            tasks,
        }
    }

    /// Builds the outcome record for a finished job.
    ///
    /// # Panics
    ///
    /// Panics if the job has not finished.
    fn job_outcome(j: &JobRt) -> JobOutcome {
        let finished = j.finished_at.expect("job outcome requires completion");
        let input_skew = j
            .job
            .stages
            .iter()
            .filter_map(|s| s.input.as_ref())
            .map(|d| d.skew_cv())
            .fold(0.0f64, f64::max);
        let est_error = {
            let errs: Vec<f64> = j
                .stages
                .iter()
                .zip(&j.job.stages)
                .filter(|(_, spec)| spec.task_secs > 0.0)
                .map(|(rt, spec)| ((rt.est_task_secs - spec.task_secs) / spec.task_secs).abs())
                .collect();
            if errs.is_empty() {
                0.0
            } else {
                errs.iter().sum::<f64>() / errs.len() as f64
            }
        };
        let outcome = JobOutcome {
            id: j.job.id,
            name: j.job.name.clone(),
            arrival: j.job.arrival,
            finished,
            response: finished - j.job.arrival,
            wan_gb: j.wan_gb,
            num_stages: j.job.num_stages(),
            total_tasks: j.job.total_tasks(),
            input_gb: j.job.input_gb(),
            intermediate_gb: j.job.expected_intermediate_gb(),
            input_skew_cv: input_skew,
            est_error,
            stage_spans: j
                .stages
                .iter()
                .map(|st| {
                    (
                        st.activated_at.unwrap_or(f64::NAN),
                        st.finished_at.unwrap_or(f64::NAN),
                    )
                })
                .collect(),
        };
        outcome.debug_assert_finite();
        outcome
    }

    /// Finalizes the run into a [`RunReport`]. Called by [`Engine::run`];
    /// also the terminal step for a front end that drove the engine through
    /// [`Engine::step_until_idle`].
    ///
    /// # Panics
    ///
    /// Panics if any admitted job is unfinished — only call after
    /// `step_until_idle` returned `Ok`.
    pub fn into_report(self) -> RunReport {
        let mut jobs = Vec::with_capacity(self.jobs.len());
        for j in &self.jobs {
            jobs.push(Self::job_outcome(j));
        }
        let makespan = jobs.iter().map(|j| j.finished).fold(0.0f64, f64::max);
        RunReport {
            scheduler: self.scheduler.name().to_string(),
            jobs,
            makespan,
            total_wan_gb: self.flows.total_wan_gb(),
            sched_invocations: self.sched_invocations,
            sched_wall_secs: self.sched_wall_secs,
            copies_launched: self.copies_launched,
            copies_won: self.copies_won,
            task_failures: self.task_failures,
            dynamics_events: self.dynamics_applied,
            trace: self.trace,
            obs: self.obs.finish(),
        }
    }
}

/// Runtime invariant auditing (feature `audit`, DESIGN.md §10): after every
/// processed event the engine re-derives its conservation invariants from
/// scratch and compares them with the incrementally maintained state,
/// panicking with the event context on the first divergence. The auditor is
/// read-only — it never influences the simulation, so an audit build
/// produces byte-identical output to a normal build (just slower).
#[cfg(feature = "audit")]
impl Engine {
    fn audit_check(&mut self, ctx: &str) {
        // 1. Event-time monotonicity, and the engine/flow clocks agree
        //    bitwise (every event path funnels through `advance_to`).
        self.auditor.check_time(self.now, ctx);
        assert!(
            self.flows.now().to_bits() == self.now.to_bits(),
            "audit[{ctx}]: engine clock {} != flow clock {}",
            self.now,
            self.flows.now()
        );
        // 2. No pending heap event sits in the past.
        if let Some(t) = self.events.peek_time() {
            assert!(
                t >= self.now,
                "audit[{ctx}]: event heap holds a past event at t={t} (now {})",
                self.now
            );
        }

        // 3. Slot-occupancy conservation: the per-site occupancy counters
        //    must equal the number of running attempts (original tasks
        //    holding a slot while fetching/computing, plus live speculative
        //    copies) recounted from scratch.
        let n = self.cluster.len();
        let mut running = vec![0usize; n];
        for job in &self.jobs {
            for st in &job.stages {
                for task in &st.tasks {
                    if matches!(
                        task.state,
                        TaskState::Fetching { .. } | TaskState::Computing { .. }
                    ) {
                        let site = task.run_site.expect("running task has a site");
                        running[site.index()] += 1;
                    }
                }
            }
        }
        for copy in self.copies.values() {
            running[copy.site.index()] += 1;
        }
        for s in 0..n {
            assert!(
                self.occupied[s] == running[s],
                "audit[{ctx}]: site {s} occupancy {} != running attempts {} \
                 (occupied={:?}, recount={:?}) at t={}",
                self.occupied[s],
                running[s],
                self.occupied,
                running,
                self.now
            );
        }

        // 4. Retry-budget monotonicity per task.
        for (j, job) in self.jobs.iter().enumerate() {
            for (s, st) in job.stages.iter().enumerate() {
                for (t, task) in st.tasks.iter().enumerate() {
                    self.auditor.check_retry(
                        (j, s, t),
                        task.retries,
                        self.cfg.max_task_retries,
                        ctx,
                    );
                }
            }
        }

        // 5. WAN-ledger conservation: per-job charges (made in full at
        //    launch) must equal the flow simulator's ledger plus the queued
        //    fetches that have not opened a flow yet. Every refund for a
        //    torn-down attempt must have been given back exactly once for
        //    this to hold mid-run.
        let per_job: f64 = self.jobs.iter().map(|j| j.wan_gb).sum();
        let mut queued_gb = 0.0f64;
        for job in &self.jobs {
            for st in &job.stages {
                for task in &st.tasks {
                    if let TaskState::Fetching { queued, .. } = &task.state {
                        queued_gb += queued.iter().map(|&(_, gb)| gb).sum::<f64>();
                    }
                }
            }
        }
        for copy in self.copies.values() {
            queued_gb += copy.queued.iter().map(|&(_, gb)| gb).sum::<f64>();
        }
        let flowsim_gb = self.flows.total_wan_gb();
        let expect = flowsim_gb + queued_gb;
        assert!(
            (per_job - expect).abs() <= 1e-6 * (1.0 + expect.abs()),
            "audit[{ctx}]: WAN ledger diverged: per-job charges {per_job} != \
             flowsim {flowsim_gb} + queued {queued_gb} at t={}",
            self.now
        );

        // 6. Flow-level invariants (bit-exact waterfill, link conservation,
        //    per-flow byte conservation).
        self.flows.audit(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{StagePlan, TaskAssignment};
    use tetrium_cluster::{DataDistribution, Site};
    use tetrium_jobs::JobId;

    /// The serve front end moves engines onto pool threads; this fails to
    /// compile if anything engine-reachable regresses to `Rc`/`RefCell`.
    #[test]
    fn engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Engine>();
    }

    /// A minimal site-locality scheduler used to exercise the engine: map
    /// tasks run where their partition lives, reduce tasks run proportional
    /// to intermediate data, FIFO priorities.
    struct LocalScheduler;

    impl Scheduler for LocalScheduler {
        fn name(&self) -> &str {
            "test-local"
        }

        fn schedule(&mut self, snap: &Snapshot) -> Vec<StagePlan> {
            let mut plans = Vec::new();
            for job in &snap.jobs {
                for st in &job.runnable {
                    let mut assignments = Vec::new();
                    for task in st.unlaunched() {
                        let site = match st.kind {
                            StageKind::Map => task.input_site.unwrap(),
                            StageKind::Reduce => {
                                // Largest-input site.
                                let mut best = 0;
                                for (i, v) in st.input_gb.iter().enumerate() {
                                    if *v > st.input_gb[best] {
                                        best = i;
                                    }
                                }
                                SiteId(best)
                            }
                        };
                        assignments.push(TaskAssignment {
                            task: task.index,
                            site,
                            priority: task.index as i64,
                        });
                    }
                    plans.push(StagePlan {
                        job: job.id,
                        stage: st.stage_index,
                        assignments,
                    });
                }
            }
            plans
        }
    }

    fn cluster2() -> Cluster {
        Cluster::new(vec![
            Site::new("a", 2, 1.0, 1.0),
            Site::new("b", 1, 1.0, 1.0),
        ])
    }

    #[test]
    fn single_map_job_runs_locally_with_waves() {
        // 4 map tasks of 1 s at site a (2 slots) -> 2 waves -> 2 s.
        let input = DataDistribution::new(vec![4.0, 0.0]);
        let job = Job::new(
            JobId(0),
            "m",
            0.0,
            vec![tetrium_jobs::Stage::root_map(input, 4, 1.0, 0.5)],
        );
        let report = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .run()
        .unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert!((report.jobs[0].response - 2.0).abs() < 1e-9);
        assert_eq!(report.total_wan_gb, 0.0);
    }

    #[test]
    fn map_reduce_shuffle_crosses_wan() {
        // Input at both sites; reduce runs at the larger site and fetches
        // the remote half over the WAN.
        let input = DataDistribution::new(vec![2.0, 2.0]);
        let job = Job::map_reduce(JobId(0), "mr", 0.0, input, 2, 1.0, 0.5, 1, 1.0);
        let report = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .run()
        .unwrap();
        // Map: 1 s (local, parallel). Intermediate: 1 GB per site. Reduce at
        // site a fetches 1 GB at 1 GB/s = 1 s, computes 1 s. Total 3 s.
        assert!((report.jobs[0].response - 3.0).abs() < 1e-9);
        assert!((report.total_wan_gb - 1.0).abs() < 1e-9);
        assert!((report.jobs[0].wan_gb - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_jobs_contend_for_slots() {
        let mk = |id: usize, arrival: f64| {
            Job::new(
                JobId(id),
                format!("j{id}"),
                arrival,
                vec![tetrium_jobs::Stage::root_map(
                    DataDistribution::new(vec![0.0, 2.0]),
                    2,
                    1.0,
                    1.0,
                )],
            )
        };
        let report = Engine::new(
            cluster2(),
            vec![mk(0, 0.0), mk(1, 0.0)],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .run()
        .unwrap();
        // Site b has 1 slot; 4 tasks of 1 s -> makespan 4 s.
        assert!((report.makespan - 4.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_drop_mid_run_slows_job() {
        // 4 tasks, 2 slots at site a; after 1 s the site drops to 1 slot,
        // so the remaining 2 tasks serialize: finish at 3 s instead of 2 s.
        let input = DataDistribution::new(vec![4.0, 0.0]);
        let job = Job::new(
            JobId(0),
            "m",
            0.0,
            vec![tetrium_jobs::Stage::root_map(input, 4, 1.0, 0.5)],
        );
        let report = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .with_drops(vec![CapacityDrop::new(SiteId(0), 0.5, 0.5)])
        .run()
        .unwrap();
        assert!(
            (report.jobs[0].response - 3.0).abs() < 1e-9,
            "response {}",
            report.jobs[0].response
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let input = DataDistribution::new(vec![3.0, 2.0]);
        let mk = || Job::map_reduce(JobId(0), "mr", 0.0, input.clone(), 5, 1.0, 0.5, 3, 1.0);
        let cfg = EngineConfig {
            duration_cv: 0.3,
            straggler_prob: 0.2,
            seed: 9,
            ..EngineConfig::default()
        };
        let r1 = Engine::new(
            cluster2(),
            vec![mk()],
            Box::new(LocalScheduler),
            cfg.clone(),
        )
        .run()
        .unwrap();
        let r2 = Engine::new(cluster2(), vec![mk()], Box::new(LocalScheduler), cfg)
            .run()
            .unwrap();
        assert_eq!(r1.jobs[0].response, r2.jobs[0].response);
        assert_eq!(r1.total_wan_gb, r2.total_wan_gb);
    }

    #[test]
    fn incremental_driving_matches_batch_run_bitwise() {
        // `run()` is seed + one `step_until_idle`; driving the same jobs
        // through `submit_job` between idle points must produce bitwise
        // identical outcomes when every submission lands at its arrival
        // time (job 1 arrives at t=4.0, after job 0's 4 s makespan, so
        // submitting it post-idle does not clamp its arrival).
        let input = DataDistribution::new(vec![3.0, 2.0]);
        let mk = |id: usize, arrival: f64| {
            Job::map_reduce(
                JobId(id),
                format!("j{id}"),
                arrival,
                input.clone(),
                5,
                1.0,
                0.5,
                3,
                1.0,
            )
        };
        let cfg = EngineConfig {
            duration_cv: 0.3,
            straggler_prob: 0.2,
            seed: 9,
            ..EngineConfig::default()
        };

        let batch = Engine::new(
            cluster2(),
            vec![mk(0, 0.0)],
            Box::new(LocalScheduler),
            cfg.clone(),
        )
        .run()
        .unwrap();

        let mut eng = Engine::new(cluster2(), vec![], Box::new(LocalScheduler), cfg);
        eng.seed_initial_events();
        assert_eq!(eng.num_jobs(), 0);
        assert!(eng.drain_finished().is_empty());
        eng.submit_job(mk(0, 0.0));
        eng.step_until_idle().unwrap();
        let drained = eng.drain_finished();
        assert_eq!(drained.len(), 1);
        assert_eq!(
            drained[0].response.to_bits(),
            batch.jobs[0].response.to_bits()
        );
        assert!(eng.drain_finished().is_empty(), "drain is once-only");

        // A second job admitted after idle runs on the same engine; its
        // outcome must match a fresh single-job run whose arrival equals
        // the admission time (an idle engine carries no residual state
        // other than the clock and RNG consumption — the latter only
        // matters under nonzero duration_cv, so pin a fresh-RNG config).
        let t_resume = eng.now();
        eng.submit_job(mk(1, t_resume));
        eng.step_until_idle().unwrap();
        let second = eng.drain_finished();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].id, JobId(1));
        assert!(second[0].finished > t_resume);
        let report = eng.into_report();
        assert_eq!(report.jobs.len(), 2);
        assert_eq!(
            report.jobs[0].response.to_bits(),
            batch.jobs[0].response.to_bits()
        );
    }

    #[test]
    fn submit_job_clamps_past_arrivals_to_now() {
        let input = DataDistribution::new(vec![2.0, 0.0]);
        let mk = |id: usize, arrival: f64| {
            Job::new(
                JobId(id),
                format!("j{id}"),
                arrival,
                vec![tetrium_jobs::Stage::root_map(input.clone(), 2, 1.0, 0.5)],
            )
        };
        let mut eng = Engine::new(
            cluster2(),
            vec![mk(0, 0.0)],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        );
        eng.seed_initial_events();
        eng.step_until_idle().unwrap();
        let t = eng.now();
        assert!(t > 0.0);
        // Nominal arrival 0.0 is in the engine's past; admission clamps it.
        eng.submit_job(mk(1, 0.0));
        eng.step_until_idle().unwrap();
        let report = eng.into_report();
        assert_eq!(report.jobs[1].arrival.to_bits(), t.to_bits());
        assert!(report.jobs[1].finished >= t);
    }

    #[test]
    fn speculation_rescues_or_completes_cleanly() {
        use crate::config::SpeculationConfig;
        // Forced stragglers with a huge multiplier spread: copies resample
        // their duration and often win. The run must stay consistent either
        // way (no double completion, slots balanced, WAN non-negative).
        let input = DataDistribution::new(vec![4.0, 4.0]);
        let job = Job::map_reduce(JobId(0), "spec", 0.0, input, 8, 1.0, 0.5, 4, 1.0);
        let cluster = Cluster::new(vec![
            Site::new("a", 6, 1.0, 1.0),
            Site::new("b", 6, 1.0, 1.0),
        ]);
        let cfg = EngineConfig {
            straggler_prob: 0.6,
            straggler_mult: (5.0, 60.0),
            speculation: Some(SpeculationConfig {
                threshold: 1.5,
                max_copies_frac: 0.5,
            }),
            batch: crate::config::BatchPolicy::Fixed(0.5),
            seed: 3,
            ..EngineConfig::default()
        };
        let report = Engine::new(cluster, vec![job], Box::new(LocalScheduler), cfg)
            .run()
            .unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert!(
            report.copies_launched > 0,
            "stragglers should trigger copies"
        );
        assert!(report.copies_won <= report.copies_launched);
        assert!(report.jobs[0].wan_gb >= 0.0);
    }

    #[test]
    fn speculation_off_launches_no_copies() {
        let input = DataDistribution::new(vec![2.0, 2.0]);
        let job = Job::map_reduce(JobId(0), "nospec", 0.0, input, 4, 1.0, 0.5, 2, 1.0);
        let report = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig {
                straggler_prob: 1.0,
                straggler_mult: (10.0, 20.0),
                seed: 1,
                ..EngineConfig::default()
            },
        )
        .run()
        .unwrap();
        assert_eq!(report.copies_launched, 0);
        assert_eq!(report.copies_won, 0);
    }

    #[test]
    fn trace_recording_captures_every_task() {
        let input = DataDistribution::new(vec![2.0, 2.0]);
        let job = Job::map_reduce(JobId(0), "tr", 0.0, input, 4, 1.0, 0.5, 2, 1.0);
        let report = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig {
                record_trace: true,
                ..EngineConfig::default()
            },
        )
        .run()
        .unwrap();
        assert_eq!(report.trace.len(), 6);
        for t in &report.trace {
            assert!(t.finished_at >= t.compute_started);
            assert!(t.compute_started >= t.launched_at - 1e-9);
            assert!(!t.was_copy);
        }
        // Off by default.
        let input = DataDistribution::new(vec![2.0, 2.0]);
        let job = Job::map_reduce(JobId(0), "tr", 0.0, input, 4, 1.0, 0.5, 2, 1.0);
        let r2 = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .run()
        .unwrap();
        assert!(r2.trace.is_empty());
    }

    #[test]
    fn failure_injection_rexecutes_until_done() {
        let input = DataDistribution::new(vec![3.0, 3.0]);
        let job = Job::map_reduce(JobId(0), "flaky", 0.0, input, 6, 1.0, 0.5, 3, 1.0);
        let report = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig {
                failure_prob: 0.3,
                seed: 17,
                ..EngineConfig::default()
            },
        )
        .run()
        .unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert!(
            report.task_failures > 0,
            "p=0.3 over 9 tasks should fail some"
        );
        // Every failure adds at least one task re-execution worth of time.
        assert!(report.jobs[0].response > 2.0);
        // No failures => counter stays zero.
        let input = DataDistribution::new(vec![3.0, 3.0]);
        let job = Job::map_reduce(JobId(0), "solid", 0.0, input, 6, 1.0, 0.5, 3, 1.0);
        let clean = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .run()
        .unwrap();
        assert_eq!(clean.task_failures, 0);
    }

    #[test]
    fn failures_and_speculation_compose() {
        use crate::config::SpeculationConfig;
        let input = DataDistribution::new(vec![4.0, 4.0]);
        let job = Job::map_reduce(JobId(0), "chaos", 0.0, input, 8, 1.0, 0.5, 4, 1.0);
        let cluster = Cluster::new(vec![
            Site::new("a", 6, 1.0, 1.0),
            Site::new("b", 6, 1.0, 1.0),
        ]);
        let report = Engine::new(
            cluster,
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig {
                failure_prob: 0.2,
                straggler_prob: 0.4,
                straggler_mult: (4.0, 30.0),
                speculation: Some(SpeculationConfig {
                    threshold: 1.5,
                    max_copies_frac: 0.5,
                }),
                batch: crate::config::BatchPolicy::Fixed(0.5),
                seed: 23,
                ..EngineConfig::default()
            },
        )
        .run()
        .unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert!(report.jobs[0].response.is_finite());
    }

    #[test]
    fn stalled_scheduler_is_reported() {
        struct NullScheduler;
        impl Scheduler for NullScheduler {
            fn name(&self) -> &str {
                "null"
            }
            fn schedule(&mut self, _s: &Snapshot) -> Vec<StagePlan> {
                Vec::new()
            }
        }
        let input = DataDistribution::new(vec![1.0, 0.0]);
        let job = Job::new(
            JobId(0),
            "m",
            0.0,
            vec![tetrium_jobs::Stage::root_map(input, 1, 1.0, 1.0)],
        );
        let err = Engine::new(
            cluster2(),
            vec![job],
            Box::new(NullScheduler),
            EngineConfig::default(),
        )
        .run()
        .unwrap_err();
        assert_eq!(err, SimError::Stalled { unfinished: 1 });
    }

    /// Speculation + capped fetch concurrency: a copy (or a cancelled
    /// original) leaves fetches *queued* behind the cap, which are charged
    /// to the job at launch but never reach the flow simulator. The refund
    /// paths must give those back, keeping per-job accounting in lockstep
    /// with `FlowSim::total_wan_gb`.
    #[test]
    fn speculation_with_capped_fetches_keeps_wan_accounting_exact() {
        use crate::config::SpeculationConfig;
        let cluster = Cluster::new(vec![
            Site::new("a", 8, 1.0, 1.0),
            Site::new("b", 8, 1.0, 1.0),
            Site::new("c", 8, 1.0, 1.0),
        ]);
        // Input on all three sites so every reduce task fetches from two
        // remote sites; with the cap at 1 one of them always queues.
        let input = DataDistribution::new(vec![4.0, 4.0, 4.0]);
        let mut copies_seen = 0;
        for seed in 0..8 {
            let job = Job::map_reduce(JobId(0), "capped", 0.0, input.clone(), 9, 1.0, 0.8, 6, 1.0);
            let report = Engine::new(
                cluster.clone(),
                vec![job],
                Box::new(LocalScheduler),
                EngineConfig {
                    straggler_prob: 0.6,
                    straggler_mult: (5.0, 60.0),
                    speculation: Some(SpeculationConfig {
                        threshold: 1.5,
                        max_copies_frac: 0.5,
                    }),
                    max_fetch_concurrency: 1,
                    batch: crate::config::BatchPolicy::Fixed(0.5),
                    seed,
                    ..EngineConfig::default()
                },
            )
            .run()
            .unwrap();
            copies_seen += report.copies_won;
            let per_job: f64 = report.jobs.iter().map(|j| j.wan_gb).sum();
            assert!(
                (per_job - report.total_wan_gb).abs() < 1e-6,
                "seed {seed}: per-job wan {per_job} != flowsim wan {}",
                report.total_wan_gb
            );
        }
        assert!(copies_seen > 0, "no seed produced a winning copy");
    }

    #[test]
    fn obs_recording_captures_run_and_is_off_by_default() {
        let mk = || {
            let input = DataDistribution::new(vec![2.0, 2.0]);
            Job::map_reduce(JobId(0), "obs", 0.0, input, 4, 1.0, 0.5, 2, 1.0)
        };
        let report = Engine::new(
            cluster2(),
            vec![mk()],
            Box::new(LocalScheduler),
            EngineConfig {
                record_obs: true,
                ..EngineConfig::default()
            },
        )
        .run()
        .unwrap();
        let obs = report.obs.expect("record_obs captures a report");
        // Every task produced a Done event; none was a copy.
        let done = obs
            .task_events
            .iter()
            .filter(|e| e.phase == TaskPhaseEvent::Done)
            .count();
        assert_eq!(done, 6);
        // Slot occupancy returned to zero everywhere and integrates to a
        // positive busy time at the active sites.
        for tl in &obs.slot_timeline {
            if let Some(&(_, occ)) = tl.last() {
                assert_eq!(occ, 0);
            }
        }
        assert!(obs.busy_secs(report.makespan).iter().sum::<f64>() > 0.0);
        // The WAN pair matrix reconciles with the flow simulator's ledger.
        assert!((obs.total_wan_gb() - report.total_wan_gb).abs() < 1e-9);
        // Scheduling instances were recorded with their triggers.
        assert_eq!(obs.sched.len(), report.sched_invocations);
        assert_eq!(obs.sched[0].trigger, Trigger::JobArrival);
        assert!(obs.sched.iter().any(|s| s.launched > 0));

        let off = Engine::new(
            cluster2(),
            vec![mk()],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .run()
        .unwrap();
        assert!(off.obs.is_none());
    }

    #[test]
    fn with_drops_matches_equivalent_dynamics_timeline() {
        use tetrium_cluster::{DynamicsChange, DynamicsEvent, DynamicsTimeline};
        let mk = || {
            let input = DataDistribution::new(vec![4.0, 0.0]);
            Job::new(
                JobId(0),
                "m",
                0.0,
                vec![tetrium_jobs::Stage::root_map(input, 4, 1.0, 0.5)],
            )
        };
        let legacy = Engine::new(
            cluster2(),
            vec![mk()],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .with_drops(vec![CapacityDrop::new(SiteId(0), 0.5, 0.5)])
        .run()
        .unwrap();
        let timeline = DynamicsTimeline::new(vec![DynamicsEvent::new(
            SiteId(0),
            0.5,
            DynamicsChange::Capacity { keep: 0.5 },
        )]);
        let explicit = Engine::new(
            cluster2(),
            vec![mk()],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .with_dynamics(timeline)
        .run()
        .unwrap();
        assert_eq!(legacy.jobs[0].response, explicit.jobs[0].response);
        assert_eq!(legacy.total_wan_gb, explicit.total_wan_gb);
        assert_eq!(legacy.dynamics_events, 1);
        assert_eq!(explicit.dynamics_events, 1);
    }

    #[test]
    fn recovery_restores_parallelism() {
        use tetrium_cluster::{DynamicsChange, DynamicsEvent, DynamicsTimeline};
        // 4 tasks, 2 slots at site a. Dropping to 1 slot at 0.5 s alone
        // serializes the second wave (3 s); recovering at 1.0 s restores
        // both slots exactly when the wave ends, so the run finishes in 2 s.
        let mk = || {
            let input = DataDistribution::new(vec![4.0, 0.0]);
            Job::new(
                JobId(0),
                "m",
                0.0,
                vec![tetrium_jobs::Stage::root_map(input, 4, 1.0, 0.5)],
            )
        };
        let timeline = DynamicsTimeline::new(vec![
            DynamicsEvent::new(SiteId(0), 0.5, DynamicsChange::Capacity { keep: 0.5 }),
            DynamicsEvent::new(SiteId(0), 1.0, DynamicsChange::Recover),
        ]);
        let report = Engine::new(
            cluster2(),
            vec![mk()],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .with_dynamics(timeline)
        .run()
        .unwrap();
        assert!(
            (report.jobs[0].response - 2.0).abs() < 1e-9,
            "response {}",
            report.jobs[0].response
        );
        assert_eq!(report.dynamics_events, 2);
    }

    /// A drop below the running task count must clamp and drain: occupancy
    /// stays accurate, no slot count goes negative, and no new task launches
    /// until enough running attempts finish.
    #[test]
    fn slot_drop_below_occupancy_clamps_and_drains() {
        use tetrium_cluster::{DynamicsChange, DynamicsEvent, DynamicsTimeline};
        // 6 tasks of 1 s, 2 slots. At 0.5 s the site keeps 1 slot while 2
        // attempts still run (occupied > capacity). They drain at 1.0 s;
        // the remaining 4 serialize on the single slot: 2, 3, 4, 5 s.
        let input = DataDistribution::new(vec![6.0, 0.0]);
        let job = Job::new(
            JobId(0),
            "m",
            0.0,
            vec![tetrium_jobs::Stage::root_map(input, 6, 1.0, 0.5)],
        );
        let timeline = DynamicsTimeline::new(vec![DynamicsEvent::new(
            SiteId(0),
            0.5,
            DynamicsChange::Capacity { keep: 0.5 },
        )]);
        let report = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig {
                record_obs: true,
                ..EngineConfig::default()
            },
        )
        .with_dynamics(timeline)
        .run()
        .unwrap();
        assert!(
            (report.jobs[0].response - 5.0).abs() < 1e-9,
            "response {}",
            report.jobs[0].response
        );
        let obs = report.obs.expect("obs recorded");
        let tl = &obs.slot_timeline[0];
        // Never oversubscribed beyond the pre-drop capacity, and once the
        // drop's drain completes occupancy never exceeds the clamped count.
        assert!(tl.iter().all(|&(_, occ)| occ <= 2));
        assert!(tl
            .iter()
            .filter(|&&(at, _)| at > 1.0 + 1e-9)
            .all(|&(_, occ)| occ <= 1));
        assert_eq!(tl.last().unwrap().1, 0);
    }

    #[test]
    fn outage_fails_running_tasks_and_recovery_completes_the_job() {
        use tetrium_cluster::{DynamicsChange, DynamicsEvent, DynamicsTimeline};
        // 4 local map tasks at site a. The outage at 0.5 s kills the two
        // running attempts; the site is dead until 1.5 s, then all four
        // tasks run from scratch in two waves: done at 3.5 s.
        let input = DataDistribution::new(vec![4.0, 0.0]);
        let job = Job::new(
            JobId(0),
            "m",
            0.0,
            vec![tetrium_jobs::Stage::root_map(input, 4, 1.0, 0.5)],
        );
        let timeline = DynamicsTimeline::new(vec![
            DynamicsEvent::new(SiteId(0), 0.5, DynamicsChange::Outage),
            DynamicsEvent::new(SiteId(0), 1.5, DynamicsChange::Recover),
        ]);
        let report = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig {
                record_obs: true,
                ..EngineConfig::default()
            },
        )
        .with_dynamics(timeline)
        .run()
        .unwrap();
        assert!(
            (report.jobs[0].response - 3.5).abs() < 1e-9,
            "response {}",
            report.jobs[0].response
        );
        assert_eq!(report.task_failures, 2);
        assert_eq!(report.dynamics_events, 2);
        let obs = report.obs.expect("obs recorded");
        assert_eq!(obs.counters.site_outages, 1);
        assert_eq!(obs.counters.dynamics_events, 2);
        assert_eq!(obs.counters.dynamics_retries, 2);
        assert_eq!(obs.counters.task_failures, 2);
    }

    #[test]
    fn outage_without_recovery_stalls() {
        use tetrium_cluster::{DynamicsChange, DynamicsEvent, DynamicsTimeline};
        let input = DataDistribution::new(vec![4.0, 0.0]);
        let job = Job::new(
            JobId(0),
            "m",
            0.0,
            vec![tetrium_jobs::Stage::root_map(input, 4, 1.0, 0.5)],
        );
        let timeline = DynamicsTimeline::new(vec![DynamicsEvent::new(
            SiteId(0),
            0.5,
            DynamicsChange::Outage,
        )]);
        // LocalScheduler insists on the dead input site, so nothing can be
        // re-placed and the run reports a stall instead of spinning.
        let err = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .with_dynamics(timeline)
        .run()
        .unwrap_err();
        assert_eq!(err, SimError::Stalled { unfinished: 1 });
    }

    /// An outage that kills a *fetching* attempt must refund the unsent
    /// remainder of its in-flight flows so the per-job WAN ledger stays in
    /// lockstep with the flow simulator's.
    #[test]
    fn outage_mid_fetch_refunds_wan_and_ledger_reconciles() {
        use tetrium_cluster::{DynamicsChange, DynamicsEvent, DynamicsTimeline};
        // Maps finish at 1 s leaving 1 GB of shuffle input at each site; the
        // reduce runs at a and starts pulling b's 1 GB at 1 GB/s. The outage
        // at 1.5 s kills it half-fetched (0.5 GB refunded); after recovery
        // at 2.0 s it re-fetches in full: done at 3.0, computed at 4.0.
        let input = DataDistribution::new(vec![2.0, 2.0]);
        let job = Job::map_reduce(JobId(0), "mr", 0.0, input, 2, 1.0, 0.5, 1, 1.0);
        let timeline = DynamicsTimeline::new(vec![
            DynamicsEvent::new(SiteId(0), 1.5, DynamicsChange::Outage),
            DynamicsEvent::new(SiteId(0), 2.0, DynamicsChange::Recover),
        ]);
        let report = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig::default(),
        )
        .with_dynamics(timeline)
        .run()
        .unwrap();
        assert!(
            (report.jobs[0].response - 4.0).abs() < 1e-9,
            "response {}",
            report.jobs[0].response
        );
        assert_eq!(report.task_failures, 1);
        // 0.5 GB moved by the doomed attempt + 1.0 GB by the retry.
        assert!(
            (report.jobs[0].wan_gb - 1.5).abs() < 1e-9,
            "wan {}",
            report.jobs[0].wan_gb
        );
        let per_job: f64 = report.jobs.iter().map(|j| j.wan_gb).sum();
        assert!(
            (per_job - report.total_wan_gb).abs() < 1e-6,
            "per-job wan {per_job} != flowsim wan {}",
            report.total_wan_gb
        );
    }

    #[test]
    fn exhausted_retries_abort_the_run() {
        let input = DataDistribution::new(vec![1.0, 0.0]);
        let job = Job::new(
            JobId(0),
            "m",
            0.0,
            vec![tetrium_jobs::Stage::root_map(input, 1, 1.0, 1.0)],
        );
        let err = Engine::new(
            cluster2(),
            vec![job],
            Box::new(LocalScheduler),
            EngineConfig {
                failure_prob: 1.0,
                max_task_retries: 2,
                ..EngineConfig::default()
            },
        )
        .run()
        .unwrap_err();
        assert_eq!(
            err,
            SimError::RetriesExhausted {
                job: 0,
                stage: 0,
                task: 0,
                retries: 3,
            }
        );
    }

    /// A winning copy's trace must carry the copy's own timeline, not the
    /// original's launch time glued to the copy's duration (which produced
    /// `compute_started < launched_at` and negative fetch times).
    #[test]
    fn trace_invariants_hold_with_winning_copies() {
        use crate::config::SpeculationConfig;
        let cluster = Cluster::new(vec![
            Site::new("a", 6, 1.0, 1.0),
            Site::new("b", 6, 1.0, 1.0),
        ]);
        let mut copies_traced = 0;
        for seed in 0..8 {
            let input = DataDistribution::new(vec![4.0, 4.0]);
            let job = Job::map_reduce(JobId(0), "spec-tr", 0.0, input, 8, 1.0, 0.5, 4, 1.0);
            let report = Engine::new(
                cluster.clone(),
                vec![job],
                Box::new(LocalScheduler),
                EngineConfig {
                    straggler_prob: 0.6,
                    straggler_mult: (5.0, 60.0),
                    speculation: Some(SpeculationConfig {
                        threshold: 1.5,
                        max_copies_frac: 0.5,
                    }),
                    batch: crate::config::BatchPolicy::Fixed(0.5),
                    record_trace: true,
                    seed,
                    ..EngineConfig::default()
                },
            )
            .run()
            .unwrap();
            assert_eq!(report.trace.len(), 12, "one trace per task");
            for t in &report.trace {
                assert!(
                    t.compute_started >= t.launched_at - 1e-9,
                    "seed {seed}: compute at {} before launch at {} (was_copy={})",
                    t.compute_started,
                    t.launched_at,
                    t.was_copy
                );
                assert!(t.finished_at >= t.compute_started - 1e-9);
                assert!(t.fetch_secs() >= 0.0);
                assert!(t.compute_secs() > 0.0);
                if t.was_copy {
                    copies_traced += 1;
                }
            }
        }
        assert!(copies_traced > 0, "no seed traced a winning copy");
    }
}
