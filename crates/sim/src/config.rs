//! Engine configuration knobs.

/// How slot releases are batched into scheduling instances (§5 of the paper:
/// "we batch the slots according to the average duration of the recently
/// finished tasks").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Every slot release triggers an immediate scheduling instance.
    None,
    /// Slot releases within a fixed window coalesce into one instance.
    Fixed(f64),
    /// The window adapts to `factor` × (mean duration of the most recently
    /// finished tasks), clamped to `[0, max_secs]` — the paper's policy.
    Adaptive {
        /// Multiplier on the recent mean task duration.
        factor: f64,
        /// Upper bound on the window in seconds.
        max_secs: f64,
    },
}

/// Speculative-execution settings (§8's orthogonal straggler mitigation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// A running task becomes a speculation candidate once its compute time
    /// exceeds `threshold` × the stage's estimated task duration.
    pub threshold: f64,
    /// Maximum fraction of a stage's tasks that may have live copies.
    pub max_copies_frac: f64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self {
            threshold: 2.0,
            max_copies_frac: 0.1,
        }
    }
}

/// Configuration of an engine run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Slot-release batching policy.
    pub batch: BatchPolicy,
    /// Lognormal coefficient of variation of actual task durations around
    /// their mean (ordinary runtime variance). Zero disables noise.
    pub duration_cv: f64,
    /// Probability that a task is a straggler.
    pub straggler_prob: f64,
    /// Multiplier applied to a straggler's duration, sampled uniformly from
    /// this range (the trace's stragglers, §6.1).
    pub straggler_mult: (f64, f64),
    /// Relative error bound of the per-stage duration estimates shown to the
    /// scheduler: the estimate is `true_mean * (1 + e)`, `e ~ U(-x, x)`
    /// (Fig 12d studies sensitivity to this error).
    pub estimation_error: f64,
    /// Maximum concurrent input fetches per task (a shuffle client opens a
    /// bounded number of connections; further sources queue behind them).
    pub max_fetch_concurrency: usize,
    /// Speculative straggler mitigation (the mainstream approach the paper
    /// treats as orthogonal, §8): when a task computes for longer than
    /// `threshold` × the stage's mean task estimate and free slots exist, a
    /// copy is launched at the least-loaded site; the first finisher wins.
    /// `None` disables speculation (the paper's configuration).
    pub speculation: Option<SpeculationConfig>,
    /// Probability that a task fails mid-compute and must re-run (the
    /// production trace's fail-over events, §6.1). A failed task returns to
    /// the unlaunched pool and is re-placed at the next scheduling instance;
    /// each attempt re-fails independently.
    pub failure_prob: f64,
    /// How many attempts of one task may be lost (to failure injection or
    /// to a site outage) before the run aborts with
    /// [`crate::SimError::RetriesExhausted`]. The generous default never
    /// triggers under realistic failure probabilities (p ≤ 0.5 over 32
    /// consecutive attempts is below 1e-9) but bounds the outage
    /// retry-with-re-placement loop.
    pub max_task_retries: usize,
    /// Record a [`crate::report::TaskTrace`] per finished task in the run
    /// report (timeline analysis; off by default to keep reports small).
    pub record_trace: bool,
    /// Record an [`tetrium_obs::ObsReport`] of the run: task lifecycle
    /// events, slot/link step-timelines, scheduling-instance records, WAN
    /// bytes by site pair and speculation/failure counters. Off by default;
    /// the disabled sink costs one branch per emission point.
    pub record_obs: bool,
    /// RNG seed; identical seeds give byte-identical runs.
    pub seed: u64,
}

impl Default for EngineConfig {
    /// Noise-free, unbatched, deterministic configuration — the right
    /// default for tests and for reproducing the paper's analytic examples.
    fn default() -> Self {
        Self {
            batch: BatchPolicy::None,
            duration_cv: 0.0,
            straggler_prob: 0.0,
            straggler_mult: (2.0, 6.0),
            estimation_error: 0.0,
            max_fetch_concurrency: 8,
            speculation: None,
            failure_prob: 0.0,
            max_task_retries: 32,
            record_trace: false,
            record_obs: false,
            seed: 0,
        }
    }
}

impl EngineConfig {
    /// Production-trace-like noise: modest duration variance, occasional
    /// stragglers, adaptive slot batching — mirrors the simulation settings
    /// of §6.1/§6.3.
    pub fn trace_like(seed: u64) -> Self {
        Self {
            batch: BatchPolicy::Adaptive {
                factor: 0.5,
                max_secs: 5.0,
            },
            duration_cv: 0.2,
            straggler_prob: 0.03,
            straggler_mult: (2.0, 6.0),
            estimation_error: 0.1,
            max_fetch_concurrency: 8,
            speculation: None,
            // Fail-over injection is available (`failure_prob`) but defaults
            // off here so the shipped EXPERIMENTS.md numbers regenerate
            // exactly from this configuration.
            failure_prob: 0.0,
            max_task_retries: 32,
            record_trace: false,
            record_obs: false,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noise_free() {
        let c = EngineConfig::default();
        assert_eq!(c.duration_cv, 0.0);
        assert_eq!(c.straggler_prob, 0.0);
        assert_eq!(c.estimation_error, 0.0);
        assert_eq!(c.batch, BatchPolicy::None);
    }

    #[test]
    fn speculation_defaults() {
        let s = SpeculationConfig::default();
        assert!(s.threshold > 1.0);
        assert!(s.max_copies_frac > 0.0 && s.max_copies_frac <= 1.0);
        assert!(EngineConfig::default().speculation.is_none());
    }

    #[test]
    fn trace_like_has_noise() {
        let c = EngineConfig::trace_like(1);
        assert!(c.duration_cv > 0.0);
        assert!(c.straggler_prob > 0.0);
        assert!(matches!(c.batch, BatchPolicy::Adaptive { .. }));
    }
}
