//! CLI for `tetrium-lint`. Run via `cargo lint` (alias) or
//! `cargo run -p tetrium-lint`. Exits non-zero when any finding remains.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let root = match args.next() {
        Some(p) => PathBuf::from(p),
        None => workspace_root(),
    };
    let findings = match tetrium_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tetrium-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        eprintln!("{}", f.render());
    }
    if findings.is_empty() {
        eprintln!("tetrium-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tetrium-lint: {} finding{} (suppress with `// lint:allow(Ln) -- reason`)",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// falling back to the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(|p| p.parent())
                .map(|p| p.to_path_buf())
                .unwrap_or(p)
        }
        Err(_) => PathBuf::from("."),
    }
}
