//! CLI for `tetrium-lint`. Run via `cargo lint` (alias) or
//! `cargo run -p tetrium-lint`.
//!
//! Modes:
//! * default — lint the workspace, ratchet against `lint_baseline.json`:
//!   findings beyond the baseline fail (exit 1); burned-down baseline
//!   keys print a stale warning (exit 0) prompting a baseline re-commit.
//! * `--json` — print the findings document to stdout (CI uploads this
//!   as an artifact); the ratchet still decides the exit code.
//! * `--update-baseline` — rewrite `lint_baseline.json` to accept the
//!   current findings, then exit 0.
//! * `--no-baseline` — ignore the baseline: any finding fails.
//!
//! An optional positional argument overrides the workspace root.

use std::path::PathBuf;
use std::process::ExitCode;
use tetrium_lint::baseline::{findings_to_json, Baseline};

fn main() -> ExitCode {
    let mut json = false;
    let mut update = false;
    let mut no_baseline = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--update-baseline" => update = true,
            "--no-baseline" => no_baseline = true,
            "--help" | "-h" => {
                eprintln!("usage: cargo lint [--json] [--update-baseline] [--no-baseline] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("tetrium-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let findings = match tetrium_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tetrium-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", findings_to_json(&findings));
    }

    let baseline_path = root.join("lint_baseline.json");
    if update {
        let doc = Baseline::from_findings(&findings).to_json();
        if let Err(e) = std::fs::write(&baseline_path, doc) {
            eprintln!(
                "tetrium-lint: failed to write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "tetrium-lint: baseline updated ({} finding{} accepted)",
            findings.len(),
            plural(findings.len())
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if no_baseline {
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("tetrium-lint: {} is invalid: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) => Baseline::default(),
        }
    };
    let ratchet = baseline.ratchet(&findings);
    if !json {
        for f in &ratchet.new {
            eprintln!("{}", f.render());
        }
    }
    for (key, recorded, current) in &ratchet.stale {
        eprintln!(
            "tetrium-lint: warning: baseline entry shrank ({} {} `{}`: {} -> {}); \
             run `cargo lint --update-baseline` and commit lint_baseline.json",
            key.0, key.1, key.2, recorded, current
        );
    }
    if ratchet.new.is_empty() {
        let suppressed = findings.len() - ratchet.new.len();
        eprintln!(
            "tetrium-lint: clean ({suppressed} baselined finding{})",
            plural(suppressed)
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tetrium-lint: {} new finding{} (fix, justify with \
             `// lint:allow(Ln, \"reason\")`, or — for accepted debt — \
             `cargo lint --update-baseline`)",
            ratchet.new.len(),
            plural(ratchet.new.len())
        );
        ExitCode::FAILURE
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// falling back to the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(|p| p.parent())
                .map(|p| p.to_path_buf())
                .unwrap_or(p)
        }
        Err(_) => PathBuf::from("."),
    }
}
