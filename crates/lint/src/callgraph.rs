//! Conservative, name-resolved call graph over the workspace function
//! table, plus transitive taint propagation for L7.
//!
//! Resolution is purely syntactic — no type inference — so it errs on the
//! side of over-connecting (several same-named methods all become
//! candidate callees) and compensates with a blocklist of ubiquitous
//! method names that would otherwise alias half of `std`. The taint pass
//! then runs on the *reverse* edges: a function tainted by an entropy /
//! wall-clock / unordered-iteration source taints every resolved caller,
//! carrying a breadcrumb chain (`calls \`helper\`, which iterates …`) so
//! the diagnostic at the call site explains the whole path.
//!
//! Known imprecision (see DESIGN.md §15): trait-object dispatch, function
//! pointers, closures passed as arguments and macro-generated calls are
//! invisible; same-named methods on unrelated types are conflated. The
//! first kind under-taints, the second over-taints — both are acceptable
//! for a ratcheted lint with an allow hatch, and neither can corrupt a
//! span (every site is a real token).

use crate::lexer::TokKind;
use crate::SourceFile;
use std::collections::BTreeMap;

/// Method names too generic to resolve: calling `.get(…)` on anything
/// would otherwise connect to every `fn get` in the workspace.
const METHOD_BLOCKLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "next",
    "into",
    "from",
    "into_iter",
    "as_ref",
    "as_mut",
    "unwrap",
    "expect",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "to_string",
    "send",
    "recv",
    "lock",
    "read",
    "write",
    "clear",
    "contains",
    "extend",
    "take",
    "min",
    "max",
    "abs",
    "sort",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "index",
    "name",
    "id",
    "kind",
    "value",
    "values",
    "keys",
];

/// One node of the graph: function `fn_idx` of file `file`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    pub file: usize,
    pub fn_idx: usize,
}

/// A resolved call edge endpoint recorded on the callee: who calls it and
/// where (token index of the callee name in the caller's file).
#[derive(Debug, Clone, Copy)]
pub struct CallerEdge {
    pub caller: usize,
    pub call_tok: usize,
}

/// Taint state of one node after propagation.
#[derive(Debug, Clone)]
pub struct Taint {
    /// Human-readable breadcrumb: for seeds, the source description; for
    /// transitively tainted nodes, `calls \`name\`, which <...>`.
    pub reason: String,
    /// Token index (in this node's file) of the call that imported the
    /// taint. `None` for seed nodes — their own body is the source.
    pub via_tok: Option<usize>,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Dense node list, file-major order (stable across runs).
    pub nodes: Vec<Node>,
    /// Reverse edges: `callers[n]` lists resolved call sites of node `n`.
    pub callers: Vec<Vec<CallerEdge>>,
    /// First node id of each file (for node lookup by `(file, fn_idx)`).
    base: Vec<usize>,
}

impl CallGraph {
    /// Node id for function `fn_idx` of file `file`.
    pub fn node_id(&self, file: usize, fn_idx: usize) -> usize {
        self.base[file] + fn_idx
    }

    /// Builds the graph from lexed+parsed files.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut nodes = Vec::new();
        let mut base = Vec::with_capacity(files.len());
        for (fi, f) in files.iter().enumerate() {
            base.push(nodes.len());
            for k in 0..f.syntax.fns.len() {
                nodes.push(Node {
                    file: fi,
                    fn_idx: k,
                });
            }
        }
        // Name indices over the whole table. BTreeMap keeps candidate
        // order deterministic.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (n, node) in nodes.iter().enumerate() {
            let f = &files[node.file].syntax.fns[node.fn_idx];
            by_name.entry(f.name.as_str()).or_default().push(n);
            if let Some(ty) = f.impl_type.as_deref() {
                by_typed.entry((ty, f.name.as_str())).or_default().push(n);
            }
        }

        let mut callers: Vec<Vec<CallerEdge>> = vec![Vec::new(); nodes.len()];
        for (fi, file) in files.iter().enumerate() {
            let toks = &file.lexed.toks;
            for (k, f) in file.syntax.fns.iter().enumerate() {
                let Some((lo, hi)) = f.body else { continue };
                let caller = base[fi] + k;
                for j in lo + 1..hi {
                    if toks[j].kind != TokKind::Ident
                        || !toks.get(j + 1).is_some_and(|n| n.is_punct("("))
                    {
                        continue;
                    }
                    let name = toks[j].text.as_str();
                    let prev = (j > lo).then(|| &toks[j - 1]);
                    // `fn name(` is the definition of a nested fn, not a call.
                    if prev.is_some_and(|p| p.is_ident("fn")) {
                        continue;
                    }
                    let candidates: &[usize] = if prev.is_some_and(|p| p.is_punct(".")) {
                        // `.method(` — any same-named method, blocklisted.
                        if METHOD_BLOCKLIST.contains(&name) {
                            continue;
                        }
                        match by_name.get(name) {
                            Some(c) => c,
                            None => continue,
                        }
                    } else if prev.is_some_and(|p| p.is_punct("::")) && j >= 2 {
                        let qual = &toks[j - 2];
                        if qual.kind != TokKind::Ident {
                            continue;
                        }
                        // `Self::m(` resolves via the caller's impl type;
                        // `Type::m(` via the typed index; a lowercase
                        // qualifier is a module path — fall back to name.
                        let ty = if qual.is_ident("Self") {
                            f.impl_type.as_deref()
                        } else {
                            Some(qual.text.as_str())
                        };
                        let typed = ty.and_then(|ty| by_typed.get(&(ty, name)));
                        match typed {
                            Some(c) => c,
                            None => {
                                let starts_lower =
                                    qual.text.chars().next().is_some_and(|c| c.is_lowercase());
                                match (starts_lower, by_name.get(name)) {
                                    (true, Some(c)) => c,
                                    _ => continue,
                                }
                            }
                        }
                    } else {
                        // Bare `name(` — free call.
                        match by_name.get(name) {
                            Some(c) => c,
                            None => continue,
                        }
                    };
                    for &callee in candidates {
                        if callee != caller {
                            callers[callee].push(CallerEdge {
                                caller,
                                call_tok: j,
                            });
                        }
                    }
                }
            }
        }
        CallGraph {
            nodes,
            callers,
            base,
        }
    }

    /// Propagates taint from `seeds` (node id, source description) to all
    /// transitive callers. Returns per-node taint state; seeds keep
    /// `via_tok: None`, propagated nodes record the importing call site.
    /// First-come wins: once a node is tainted, later (longer) paths don't
    /// overwrite its breadcrumb, so reasons stay shortest-path.
    pub fn propagate(
        &self,
        files: &[SourceFile],
        seeds: Vec<(usize, String)>,
    ) -> Vec<Option<Taint>> {
        let mut taint: Vec<Option<Taint>> = vec![None; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (n, reason) in seeds {
            if taint[n].is_none() {
                taint[n] = Some(Taint {
                    reason,
                    via_tok: None,
                });
                queue.push(n);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            let node = self.nodes[n];
            let callee_name = files[node.file].syntax.fns[node.fn_idx].name.clone();
            let reason = taint[n].as_ref().map(|t| t.reason.clone()).unwrap();
            for e in &self.callers[n] {
                if taint[e.caller].is_none() {
                    taint[e.caller] = Some(Taint {
                        reason: format!("calls `{callee_name}`, which {reason}"),
                        via_tok: Some(e.call_tok),
                    });
                    queue.push(e.caller);
                }
            }
        }
        taint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::FileSyntax;

    fn build(srcs: &[&str]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let lexed = lex(s);
                let syntax = FileSyntax::parse(&lexed);
                SourceFile {
                    path: format!("crates/core/src/f{i}.rs"),
                    lexed,
                    syntax,
                }
            })
            .collect();
        let g = CallGraph::build(&files);
        (files, g)
    }

    fn fn_node(files: &[SourceFile], g: &CallGraph, name: &str) -> usize {
        for (fi, f) in files.iter().enumerate() {
            for (k, f) in f.syntax.fns.iter().enumerate() {
                if f.name == name {
                    return g.node_id(fi, k);
                }
            }
        }
        panic!("no fn {name}");
    }

    #[test]
    fn free_call_links_across_files() {
        let (files, g) = build(&[
            "pub fn helper() -> u32 { 1 }",
            "fn caller() -> u32 { helper() + 1 }",
        ]);
        let h = fn_node(&files, &g, "helper");
        let c = fn_node(&files, &g, "caller");
        assert_eq!(g.callers[h].len(), 1);
        assert_eq!(g.callers[h][0].caller, c);
    }

    #[test]
    fn qualified_and_self_calls_resolve_via_impl_type() {
        let (files, g) = build(&["struct W;\n\
             impl W {\n\
                 fn source() {}\n\
                 fn relay() { Self::source(); }\n\
             }\n\
             fn outside() { W::relay(); }"]);
        let s = fn_node(&files, &g, "source");
        let r = fn_node(&files, &g, "relay");
        let o = fn_node(&files, &g, "outside");
        assert_eq!(
            g.callers[s].iter().map(|e| e.caller).collect::<Vec<_>>(),
            [r]
        );
        assert_eq!(
            g.callers[r].iter().map(|e| e.caller).collect::<Vec<_>>(),
            [o]
        );
    }

    #[test]
    fn blocklisted_method_names_do_not_link() {
        let (files, g) = build(&["struct S;\n\
             impl S { fn get(&self) -> u32 { 0 } }\n\
             fn f(s: &S) -> u32 { s.get() }"]);
        let get = fn_node(&files, &g, "get");
        assert!(g.callers[get].is_empty(), "`.get(` is too generic to link");
    }

    #[test]
    fn taint_propagates_transitively_with_breadcrumbs() {
        let (files, g) = build(&["fn source() {}\nfn mid() { source(); }\nfn top() { mid(); }"]);
        let s = fn_node(&files, &g, "source");
        let top = fn_node(&files, &g, "top");
        let taint = g.propagate(&files, vec![(s, "reads the wall clock".into())]);
        let t = taint[top].as_ref().expect("top is tainted");
        assert!(t.via_tok.is_some());
        assert_eq!(
            t.reason,
            "calls `mid`, which calls `source`, which reads the wall clock"
        );
    }
}
