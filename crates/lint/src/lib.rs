//! `tetrium-lint`: repo-specific determinism/ledger static analysis.
//!
//! Tetrium's reproduction contract is byte-identical figure/obs output
//! across `TETRIUM_THREADS` (DESIGN.md §7–§9), and its scheduling results
//! rest on exact WAN/slot ledger accounting. Four classes of Rust code have
//! historically broken one or the other, so this pass rejects them
//! mechanically:
//!
//! * **L1** — iteration over `HashMap`/`HashSet` in simulation-facing crates
//!   (`sim`, `net`, `cluster`, `baselines`, and any `sched` path). Keyed
//!   lookup is fine; iteration order is seeded by `RandomState` and leaks
//!   nondeterminism into event order. Use `BTreeMap`, a slab, or a sorted vec.
//! * **L2** — `partial_cmp` in comparator position anywhere in the
//!   workspace. `partial_cmp().unwrap()` float sorts panic on NaN and invite
//!   `sort_by` comparators that are not total orders; use `f64::total_cmp`
//!   or a documented NaN-free wrapper. (Definitions of `fn partial_cmp` in
//!   `PartialOrd` impls are exempt.)
//! * **L3** — wall-clock/entropy sources (`Instant::now`, `SystemTime`,
//!   `thread_rng`, `RandomState`) outside `crates/bench` timing code.
//! * **L4** — lossy `as` casts fed by float arithmetic on the ledger hot
//!   paths (`engine.rs`, `flowsim.rs`, `maxmin.rs`). Bytes, slots and rates
//!   must round through a named, documented helper, not an inline `as`.
//! * **L5** — dense matrix types (`Vec<Vec<f64>>` / `Vec<Vec<f32>>`) in the
//!   sparse-substrate crates (`crates/lp`, `crates/net`). The revised
//!   simplex and the waterfiller were rebuilt around CSC columns and sorted
//!   pair indices precisely to kill O(n²) storage at 1000 sites; a nested
//!   float `Vec` there is dense-matrix creep. Use `tetrium-lp::sparsela`
//!   structures or a sorted `(row, col)` index.
//!
//! Three dataflow rules run on top of a lightweight syntax layer
//! ([`syntax`]: brace-matched item extraction) and a conservative
//! name-resolved call graph ([`callgraph`]); see DESIGN.md §15:
//!
//! * **L6** — reachable panics (`.unwrap()`, `.expect(…)`, panicking
//!   macros, `expr[…]` indexing) in the sim-facing crates (`sim`, `net`,
//!   `lp`, `serve`, `obs`) outside `#[cfg(test)]` and audit-gated code.
//! * **L7** — transitive determinism taint: entropy / wall-clock /
//!   unordered-iteration sources anywhere in the workspace taint their
//!   resolved transitive callers; tainted functions in the
//!   deterministic-core crates are reported at the importing call site.
//! * **L8** — lock discipline in `crates/serve`: a `Mutex`/`RwLock` guard
//!   held across `.await` or a channel send, and inconsistent two-lock
//!   acquisition order.
//!
//! Escape hatch: `// lint:allow(L3) -- reason` suppresses a rule on the
//! marker's line and the line below it; `// lint:allow-file(L3) -- reason`
//! suppresses it for the whole file. For the token rules (L1–L5) a marker
//! without a reason still works; the dataflow rules (L6–L8) ignore
//! reasonless markers — write `lint:allow(L6, "why this is safe")`.
//!
//! Two engines share this crate: [`lint_source`] is the original per-file
//! token engine (L1–L5 only — kept verbatim so fixtures can prove what it
//! misses), and [`lint_sources`]/[`lint_workspace`] run the full
//! multi-file engine (L1–L8). CI consumes the latter as JSON
//! (`cargo lint --json`) ratcheted against `lint_baseline.json`; see
//! [`baseline`].

pub mod baseline;
pub mod callgraph;
pub mod lexer;
mod rules;
pub mod syntax;
mod walk;

use lexer::Lexed;
use std::path::Path;
use syntax::FileSyntax;

/// Lint rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// HashMap/HashSet iteration in simulation-facing code.
    L1,
    /// `partial_cmp` used as a comparator.
    L2,
    /// Wall-clock or entropy source outside bench code.
    L3,
    /// Lossy `as` cast on a ledger quantity.
    L4,
    /// Dense matrix type in a sparse-substrate crate.
    L5,
    /// Reachable panic (`unwrap`/`expect`/panicking macro/indexing) in a
    /// sim-facing crate.
    L6,
    /// Transitive determinism taint reaching a deterministic-core
    /// function.
    L7,
    /// Lock-discipline violation in `crates/serve`.
    L8,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
            Rule::L8 => "L8",
        }
    }

    /// The dataflow rules only honour `lint:allow` markers that carry a
    /// justification (`lint:allow(L6, "reason")` or a trailing
    /// `-- reason`).
    pub fn requires_reason(self) -> bool {
        matches!(self, Rule::L6 | Rule::L7 | Rule::L8)
    }
}

/// One diagnostic: a rule violation at a source span.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path (or the virtual path given to
    /// [`lint_source`]).
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Length of the underlined token text (for caret rendering).
    pub len: u32,
    pub message: String,
    /// The source line, for rendering.
    pub src_line: String,
}

impl Finding {
    /// Renders the finding in rustc style:
    /// `error[L3]: ...` / `--> path:line:col` / source + caret underline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("error[{}]: {}\n", self.rule.name(), self.message));
        out.push_str(&format!("  --> {}:{}:{}\n", self.path, self.line, self.col));
        out.push_str("   |\n");
        out.push_str(&format!("{:>3}| {}\n", self.line, self.src_line));
        let pad = " ".repeat(self.col.saturating_sub(1) as usize);
        let carets = "^".repeat(self.len.max(1) as usize);
        out.push_str(&format!("   | {pad}{carets}\n"));
        out
    }
}

/// One workspace source file, lexed and syntax-parsed: the unit the
/// multi-file engine and the call graph operate on.
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    pub lexed: Lexed,
    pub syntax: FileSyntax,
}

/// Lints a single file with the **original token engine** (L1–L5 only,
/// no syntax layer, no call graph). `virtual_path` determines rule scope,
/// so tests can lint snippets "as if" they lived at a given workspace
/// path. Kept verbatim so fixtures can demonstrate what per-file token
/// matching provably misses; everything real goes through
/// [`lint_sources`] / [`lint_workspace`].
pub fn lint_source(virtual_path: &str, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let mut findings = Vec::new();
    token_rules(virtual_path, &lexed, &mut findings);
    let findings = apply_allows(&lexed, findings);
    finalize(virtual_path, &lexed, findings)
}

/// The per-file token rules (L1–L5), scoped by path.
fn token_rules(path: &str, lexed: &Lexed, out: &mut Vec<rules::RawFinding>) {
    if rules::l1_applies(path) {
        rules::check_l1(lexed, out);
    }
    rules::check_l2(lexed, out);
    if rules::l3_applies(path) {
        rules::check_l3(lexed, out);
    }
    if rules::l4_applies(path) {
        rules::check_l4(lexed, out);
    }
    if rules::l5_applies(path) {
        rules::check_l5(lexed, out);
    }
}

/// Lints a set of files with the **full engine**: token rules (L1–L5)
/// per file, panic reachability (L6) against the syntax layer, lock
/// discipline (L8) across `crates/serve`, and determinism taint (L7)
/// propagated through the workspace call graph. Findings come back
/// sorted by (path, line, col, rule).
pub fn lint_sources(files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(path, src)| {
            let lexed = lexer::lex(src);
            let syntax = FileSyntax::parse(&lexed);
            SourceFile {
                path: path.clone(),
                lexed,
                syntax,
            }
        })
        .collect();
    let mut per_file: Vec<Vec<rules::RawFinding>> = parsed.iter().map(|_| Vec::new()).collect();
    for (fi, f) in parsed.iter().enumerate() {
        token_rules(&f.path, &f.lexed, &mut per_file[fi]);
        if rules::l6_applies(&f.path) {
            rules::check_l6(&f.lexed, &f.syntax, &mut per_file[fi]);
        }
    }
    rules::check_l8(&parsed, &mut per_file);
    let graph = callgraph::CallGraph::build(&parsed);
    rules::check_l7(&parsed, &graph, &mut per_file);

    let mut out = Vec::new();
    for (f, raw) in parsed.iter().zip(per_file) {
        let kept = apply_allows(&f.lexed, raw);
        out.extend(finalize(&f.path, &f.lexed, kept));
    }
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    out
}

/// Drops findings suppressed by `lint:allow` markers. Markers for rules
/// that [`Rule::requires_reason`] only count when they carry one.
fn apply_allows(lexed: &Lexed, findings: Vec<rules::RawFinding>) -> Vec<rules::RawFinding> {
    findings
        .into_iter()
        .filter(|f| {
            !lexed.allows.iter().any(|a| {
                a.rules.iter().any(|r| r == f.rule.name())
                    && (!f.rule.requires_reason() || a.reason.is_some())
                    && (a.whole_file || f.line == a.line || f.line == a.line + 1)
            })
        })
        .collect()
}

/// Attaches path and source-line context, sorts by position.
fn finalize(path: &str, lexed: &Lexed, raw: Vec<rules::RawFinding>) -> Vec<Finding> {
    let mut out: Vec<Finding> = raw
        .into_iter()
        .map(|f| Finding {
            rule: f.rule,
            path: path.to_string(),
            line: f.line,
            col: f.col,
            len: f.len,
            message: f.message,
            src_line: lexed
                .lines
                .get(f.line as usize - 1)
                .cloned()
                .unwrap_or_default(),
        })
        .collect();
    out.sort_by_key(|f| (f.line, f.col, f.rule));
    out
}

/// Lints every Rust source file under `root` (the workspace root) with
/// the full engine, excluding `vendor/`, `target/`, and fixture
/// directories. Returns findings sorted by (path, line, col).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = walk::rust_sources(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        sources.push((rel_str, src));
    }
    Ok(lint_sources(&sources))
}
