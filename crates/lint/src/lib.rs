//! `tetrium-lint`: repo-specific determinism/ledger static analysis.
//!
//! Tetrium's reproduction contract is byte-identical figure/obs output
//! across `TETRIUM_THREADS` (DESIGN.md §7–§9), and its scheduling results
//! rest on exact WAN/slot ledger accounting. Four classes of Rust code have
//! historically broken one or the other, so this pass rejects them
//! mechanically:
//!
//! * **L1** — iteration over `HashMap`/`HashSet` in simulation-facing crates
//!   (`sim`, `net`, `cluster`, `baselines`, and any `sched` path). Keyed
//!   lookup is fine; iteration order is seeded by `RandomState` and leaks
//!   nondeterminism into event order. Use `BTreeMap`, a slab, or a sorted vec.
//! * **L2** — `partial_cmp` in comparator position anywhere in the
//!   workspace. `partial_cmp().unwrap()` float sorts panic on NaN and invite
//!   `sort_by` comparators that are not total orders; use `f64::total_cmp`
//!   or a documented NaN-free wrapper. (Definitions of `fn partial_cmp` in
//!   `PartialOrd` impls are exempt.)
//! * **L3** — wall-clock/entropy sources (`Instant::now`, `SystemTime`,
//!   `thread_rng`, `RandomState`) outside `crates/bench` timing code.
//! * **L4** — lossy `as` casts fed by float arithmetic on the ledger hot
//!   paths (`engine.rs`, `flowsim.rs`, `maxmin.rs`). Bytes, slots and rates
//!   must round through a named, documented helper, not an inline `as`.
//! * **L5** — dense matrix types (`Vec<Vec<f64>>` / `Vec<Vec<f32>>`) in the
//!   sparse-substrate crates (`crates/lp`, `crates/net`). The revised
//!   simplex and the waterfiller were rebuilt around CSC columns and sorted
//!   pair indices precisely to kill O(n²) storage at 1000 sites; a nested
//!   float `Vec` there is dense-matrix creep. Use `tetrium-lp::sparsela`
//!   structures or a sorted `(row, col)` index.
//!
//! Escape hatch: `// lint:allow(L3) -- reason` suppresses a rule on the
//! marker's line and the line below it; `// lint:allow-file(L3) -- reason`
//! suppresses it for the whole file. Allow markers without a reason still
//! work, but reviewers should expect one.

pub mod lexer;
mod rules;
mod walk;

use lexer::Lexed;
use std::path::Path;

/// Lint rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// HashMap/HashSet iteration in simulation-facing code.
    L1,
    /// `partial_cmp` used as a comparator.
    L2,
    /// Wall-clock or entropy source outside bench code.
    L3,
    /// Lossy `as` cast on a ledger quantity.
    L4,
    /// Dense matrix type in a sparse-substrate crate.
    L5,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
        }
    }
}

/// One diagnostic: a rule violation at a source span.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path (or the virtual path given to
    /// [`lint_source`]).
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Length of the underlined token text (for caret rendering).
    pub len: u32,
    pub message: String,
    /// The source line, for rendering.
    pub src_line: String,
}

impl Finding {
    /// Renders the finding in rustc style:
    /// `error[L3]: ...` / `--> path:line:col` / source + caret underline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("error[{}]: {}\n", self.rule.name(), self.message));
        out.push_str(&format!("  --> {}:{}:{}\n", self.path, self.line, self.col));
        out.push_str("   |\n");
        out.push_str(&format!("{:>3}| {}\n", self.line, self.src_line));
        let pad = " ".repeat(self.col.saturating_sub(1) as usize);
        let carets = "^".repeat(self.len.max(1) as usize);
        out.push_str(&format!("   | {pad}{carets}\n"));
        out
    }
}

/// Lints a single file's source text. `virtual_path` determines rule scope
/// (which rules apply where), so tests can lint snippets "as if" they lived
/// at a given workspace path.
pub fn lint_source(virtual_path: &str, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let mut findings = Vec::new();
    if rules::l1_applies(virtual_path) {
        rules::check_l1(&lexed, &mut findings);
    }
    rules::check_l2(&lexed, &mut findings);
    if rules::l3_applies(virtual_path) {
        rules::check_l3(&lexed, &mut findings);
    }
    if rules::l4_applies(virtual_path) {
        rules::check_l4(&lexed, &mut findings);
    }
    if rules::l5_applies(virtual_path) {
        rules::check_l5(&lexed, &mut findings);
    }
    let findings = apply_allows(&lexed, findings);
    finalize(virtual_path, &lexed, findings)
}

/// Drops findings suppressed by `lint:allow` markers.
fn apply_allows(lexed: &Lexed, findings: Vec<rules::RawFinding>) -> Vec<rules::RawFinding> {
    findings
        .into_iter()
        .filter(|f| {
            !lexed.allows.iter().any(|a| {
                a.rules.iter().any(|r| r == f.rule.name())
                    && (a.whole_file || f.line == a.line || f.line == a.line + 1)
            })
        })
        .collect()
}

/// Attaches path and source-line context, sorts by position.
fn finalize(path: &str, lexed: &Lexed, raw: Vec<rules::RawFinding>) -> Vec<Finding> {
    let mut out: Vec<Finding> = raw
        .into_iter()
        .map(|f| Finding {
            rule: f.rule,
            path: path.to_string(),
            line: f.line,
            col: f.col,
            len: f.len,
            message: f.message,
            src_line: lexed
                .lines
                .get(f.line as usize - 1)
                .cloned()
                .unwrap_or_default(),
        })
        .collect();
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Lints every Rust source file under `root` (the workspace root),
/// excluding `vendor/`, `target/`, and fixture directories. Returns
/// findings sorted by (path, line, col).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = walk::rust_sources(root)?;
    let mut findings = Vec::new();
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(lint_source(&rel_str, &src));
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(findings)
}
