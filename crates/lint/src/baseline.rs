//! Machine-readable findings and the CI ratchet baseline.
//!
//! `cargo lint --json` emits findings as JSON; `lint_baseline.json` at
//! the workspace root records the accepted debt. Baseline entries are
//! keyed by **(rule, path, trimmed source line)** with a count — not by
//! line number — so unrelated edits that shift code up or down don't
//! invalidate the baseline, while any *new* occurrence of a flagged
//! pattern (count exceeds the recorded one) fails the build. When the
//! codebase burns debt down, the affected keys go **stale** (current
//! count below the recorded one); that's a warning prompting a
//! `cargo lint --update-baseline` re-commit, never a failure.
//!
//! Everything here is hand-rolled (writer + minimal JSON parser) to keep
//! the crate dependency-free.

use crate::Finding;
use std::collections::BTreeMap;

/// One baseline key: rule name, workspace-relative path, and the flagged
/// source line with surrounding whitespace trimmed.
pub type Key = (String, String, String);

fn key_of(f: &Finding) -> Key {
    (
        f.rule.name().to_string(),
        f.path.clone(),
        f.src_line.trim().to_string(),
    )
}

/// The accepted-findings baseline: key → occurrence count.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    pub entries: BTreeMap<Key, u32>,
}

/// Result of ratcheting current findings against a baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Findings beyond the baselined count — these fail the build. When a
    /// key's count grows from m to n, the last n−m findings of that group
    /// (by position) are reported.
    pub new: Vec<Finding>,
    /// Keys whose current count dropped below the baseline (debt burned
    /// down): (key, recorded, current). Warn and re-commit the baseline.
    pub stale: Vec<(Key, u32, u32)>,
}

impl Baseline {
    /// Builds a baseline that accepts exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: BTreeMap<Key, u32> = BTreeMap::new();
        for f in findings {
            *entries.entry(key_of(f)).or_default() += 1;
        }
        Baseline { entries }
    }

    /// Compares current findings against the baseline.
    pub fn ratchet(&self, findings: &[Finding]) -> Ratchet {
        let mut groups: BTreeMap<Key, Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            groups.entry(key_of(f)).or_default().push(f);
        }
        let mut out = Ratchet::default();
        for (key, group) in &groups {
            let allowed = self.entries.get(key).copied().unwrap_or(0) as usize;
            if group.len() > allowed {
                out.new
                    .extend(group[allowed..].iter().map(|f| (*f).clone()));
            }
        }
        for (key, &recorded) in &self.entries {
            let current = groups.get(key).map(|g| g.len() as u32).unwrap_or(0);
            if current < recorded {
                out.stale.push((key.clone(), recorded, current));
            }
        }
        out
    }

    /// Serializes to the committed `lint_baseline.json` format (stable
    /// order, one entry per line).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        let n = self.entries.len();
        for (i, ((rule, path, line_text), count)) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line_text\": {}, \"count\": {}}}{}\n",
                escape(rule),
                escape(path),
                escape(line_text),
                count,
                if i + 1 < n { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a committed baseline file.
    pub fn parse(json: &str) -> Result<Self, String> {
        let v = Json::parse(json)?;
        let entries_v = v
            .get("entries")
            .ok_or_else(|| "baseline: missing \"entries\"".to_string())?;
        let Json::Array(items) = entries_v else {
            return Err("baseline: \"entries\" is not an array".to_string());
        };
        let mut entries = BTreeMap::new();
        for item in items {
            let field = |name: &str| -> Result<&Json, String> {
                item.get(name)
                    .ok_or_else(|| format!("baseline entry: missing \"{name}\""))
            };
            let rule = field("rule")?.as_str()?.to_string();
            let path = field("path")?.as_str()?.to_string();
            let line_text = field("line_text")?.as_str()?.to_string();
            let count = field("count")?.as_u32()?;
            *entries.entry((rule, path, line_text)).or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }
}

/// Renders findings as the `cargo lint --json` document.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"findings\": [\n");
    let n = findings.len();
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
             \"len\": {}, \"message\": {}, \"line_text\": {}}}{}\n",
            escape(f.rule.name()),
            escape(&f.path),
            f.line,
            f.col,
            f.len,
            escape(&f.message),
            escape(f.src_line.trim()),
            if i + 1 < n { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// JSON string escaping (the subset our own content can contain, plus
/// control characters for safety).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value — just enough to read our own files back.
#[derive(Debug)]
enum Json {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(s: &str) -> Result<Json, String> {
        let chars: Vec<char> = s.chars().collect();
        let mut pos = 0usize;
        let v = parse_value(&chars, &mut pos)?;
        skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err(format!("trailing content at offset {pos}"));
        }
        Ok(v)
    }

    fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    fn as_u32(&self) -> Result<u32, String> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => Ok(*n as u32),
            other => Err(format!("expected non-negative integer, got {other:?}")),
        }
    }
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while *pos < c.len() && c[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(c: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(c, pos);
    match c.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(c, pos);
                let key = parse_string(c, pos)?;
                skip_ws(c, pos);
                if c.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(c, pos)?));
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(c, pos)?);
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some('"') => Ok(Json::Str(parse_string(c, pos)?)),
        Some('t') if c[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Json::Bool)
        }
        Some('f') if c[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Json::Bool)
        }
        Some('n') if c[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < c.len() && (c[*pos].is_ascii_digit() || "+-.eE".contains(c[*pos])) {
                *pos += 1;
            }
            let text: String = c[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at offset {start}"))
        }
    }
}

fn parse_string(c: &[char], pos: &mut usize) -> Result<String, String> {
    if c.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < c.len() {
        match c[*pos] {
            '"' => {
                *pos += 1;
                return Ok(out);
            }
            '\\' => {
                *pos += 1;
                match c.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = c
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .collect();
                        let n = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            ch => {
                out.push(ch);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_sources;

    fn sample_findings() -> Vec<Finding> {
        lint_sources(&[(
            "crates/sim/src/x.rs".to_string(),
            "fn f(v: &[u32], i: usize) -> u32 { v[i] + v[0] }".to_string(),
        )])
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let f = sample_findings();
        assert_eq!(f.len(), 2);
        let b = Baseline::from_findings(&f);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(b, parsed);
        // Everything baselined: no new, no stale.
        let r = parsed.ratchet(&f);
        assert!(r.new.is_empty() && r.stale.is_empty());
    }

    #[test]
    fn count_growth_fails_and_burndown_goes_stale() {
        let f = sample_findings();
        let one = &f[..1];
        let b = Baseline::from_findings(one);
        // Same key, higher count: exactly the excess is new.
        let r = b.ratchet(&f);
        assert_eq!(r.new.len(), 1);
        assert!(r.stale.is_empty());
        // Count dropped: stale warning, nothing new.
        let r = Baseline::from_findings(&f).ratchet(one);
        assert!(r.new.is_empty());
        assert_eq!(r.stale.len(), 1);
        assert_eq!((r.stale[0].1, r.stale[0].2), (2, 1));
    }

    #[test]
    fn line_drift_does_not_invalidate_the_baseline() {
        let b = Baseline::from_findings(&sample_findings());
        // Two blank lines on top: same trimmed line text, new line numbers.
        let drifted = lint_sources(&[(
            "crates/sim/src/x.rs".to_string(),
            "\n\nfn f(v: &[u32], i: usize) -> u32 { v[i] + v[0] }".to_string(),
        )]);
        let r = b.ratchet(&drifted);
        assert!(r.new.is_empty() && r.stale.is_empty(), "{r:#?}");
    }

    #[test]
    fn findings_json_escapes_and_lists_all_fields() {
        let f = sample_findings();
        let json = findings_to_json(&f);
        let v = Json::parse(&json).unwrap();
        let Some(Json::Array(items)) = v.get("findings") else {
            panic!("no findings array");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("rule").unwrap().as_str().unwrap(), "L6");
        assert!(items[0].get("line").unwrap().as_u32().unwrap() >= 1);
    }
}
