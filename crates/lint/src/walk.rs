//! Workspace file discovery for the lint pass.

use std::path::{Path, PathBuf};

/// Directories never descended into: vendored third-party code, build
/// output, VCS metadata, and lint test fixtures (which are known-bad on
/// purpose).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", "benchmarks"];

/// Returns all `.rs` files under `root`, as paths relative to `root`,
/// sorted so diagnostics are stable across platforms.
pub fn rust_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
            }
        }
    }
    out.sort();
    Ok(out)
}
