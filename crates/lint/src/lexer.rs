//! A minimal Rust lexer with source spans.
//!
//! The lint rules (see [`crate::rules`]) work on token sequences, not a full
//! AST: the hazards they police (`HashMap` iteration, `partial_cmp` on
//! floats, wall-clock calls, lossy casts) are all visible at the token
//! level, and a hand-rolled lexer keeps the tool dependency-free (the build
//! environment vendors no `syn`). The lexer understands everything needed to
//! avoid false positives from non-code text: line and nested block comments,
//! (raw/byte) string literals, char literals vs. lifetimes, and numeric
//! literals with suffixes.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`as`, `for`, `fn`, ... are plain idents here).
    /// Raw identifiers (`r#fn`) lex as one token whose text keeps the `r#`
    /// prefix, so an escaped keyword never looks like the keyword itself.
    Ident,
    /// Numeric literal (int or float, any base, with or without suffix).
    Num,
    /// String, raw-string, byte-string or char literal. `text` keeps the
    /// literal's source form (quotes included) so attribute scans can see
    /// e.g. `feature = "audit"`; rules never treat literal contents as
    /// code.
    Lit,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Punctuation. `::` is fused into a single token; everything else is a
    /// single character.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// Whether this numeric literal is written in float form (has a decimal
    /// point or a decimal exponent; hex/octal/binary literals never are).
    pub fn is_float_lit(&self) -> bool {
        if self.kind != TokKind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0X") {
            return false;
        }
        t.contains('.') || t.contains('e') || t.contains('E')
    }
}

/// An allowlist escape-hatch marker parsed from a comment.
///
/// `// lint:allow(L1, L3) -- reason` suppresses findings of the listed rules
/// on the marker's line and on the line directly below it (so a comment line
/// above the offending code works). `// lint:allow-file(L3) -- reason`
/// suppresses the rule for the whole file. The reason can also be given as
/// a quoted argument — `lint:allow(l6, "bounded by construction")` — and
/// rule names are case-insensitive. The dataflow rules (L6–L8) refuse
/// markers with no reason; see [`crate::Rule::requires_reason`].
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// Rule names, normalized to uppercase.
    pub rules: Vec<String>,
    pub line: u32,
    pub whole_file: bool,
    /// The justification text, from either a `"..."` argument or a
    /// trailing `-- reason`.
    pub reason: Option<String>,
}

/// Result of lexing one file.
#[derive(Debug)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<AllowMarker>,
    /// Source split into lines, for rendering diagnostics.
    pub lines: Vec<String>,
}

/// Lexes `src` into tokens, allow markers and source lines.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                bump!();
            }
            let text: String = chars[start..i].iter().collect();
            parse_allow(&text, tline, &mut allows);
            continue;
        }
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            let start = i;
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            let text: String = chars[start..i.min(chars.len())].iter().collect();
            parse_allow(&text, tline, &mut allows);
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# (any # count).
        if c == 'r' || (c == 'b' && i + 1 < chars.len() && chars[i + 1] == 'r') {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while j < chars.len() && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            // Raw identifier (`r#fn`, `r#impl`): one Ident token keeping the
            // `r#` prefix. Without this, `r#fn` lexed as `r`/`#`/`fn` and the
            // phantom keyword confused brace-matched item extraction.
            if c == 'r'
                && hashes == 1
                && j < chars.len()
                && (chars[j].is_alphabetic() || chars[j] == '_')
            {
                let start = i;
                while i < j {
                    bump!();
                }
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            if j < chars.len() && chars[j] == '"' {
                let start = i;
                // Consume prefix up to and including the opening quote.
                while i <= j {
                    bump!();
                }
                // Scan to closing quote followed by `hashes` hashes.
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && i + 1 + k < chars.len() && chars[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                bump!();
                            }
                            break 'raw;
                        }
                    }
                    bump!();
                }
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            // Not a raw string: fall through to identifier lexing.
        }
        // Strings and byte strings.
        if c == '"' || (c == 'b' && i + 1 < chars.len() && chars[i + 1] == '"') {
            let start = i;
            if c == 'b' {
                bump!();
            }
            bump!(); // opening quote
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    bump!();
                    bump!();
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            toks.push(Tok {
                kind: TokKind::Lit,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' || (c == 'b' && i + 1 < chars.len() && chars[i + 1] == '\'') {
            let q = if c == 'b' { i + 1 } else { i };
            // Char literal if the quote closes after one (possibly escaped)
            // character; otherwise it's a lifetime. One recovery case: a
            // two-scalar content whose second scalar is non-ASCII (a
            // combining-mark sequence like `'é́'`, or an emoji + modifier)
            // is a char literal as far as the rest of the stream is
            // concerned — the old lookahead called it a lifetime and left
            // the closing quote to corrupt every token after it. ASCII at
            // `q + 2` (as in `<'a,'b>`, quote three ahead) stays a
            // lifetime.
            let is_char = (q + 1 < chars.len() && chars[q + 1] == '\\')
                || (q + 2 < chars.len() && chars[q + 2] == '\'')
                || (q + 3 < chars.len() && chars[q + 3] == '\'' && !chars[q + 2].is_ascii());
            if is_char {
                let start = i;
                if c == 'b' {
                    bump!();
                }
                bump!(); // quote
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        bump!();
                        bump!();
                    } else if chars[i] == '\'' {
                        bump!();
                        break;
                    } else {
                        bump!();
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            } else {
                bump!(); // quote
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && i + 1 < chars.len() && matches!(chars[i + 1], 'x' | 'X' | 'o' | 'b') {
                bump!();
                bump!();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    bump!();
                }
                // Decimal point: only if followed by a digit (so `1.max(2)`
                // and `0..n` lex the dot separately).
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    bump!();
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        bump!();
                    }
                }
                // Exponent.
                if i < chars.len() && matches!(chars[i], 'e' | 'E') {
                    let mut j = i + 1;
                    if j < chars.len() && matches!(chars[j], '+' | '-') {
                        j += 1;
                    }
                    if j < chars.len() && chars[j].is_ascii_digit() {
                        while i < j {
                            bump!();
                        }
                        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            bump!();
                        }
                    }
                }
                // Type suffix (f64, u32, ...).
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // `::` fused; all other punctuation single-char.
        if c == ':' && i + 1 < chars.len() && chars[i + 1] == ':' {
            bump!();
            bump!();
            toks.push(Tok {
                kind: TokKind::Punct,
                text: "::".into(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        bump!();
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
    }

    Lexed {
        toks,
        allows,
        lines: src.lines().map(str::to_string).collect(),
    }
}

/// Parses `lint:allow(...)` / `lint:allow-file(...)` markers out of a
/// comment's text. Multiline block comments attribute each marker to the
/// line it actually sits on (not the comment's first line), so a marker in
/// the middle of a long `/* ... */` still suppresses the line below it.
fn parse_allow(comment: &str, line: u32, out: &mut Vec<AllowMarker>) {
    for (off, text) in comment.split('\n').enumerate() {
        parse_allow_line(text, line + off as u32, out);
    }
}

/// Parses the markers on one comment line.
fn parse_allow_line(comment: &str, line: u32, out: &mut Vec<AllowMarker>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow") {
        rest = &rest[pos + "lint:allow".len()..];
        let whole_file = rest.starts_with("-file");
        let after = if whole_file {
            &rest["-file".len()..]
        } else {
            rest
        };
        let Some(open) = after.find('(') else {
            continue;
        };
        let Some(close) = after[open..].find(')') else {
            continue;
        };
        let mut rules: Vec<String> = Vec::new();
        let mut reason: Option<String> = None;
        for arg in after[open + 1..open + close].split(',') {
            let arg = arg.trim();
            if arg.is_empty() {
                continue;
            }
            // A quoted argument is the reason; anything else is a rule name.
            if let Some(q) = arg.strip_prefix('"') {
                let q = q.strip_suffix('"').unwrap_or(q).trim();
                if !q.is_empty() {
                    reason = Some(q.to_string());
                }
            } else {
                rules.push(arg.to_ascii_uppercase());
            }
        }
        // `-- reason` trailing style: everything after `--`, up to the next
        // marker on the same line.
        let tail_end = after[open + close..]
            .find("lint:allow")
            .map_or(after.len(), |p| open + close + p);
        if reason.is_none() {
            if let Some(dd) = after[open + close..tail_end].find("--") {
                let r = after[open + close + dd + 2..tail_end].trim();
                if !r.is_empty() {
                    reason = Some(r.to_string());
                }
            }
        }
        if !rules.is_empty() {
            out.push(AllowMarker {
                rules,
                line,
                whole_file,
                reason,
            });
        }
        rest = &after[open + close..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_numbers_and_spans() {
        let l = lex("let x = 1.5;\nfoo.bar()");
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "foo", "bar"]);
        let num = l.toks.iter().find(|t| t.kind == TokKind::Num).unwrap();
        assert!(num.is_float_lit());
        assert_eq!((num.line, num.col), (1, 9));
        let foo = l.toks.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!((foo.line, foo.col), (2, 1));
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let l = lex("// HashMap here\n/* partial_cmp /* nested */ */\nlet s = \"thread_rng\";");
        assert!(!l.toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(!l.toks.iter().any(|t| t.is_ident("partial_cmp")));
        assert!(!l.toks.iter().any(|t| t.is_ident("thread_rng")));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let l = lex("let r = r#\"Instant::now\"#; let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(!l.toks.iter().any(|t| t.is_ident("Instant")));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn float_detection_excludes_hex_and_ints() {
        let l = lex("0x1e5 17 2.0 1e9 3f64");
        let floats: Vec<bool> = l.toks.iter().map(Tok::is_float_lit).collect();
        assert_eq!(floats, [false, false, true, true, false]);
    }

    #[test]
    fn allow_markers_parse() {
        let l = lex("// lint:allow(L1, L4) -- reason\nx();\n// lint:allow-file(L3)\n");
        assert_eq!(l.allows.len(), 2);
        assert_eq!(l.allows[0].rules, ["L1", "L4"]);
        assert_eq!(l.allows[0].line, 1);
        assert!(!l.allows[0].whole_file);
        assert!(l.allows[1].whole_file);
        assert_eq!(l.allows[1].rules, ["L3"]);
    }

    #[test]
    fn raw_identifiers_lex_as_single_tokens() {
        // `r#fn` must not leak a phantom `fn` keyword (or a stray `#`) into
        // the stream — the syntax layer would see a function item.
        let l = lex("let r#fn = 1; r#impl::go(r#type)");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "r#fn"));
        assert!(!l.toks.iter().any(|t| t.is_ident("fn")));
        assert!(!l.toks.iter().any(|t| t.is_ident("impl")));
        assert!(!l.toks.iter().any(|t| t.is_punct("#")));
        // A plain `r` binding still lexes as an identifier.
        let l = lex("let r = 1;");
        assert!(l.toks.iter().any(|t| t.is_ident("r")));
    }

    #[test]
    fn block_comment_allow_markers_keep_their_line() {
        // A marker inside a multiline block comment used to be attributed
        // to the comment's first line, so it suppressed the wrong lines.
        let l = lex("/* intro\n lint:allow(L3) -- reason\n */\nx();");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].line, 2);
    }

    #[test]
    fn multi_scalar_char_literal_does_not_corrupt_stream() {
        // 'é' + combining acute (two scalars) is invalid Rust, but the
        // lexer must consume it as one literal: the old lookahead called it
        // a lifetime and left the closing quote to corrupt what follows.
        let l = lex("let c = '\u{e9}\u{301}'; Instant::now()");
        assert!(l.toks.iter().any(|t| t.is_ident("Instant")));
        assert!(!l.toks.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn adjacent_lifetimes_stay_lifetimes() {
        // `<'a,'b>` puts a quote three chars after `'a`; that must not be
        // mistaken for a char literal.
        let l = lex("fn f<'a,'b>(x: &'a u8, y: &'b u8) {}");
        let lts: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lts, ["a", "b", "a", "b"]);
    }

    #[test]
    fn nasty_raw_strings_and_nested_comments_hide_their_contents() {
        let l = lex("br##\"x \"# Instant\"## /* /* SystemTime */ thread_rng */ ok");
        assert!(!l.toks.iter().any(|t| t.is_ident("Instant")));
        assert!(!l.toks.iter().any(|t| t.is_ident("SystemTime")));
        assert!(!l.toks.iter().any(|t| t.is_ident("thread_rng")));
        assert!(l.toks.iter().any(|t| t.is_ident("ok")));
    }

    #[test]
    fn allow_reason_parses_from_both_styles() {
        let l = lex(
            "// lint:allow(l6, \"bounded\")\n// lint:allow(L6) -- trailing reason\n// lint:allow(L6)\n",
        );
        assert_eq!(l.allows.len(), 3);
        assert_eq!(
            l.allows[0].rules,
            ["L6"],
            "rule names normalize to uppercase"
        );
        assert_eq!(l.allows[0].reason.as_deref(), Some("bounded"));
        assert_eq!(l.allows[1].reason.as_deref(), Some("trailing reason"));
        assert_eq!(l.allows[2].reason, None);
    }

    #[test]
    fn double_colon_fuses() {
        let l = lex("Instant::now()");
        assert!(l.toks[1].is_punct("::"));
        assert!(l.toks[0].is_ident("Instant") && l.toks[2].is_ident("now"));
    }
}
