//! L7 — transitive determinism taint.
//!
//! L1/L3 only see *direct* uses of unordered iteration and wall-clock /
//! entropy sources, and their path scopes stop at crate boundaries: a
//! helper in `crates/core` that iterates a `HashMap` is invisible to
//! both, even when every caller sits on the deterministic hot path. L7
//! closes the gap: it seeds taint at every L1/L3-shaped site in the
//! workspace (wherever it lives, test/audit/bench code excepted),
//! propagates it through the conservative call graph, and reports each
//! *transitively* tainted function in the deterministic-core crates at
//! the call site that imported the taint. Directly tainted functions are
//! not re-reported — those are L1/L3's job.

use super::{finding, token, RawFinding};
use crate::callgraph::CallGraph;
use crate::lexer::Lexed;
use crate::Rule;
use crate::SourceFile;

/// L7 reports in the deterministic core: the crates whose results must be
/// a pure function of the seed.
pub fn l7_applies(path: &str) -> bool {
    !super::is_test_path(path) && (super::l1_applies(path) || path.starts_with("crates/lp/"))
}

/// Taint seed sites in one file: (token index, reason). A site carrying a
/// `lint:allow(L1)`/`lint:allow(L3)` marker does not seed: the written
/// justification ("telemetry only", "sorted before use") covers the
/// dataflow consequence for callers too.
fn seed_sites(lexed: &Lexed) -> Vec<(usize, String)> {
    let mut v = Vec::new();
    for h in token::l1_hits(lexed) {
        if seed_allowed(lexed, h.tok, "L1") {
            continue;
        }
        v.push((
            h.tok,
            format!(
                "iterates hash collection `{}` (RandomState-seeded order)",
                h.binding
            ),
        ));
    }
    for tok in token::l3_hits(lexed) {
        if seed_allowed(lexed, tok, "L3") {
            continue;
        }
        v.push((
            tok,
            format!("reads wall-clock/entropy source `{}`", lexed.toks[tok].text),
        ));
    }
    v
}

/// Whether an allow marker for `rule` covers the token's line (same
/// matching as the finding-level suppression in `apply_allows`).
fn seed_allowed(lexed: &Lexed, tok: usize, rule: &str) -> bool {
    let line = lexed.toks[tok].line;
    lexed.allows.iter().any(|a| {
        a.rules.iter().any(|r| r == rule) && (a.whole_file || line == a.line || line == a.line + 1)
    })
}

/// L7: report transitively tainted deterministic-core functions. Findings
/// land in `per_file` (parallel to `files`).
pub fn check_l7(files: &[SourceFile], graph: &CallGraph, per_file: &mut [Vec<RawFinding>]) {
    let mut seeds = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        // Bench code legitimately reads the wall clock, and nothing on the
        // deterministic path can call into it.
        if f.path.starts_with("crates/bench/") {
            continue;
        }
        for (tok, reason) in seed_sites(&f.lexed) {
            let Some(k) = f.syntax.enclosing_fn(tok) else {
                continue;
            };
            let fun = &f.syntax.fns[k];
            if fun.test_only || fun.audit_only {
                continue;
            }
            seeds.push((graph.node_id(fi, k), reason));
        }
    }
    let taint = graph.propagate(files, seeds);
    for (n, t) in taint.iter().enumerate() {
        let Some(t) = t else { continue };
        // Seeds (via_tok: None) are direct uses — L1/L3 territory.
        let Some(via) = t.via_tok else { continue };
        let node = graph.nodes[n];
        let f = &files[node.file];
        if !l7_applies(&f.path) {
            continue;
        }
        let fun = &f.syntax.fns[node.fn_idx];
        if fun.test_only || fun.audit_only {
            continue;
        }
        let tok = &f.lexed.toks[via];
        per_file[node.file].push(finding(
            Rule::L7,
            tok,
            tok.text.len() as u32,
            format!(
                "determinism taint in `{}`: {}; deterministic-core results \
                 must be a pure function of the seed — sort the iteration or \
                 thread the seeded RNG through instead",
                fun.name, t.reason
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use crate::{lint_source, lint_sources, Rule};

    const HELPER: &str = "use std::collections::HashMap;\n\
                          pub fn merge_weights(m: &HashMap<u32, f64>) -> f64 {\n\
                              m.values().sum()\n\
                          }";
    const CALLER: &str = "fn schedule_round(w: f64) -> f64 {\n\
                              let x = merge_weights(&Default::default());\n\
                              w + x\n\
                          }";

    #[test]
    fn cross_crate_taint_flags_the_sim_caller_old_engine_misses_it() {
        // Old token engine: helper lives in crates/core (L1 out of scope),
        // caller never mentions a hash type — zero findings on both files.
        assert!(lint_source("crates/core/src/helpers.rs", HELPER).is_empty());
        assert!(lint_source("crates/sim/src/round.rs", CALLER).is_empty());
        // New engine: taint crosses the call edge into the sim crate.
        let f = lint_sources(&[
            ("crates/core/src/helpers.rs".to_string(), HELPER.to_string()),
            ("crates/sim/src/round.rs".to_string(), CALLER.to_string()),
        ]);
        let l7: Vec<_> = f.iter().filter(|f| f.rule == Rule::L7).collect();
        assert_eq!(l7.len(), 1, "{f:#?}");
        assert_eq!(l7[0].path, "crates/sim/src/round.rs");
        // `\n\` line continuations strip the indentation, so line 2 of the
        // fixture is `let x = merge_weights(...)` and the callee starts at
        // column 9.
        assert_eq!((l7[0].line, l7[0].col), (2, 9));
        assert!(l7[0].message.contains("merge_weights"));
        assert!(l7[0].message.contains("RandomState"));
    }

    #[test]
    fn direct_uses_are_left_to_l1_and_l3() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }";
        let f = lint_sources(&[("crates/sim/src/x.rs".to_string(), src.to_string())]);
        assert!(f.iter().any(|f| f.rule == Rule::L1));
        assert!(!f.iter().any(|f| f.rule == Rule::L7));
    }

    #[test]
    fn taint_does_not_reach_test_only_or_out_of_scope_callers() {
        let files = [
            ("crates/core/src/helpers.rs".to_string(), HELPER.to_string()),
            (
                "crates/cli/src/main.rs".to_string(),
                CALLER.to_string(), // out of scope: cli may be impure
            ),
            (
                "crates/sim/src/t.rs".to_string(),
                format!("#[cfg(test)]\nmod tests {{ {CALLER} }}"),
            ),
        ];
        let f = lint_sources(&files);
        assert!(!f.iter().any(|f| f.rule == Rule::L7), "{f:#?}");
    }
}
