//! Rule implementations.
//!
//! * [`token`] — the original per-file token rules (L1–L5).
//! * [`l6`] / [`l7`] / [`l8`] — the dataflow rules, built on the syntax
//!   layer ([`crate::syntax`]) and, for L7, the workspace call graph
//!   ([`crate::callgraph`]).

mod l6;
mod l7;
mod l8;
mod token;

pub use l6::{check_l6, l6_applies};
pub use l7::check_l7;
pub use l8::check_l8;
pub use token::{
    check_l1, check_l2, check_l3, check_l4, check_l5, l1_applies, l3_applies, l4_applies,
    l5_applies,
};

use crate::lexer::Tok;
use crate::Rule;

/// Integration tests, benches and examples live outside `#[cfg(test)]`
/// but are still non-production code: the dataflow rules (L6–L8) skip
/// them, like they skip `#[cfg(test)]` regions.
pub(crate) fn is_test_path(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/")
}

/// A finding before path/source-line context is attached.
#[derive(Debug)]
pub struct RawFinding {
    pub rule: Rule,
    pub line: u32,
    pub col: u32,
    pub len: u32,
    pub message: String,
}

pub(crate) fn finding(rule: Rule, tok: &Tok, len: u32, message: String) -> RawFinding {
    RawFinding {
        rule,
        line: tok.line,
        col: tok.col,
        len,
        message,
    }
}
