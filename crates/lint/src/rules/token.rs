//! The original five token-level rules (L1–L5), implemented over raw
//! token sequences — no syntax layer needed. The per-site detection for
//! L1 and L3 is factored into `l1_hits`/`l3_hits` (token indices, not
//! line/col) so the L7 determinism-taint rule can reuse them as seed
//! sources across the whole workspace.

use super::{finding, RawFinding};
use crate::lexer::{Lexed, Tok, TokKind};
use crate::Rule;
use std::collections::BTreeSet;

/// L1 applies to simulation-facing code: the engine, flow simulator,
/// cluster model, baselines, and any scheduler path.
pub fn l1_applies(path: &str) -> bool {
    path.starts_with("crates/sim/")
        || path.starts_with("crates/net/")
        || path.starts_with("crates/cluster/")
        || path.starts_with("crates/baselines/")
        || path.contains("sched")
}

/// L3 applies everywhere except bench timing code.
pub fn l3_applies(path: &str) -> bool {
    !path.starts_with("crates/bench/")
}

/// L4 applies to the ledger hot paths only.
pub fn l4_applies(path: &str) -> bool {
    path.ends_with("crates/sim/src/engine.rs")
        || path.ends_with("crates/net/src/flowsim.rs")
        || path.ends_with("crates/net/src/maxmin.rs")
        || path == "engine.rs"
        || path == "flowsim.rs"
        || path == "maxmin.rs"
}

/// L5 applies to the sparse-substrate crates: the LP solver and the network
/// model must not regrow dense O(n²) matrices.
pub fn l5_applies(path: &str) -> bool {
    path.starts_with("crates/lp/") || path.starts_with("crates/net/")
}

/// Iteration methods on `HashMap`/`HashSet` that expose `RandomState`
/// ordering.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
    "extract_if",
];

/// One unordered-iteration site: the flagged token's index, the hash
/// collection's binding name, and the iteration method (`None` for a bare
/// `for … in binding`).
pub(crate) struct L1Hit {
    pub tok: usize,
    pub binding: String,
    pub method: Option<String>,
}

/// L1: find bindings/fields typed or initialised as `HashMap`/`HashSet`,
/// then flag any iteration over them (method calls above, or appearing as a
/// `for .. in` iterable without a keyed accessor).
pub fn check_l1(lexed: &Lexed, out: &mut Vec<RawFinding>) {
    for h in l1_hits(lexed) {
        let t = &lexed.toks[h.tok];
        let message = match &h.method {
            Some(m) => format!(
                "iteration over hash collection `{}` via `.{}()`; \
                 HashMap/HashSet order is seeded by RandomState — use \
                 BTreeMap/BTreeSet or a sorted vec in simulation code",
                h.binding, m
            ),
            None => format!(
                "`for` iteration over hash collection `{}`; \
                 HashMap/HashSet order is seeded by RandomState — use \
                 BTreeMap/BTreeSet or a sorted vec in simulation code",
                h.binding
            ),
        };
        out.push(finding(Rule::L1, t, t.text.len() as u32, message));
    }
}

/// Token-level detection behind [`check_l1`], returning token indices so
/// L7 can seed taint from any file regardless of L1's path scope.
pub(crate) fn l1_hits(lexed: &Lexed) -> Vec<L1Hit> {
    let mut hits = Vec::new();
    let toks = &lexed.toks;
    // Pass A: collect binding names. Two shapes cover this codebase:
    //   `name: [std::collections::] HashMap<..>`   (fields, lets, args)
    //   `name = [path::] HashMap::new/with_capacity/default/from(..)`
    let mut names: BTreeSet<String> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std :: collections ::`-style path prefix, then
        // over reference sigils (`& 'a mut`) so `m: &HashMap<..>` args count.
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        while j >= 1
            && (toks[j - 1].is_punct("&")
                || toks[j - 1].is_ident("mut")
                || toks[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
            continue;
        }
        if j >= 2 && toks[j - 1].is_punct("=") && toks[j - 2].kind == TokKind::Ident {
            // `name = HashMap::new()` — only when followed by a constructor.
            if toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false) {
                names.insert(toks[j - 2].text.clone());
            }
        }
    }

    // An occurrence of a collected name only counts when it is the binding
    // itself: bare (`copies`) or on `self` (`self.copies`). A dotted access
    // on another receiver (`job.runnable`) is a different field that merely
    // shares the name.
    let is_binding_use = |i: usize| -> bool {
        if i >= 1 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::")) {
            toks[i - 1].is_punct(".") && i >= 2 && toks[i - 2].is_ident("self")
        } else {
            true
        }
    };

    // Pass B1: `name.iter()` and friends.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !names.contains(&t.text) || !is_binding_use(i) {
            continue;
        }
        if let (Some(dot), Some(m)) = (toks.get(i + 1), toks.get(i + 2)) {
            if dot.is_punct(".")
                && m.kind == TokKind::Ident
                && ITER_METHODS.contains(&m.text.as_str())
            {
                hits.push(L1Hit {
                    tok: i + 2,
                    binding: t.text.clone(),
                    method: Some(m.text.clone()),
                });
            }
        }
    }

    // Pass B2: `for x in [&[mut]] ...name... {` where `name` is not
    // immediately followed by `.` (a keyed accessor like `.get()` returning
    // an iterable value is fine; `.iter()` is caught by pass B1).
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Find the `in` for this loop header.
        let Some(in_pos) = toks[i + 1..]
            .iter()
            .position(|t| t.is_ident("in") || t.is_punct("{"))
            .map(|p| p + i + 1)
        else {
            break;
        };
        if !toks[in_pos].is_ident("in") {
            i = in_pos;
            continue;
        }
        // Scan the iterable expression up to the body `{`.
        let mut j = in_pos + 1;
        while j < toks.len() && !toks[j].is_punct("{") {
            let t = &toks[j];
            if t.kind == TokKind::Ident
                && names.contains(&t.text)
                && is_binding_use(j)
                && !toks.get(j + 1).map(|n| n.is_punct(".")).unwrap_or(false)
            {
                hits.push(L1Hit {
                    tok: j,
                    binding: t.text.clone(),
                    method: None,
                });
            }
            j += 1;
        }
        i = j;
    }
    hits
}

/// L2: `partial_cmp` used as a comparator (anywhere). Definitions
/// (`fn partial_cmp`) inside `PartialOrd` impls are exempt.
pub fn check_l2(lexed: &Lexed, out: &mut Vec<RawFinding>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("partial_cmp") {
            continue;
        }
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        out.push(finding(
            Rule::L2,
            t,
            t.text.len() as u32,
            "`partial_cmp` in comparator position; use `f64::total_cmp` (or a \
             documented NaN-free wrapper) so float sorts are total and \
             panic-free"
                .to_string(),
        ));
    }
}

/// L3: wall-clock / entropy sources outside bench code.
pub fn check_l3(lexed: &Lexed, out: &mut Vec<RawFinding>) {
    for i in l3_hits(lexed) {
        let t = &lexed.toks[i];
        out.push(finding(
            Rule::L3,
            t,
            t.text.len() as u32,
            format!(
                "wall-clock/entropy source `{}` outside bench timing code; \
                 simulation output must be a pure function of the seed",
                t.text
            ),
        ));
    }
}

/// Token indices of wall-clock/entropy reads (the detection behind
/// [`check_l3`]; reused as L7 taint seeds).
pub(crate) fn l3_hits(lexed: &Lexed) -> Vec<usize> {
    let toks = &lexed.toks;
    let mut hits = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            // `Instant` only counts when it is actually read (`Instant::now`):
            // mentioning the type (e.g. in a signature) is harmless.
            "Instant" => {
                toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false)
                    && toks.get(i + 2).map(|n| n.is_ident("now")).unwrap_or(false)
            }
            "SystemTime" | "thread_rng" | "RandomState" => true,
            _ => false,
        };
        if hit {
            hits.push(i);
        }
    }
    hits
}

/// Integer cast targets that truncate a float.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Method names that mark the casted expression as float arithmetic.
const FLOAT_METHODS: &[&str] = &[
    "ceil", "floor", "round", "trunc", "sqrt", "powf", "powi", "exp", "ln", "log2", "log10", "abs",
    "recip", "hypot", "mul_add", "min", "max", "clamp",
];

/// L4: `expr as <int>` where the primary expression on the left shows float
/// evidence (a float literal, an `f64`/`f32` mention, or a float method),
/// plus any `as f32` (f64→f32 silently loses ledger precision). The walk
/// skips backwards over matched `()`/`[]` groups — scanning their interiors
/// for evidence — and over `.`-/`::`-joined path segments.
pub fn check_l4(lexed: &Lexed, out: &mut Vec<RawFinding>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("as") {
            continue;
        }
        let Some(ty) = toks.get(i + 1) else { continue };
        if ty.kind != TokKind::Ident {
            continue;
        }
        if ty.text == "f32" {
            out.push(finding(
                Rule::L4,
                t,
                2,
                "lossy `as f32` cast on a ledger hot path; keep ledger \
                 quantities in f64"
                    .to_string(),
            ));
            continue;
        }
        if !INT_TYPES.contains(&ty.text.as_str()) {
            continue;
        }
        if cast_source_is_float(toks, i) {
            out.push(finding(
                Rule::L4,
                t,
                2,
                format!(
                    "lossy float-to-`{}` `as` cast on a ledger hot path; round \
                     through a named, documented helper instead of an inline \
                     cast",
                    ty.text
                ),
            ));
        }
    }
}

/// Is a token float evidence?
fn is_float_evidence(t: &Tok) -> bool {
    t.is_float_lit()
        || (t.kind == TokKind::Num && (t.text.ends_with("f64") || t.text.ends_with("f32")))
        || t.is_ident("f64")
        || t.is_ident("f32")
        || (t.kind == TokKind::Ident && FLOAT_METHODS.contains(&t.text.as_str()))
}

/// Walks backwards from the token before `as` over the primary expression
/// being cast, returning true if any part of it shows float evidence.
fn cast_source_is_float(toks: &[Tok], as_pos: usize) -> bool {
    let mut j = as_pos; // exclusive upper bound; inspect toks[j-1]
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(")") || t.is_punct("]") {
            // Skip the matched group, scanning its interior.
            let close = if t.is_punct(")") { ")" } else { "]" };
            let open = if t.is_punct(")") { "(" } else { "[" };
            let mut depth = 0usize;
            let mut k = j;
            while k > 0 {
                let u = &toks[k - 1];
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if is_float_evidence(u) {
                    return true;
                }
                k -= 1;
            }
            if k == 0 {
                return false; // unbalanced; bail conservatively
            }
            j = k - 1;
            continue;
        }
        if t.kind == TokKind::Ident || t.kind == TokKind::Num {
            if is_float_evidence(t) {
                return true;
            }
            // Part of the expression path (ident/field/number); keep walking
            // only if joined by `.`/`::`/`?` to more expression.
            j -= 1;
            continue;
        }
        if t.is_punct(".") || t.is_punct("::") || t.is_punct("?") {
            j -= 1;
            continue;
        }
        break; // any other punct ends the primary expression
    }
    false
}

/// L5: dense-matrix creep. A `Vec<Vec<f64>>` (or `f32`) in `crates/lp` or
/// `crates/net` reintroduces the O(n²) storage the sparse revised simplex
/// and the sharded waterfiller were built to avoid; flag the nested type
/// wherever it appears (field, binding, signature, or turbofish).
pub fn check_l5(lexed: &Lexed, out: &mut Vec<RawFinding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("Vec")
            && toks.get(i + 1).map(|t| t.is_punct("<")).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_ident("Vec")).unwrap_or(false)
            && toks.get(i + 3).map(|t| t.is_punct("<")).unwrap_or(false)
            && toks
                .get(i + 4)
                .map(|t| t.is_ident("f64") || t.is_ident("f32"))
                .unwrap_or(false))
        {
            continue;
        }
        // Underline through the closing `>>` when the type sits on one line.
        let mut end = i + 4;
        for j in [i + 5, i + 6] {
            if toks.get(j).map(|t| t.is_punct(">")).unwrap_or(false) {
                end = j;
            } else {
                break;
            }
        }
        let len = if toks[end].line == toks[i].line {
            toks[end].col + toks[end].text.len() as u32 - toks[i].col
        } else {
            3
        };
        let elem = toks[i + 4].text.clone();
        out.push(finding(
            Rule::L5,
            &toks[i],
            len,
            format!(
                "dense matrix type `Vec<Vec<{elem}>>` in a sparse-substrate \
                 crate; use a CSC matrix (`tetrium-lp::sparsela`) or a sorted \
                 (row, col) pair index instead"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_source;
    use crate::Rule;

    #[test]
    fn l4_flags_float_cast_and_spares_int_packing() {
        let bad = "fn f(n: f64) -> usize { (n * 1.5).ceil() as usize }";
        let f = lint_source("crates/net/src/maxmin.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::L4);
        // Pure integer packing must not fire.
        let good = "fn key(a: usize, b: usize) -> u64 { ((a as u64) << 32) | b as u64 }";
        assert!(lint_source("crates/net/src/maxmin.rs", good).is_empty());
    }

    #[test]
    fn l1_keyed_lookup_is_fine_iteration_is_not() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> u32 { *m.get(&1).unwrap() }";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::L1);
    }

    #[test]
    fn l2_definition_is_exempt() {
        let src =
            "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> { None } }";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn l3_skips_bench_and_type_mentions() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(lint_source("crates/sim/src/x.rs", src).len(), 1);
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        let sig = "fn f(deadline: Instant) {}";
        assert!(lint_source("crates/sim/src/x.rs", sig).is_empty());
    }

    #[test]
    fn l5_flags_nested_float_vec_only_in_sparse_crates() {
        let src = "struct M { rows: Vec<Vec<f64>> }";
        let f = lint_source("crates/lp/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::L5);
        assert_eq!(lint_source("crates/net/src/x.rs", src).len(), 1);
        // Same type outside the sparse substrate is someone else's problem.
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        // Sparse shapes don't fire: flat data + index vectors.
        let good = "struct Csc { data: Vec<f64>, rows: Vec<u32>, col_ptr: Vec<usize> }";
        assert!(lint_source("crates/lp/src/x.rs", good).is_empty());
        // Nested integer vecs (e.g. adjacency lists) are fine.
        let adj = "struct G { groups: Vec<Vec<u32>> }";
        assert!(lint_source("crates/net/src/x.rs", adj).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_on_next_line() {
        let src = "// lint:allow(L3) -- telemetry only\nfn f() { let t = Instant::now(); }";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
        let src = "// lint:allow(L1) -- wrong rule\nfn f() { let t = Instant::now(); }";
        assert_eq!(lint_source("crates/sim/src/x.rs", src).len(), 1);
    }
}
