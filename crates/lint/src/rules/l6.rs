//! L6 — panic reachability in sim-facing crates.
//!
//! A panic anywhere in `sim`/`net`/`lp`/`serve`/`obs` kills either a
//! deterministic replay or a serving task mid-request (PRs 7–9 each
//! shipped a fix for one that escaped review: empty-CDF `unwrap`,
//! homeless map tasks, non-UTF-8 paths). This rule makes the reachable
//! panic surface explicit: `.unwrap()` / `.expect(…)`, the panicking
//! macros, and `expr[…]` indexing, outside `#[cfg(test)]` and
//! audit-gated code. Every remaining site must either become a typed
//! error or carry `lint:allow(L6, "reason")` — the reason string is
//! mandatory for this rule (see [`crate::Rule::requires_reason`]).

use super::{finding, RawFinding};
use crate::lexer::{Lexed, TokKind};
use crate::syntax::FileSyntax;
use crate::Rule;

/// L6 applies to the crates whose panics take down a simulation replay or
/// a serving task.
pub fn l6_applies(path: &str) -> bool {
    !super::is_test_path(path)
        && [
            "crates/sim/",
            "crates/net/",
            "crates/lp/",
            "crates/serve/",
            "crates/obs/",
        ]
        .iter()
        .any(|p| path.starts_with(p))
}

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede a `[` without being an indexing
/// receiver (slice patterns, `in [..]` array expressions, `return [..]`).
const NON_RECEIVER_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "for", "while",
    "loop", "break", "continue", "where", "impl", "fn", "pub", "use", "mod", "struct", "enum",
    "trait", "type", "const", "static", "unsafe", "async", "await", "dyn", "box", "yield",
];

/// L6: reachable panics outside test/audit code.
pub fn check_l6(lexed: &Lexed, syn: &FileSyntax, out: &mut Vec<RawFinding>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if syn.in_test_code(i) || syn.in_audit_code(i) {
            continue;
        }
        // `.unwrap()` / `.expect(…)`.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            out.push(finding(
                Rule::L6,
                t,
                t.text.len() as u32,
                format!(
                    "`.{}()` reachable on a sim-facing path; return a typed \
                     error, prove the invariant upstream, or justify with \
                     `lint:allow(L6, \"reason\")`",
                    t.text
                ),
            ));
            continue;
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(finding(
                Rule::L6,
                t,
                t.text.len() as u32 + 1,
                format!(
                    "`{}!` reachable on a sim-facing path; return a typed \
                     error or justify with `lint:allow(L6, \"reason\")`",
                    t.text
                ),
            ));
            continue;
        }
        // Indexing: `recv[…]` where `recv` ends in an identifier, `)` or
        // `]`. Array literals, slice patterns, attributes and types all
        // have punctuation (or a keyword) before the `[`, so they don't
        // match.
        if t.is_punct("[") && i > 0 {
            let p = &toks[i - 1];
            let is_recv = match p.kind {
                TokKind::Ident => !NON_RECEIVER_KEYWORDS.contains(&p.text.as_str()),
                TokKind::Punct => p.is_punct(")") || p.is_punct("]"),
                _ => false,
            };
            if is_recv {
                out.push(finding(
                    Rule::L6,
                    t,
                    1,
                    "indexing can panic on a sim-facing path; use \
                     `.get(..)`/`.get_mut(..)`, or justify the bound with \
                     `lint:allow(L6, \"reason\")`"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{lint_sources, Rule};

    fn l6(path: &str, src: &str) -> Vec<crate::Finding> {
        lint_sources(&[(path.to_string(), src.to_string())])
            .into_iter()
            .filter(|f| f.rule == Rule::L6)
            .collect()
    }

    #[test]
    fn unwrap_expect_and_panic_macros_fire_outside_tests() {
        let src = "fn f(v: Vec<u32>) -> u32 {\n\
                       let a = v.first().unwrap();\n\
                       let b = v.last().expect(\"non-empty\");\n\
                       if *a > *b { panic!(\"inverted\") }\n\
                       *a\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t(v: Vec<u32>) { v.first().unwrap(); } }";
        let f = l6("crates/sim/src/x.rs", src);
        assert_eq!(f.len(), 3, "{f:#?}");
        assert_eq!((f[0].line, f[0].rule), (2, Rule::L6));
    }

    #[test]
    fn indexing_fires_but_patterns_and_literals_do_not() {
        let hit = "fn f(v: &[u32], i: usize) -> u32 { v[i] }";
        assert_eq!(l6("crates/net/src/x.rs", hit).len(), 1);
        // Slice pattern, array literal, array type: no receiver before `[`.
        let ok = "fn f() -> [u8; 2] { let [a, b] = [1u8, 2]; [a, b] }";
        assert!(l6("crates/net/src/x.rs", ok).is_empty());
    }

    #[test]
    fn scope_excludes_non_sim_crates() {
        let src = "fn f(v: Vec<u32>) -> u32 { v[0] }";
        assert!(l6("crates/cli/src/x.rs", src).is_empty());
        assert_eq!(l6("crates/obs/src/x.rs", src).len(), 1);
    }

    #[test]
    fn allow_requires_a_reason_for_l6() {
        let no_reason = "fn f(v: &[u32]) -> u32 {\n\
                             // lint:allow(L6)\n\
                             v[0]\n\
                         }";
        assert_eq!(l6("crates/sim/src/x.rs", no_reason).len(), 1);
        let with_reason = "fn f(v: &[u32]) -> u32 {\n\
                               // lint:allow(l6, \"len checked by caller\")\n\
                               v[0]\n\
                           }";
        assert!(l6("crates/sim/src/x.rs", with_reason).is_empty());
    }
}
