//! L8 — lock discipline in `crates/serve`.
//!
//! The serve front end is the only place the workspace holds locks on an
//! async executor, and two shapes have bitten similar codebases hard
//! enough to police mechanically:
//!
//! 1. **Guard across a suspension point**: a `Mutex`/`RwLock` guard
//!    (`.lock()` / `.read()` / `.write()`, zero-arg — the arg-taking
//!    `io::Read::read`/`Write::write` never match) alive across an
//!    `.await` or a channel `send`. A std guard held across `.await`
//!    blocks the worker thread (or deadlocks a single-threaded runtime);
//!    holding one across a bounded-channel `send` turns backpressure into
//!    a lock convoy.
//! 2. **Inconsistent two-lock order**: the crate acquires lock `B` while
//!    holding `A` in one place and `A` while holding `B` in another. The
//!    canonical order is lexicographic by receiver path; only the sites
//!    violating it are flagged.
//!
//! Guard lifetimes are tracked syntactically: a named guard
//! (`let g = x.lock()…;`) lives to the end of its enclosing block or an
//! explicit `drop(g)`; a temporary guard lives to the end of its
//! statement (the next `;` at bracket depth 0).

use super::{finding, RawFinding};
use crate::lexer::{Tok, TokKind};
use crate::{Rule, SourceFile};
use std::collections::BTreeSet;

/// L8 applies to the async front end only.
pub fn l8_applies(path: &str) -> bool {
    !super::is_test_path(path) && path.starts_with("crates/serve/")
}

/// Channel-send methods that must not run under a guard.
const SEND_METHODS: &[&str] = &["send", "try_send", "blocking_send"];

/// One lock acquisition inside a function body.
struct Acquisition {
    /// Token index of the `lock`/`read`/`write` method name.
    method_tok: usize,
    /// Dotted receiver path (`self.state`), or `<expr>` when the receiver
    /// is not a plain path.
    receiver: String,
    /// Guard variable name for `let g = …` bindings.
    guard: Option<String>,
    /// Token range `(start, end]` during which the guard is alive.
    alive: (usize, usize),
}

/// L8: guards across suspension points and inconsistent lock order.
/// Order pairs are aggregated across every serve file before flagging, so
/// the two halves of an inversion can live in different modules.
pub fn check_l8(files: &[SourceFile], per_file: &mut [Vec<RawFinding>]) {
    // (first-receiver, second-receiver, file, second-acquisition token)
    let mut pairs: Vec<(String, String, usize, usize)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !l8_applies(&f.path) {
            continue;
        }
        for fun in &f.syntax.fns {
            if fun.test_only || fun.audit_only {
                continue;
            }
            let Some((lo, hi)) = fun.body else { continue };
            let acqs = find_acquisitions(&f.lexed.toks, lo, hi);
            flag_suspensions(&f.lexed.toks, &acqs, &mut per_file[fi]);
            // Overlapping named-guard pairs feed the order table.
            for (a_idx, a) in acqs.iter().enumerate() {
                if a.guard.is_none() {
                    continue;
                }
                for b in &acqs[a_idx + 1..] {
                    if b.method_tok <= a.alive.1
                        && b.receiver != a.receiver
                        && a.receiver != "<expr>"
                        && b.receiver != "<expr>"
                    {
                        pairs.push((a.receiver.clone(), b.receiver.clone(), fi, b.method_tok));
                    }
                }
            }
        }
    }
    // Inversions: both (a, b) and (b, a) observed somewhere in the crate.
    let observed: BTreeSet<(String, String)> = pairs
        .iter()
        .map(|(a, b, _, _)| (a.clone(), b.clone()))
        .collect();
    for (a, b, fi, tok) in &pairs {
        if a > b && observed.contains(&(b.clone(), a.clone())) {
            let t = &files[*fi].lexed.toks[*tok];
            per_file[*fi].push(finding(
                Rule::L8,
                t,
                t.text.len() as u32,
                format!(
                    "inconsistent lock order: `{b}` acquired while holding \
                     `{a}`, but the opposite order exists elsewhere in \
                     crates/serve; acquire in lexicographic receiver order \
                     (`{b}` before `{a}`) everywhere"
                ),
            ));
        }
    }
}

/// Scans a body for zero-arg `.lock()`/`.read()`/`.write()` calls and
/// computes each guard's syntactic lifetime.
fn find_acquisitions(toks: &[Tok], lo: usize, hi: usize) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in lo + 1..hi {
        let t = &toks[i];
        if !(t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")) {
            continue;
        }
        let zero_arg_method = i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(")"));
        if !zero_arg_method {
            continue;
        }
        let receiver = receiver_path(toks, i - 1);
        let guard = guard_binding(toks, i, lo);
        let alive_end = match &guard {
            Some(name) => guard_end(toks, i, hi, name),
            None => statement_end(toks, i, hi),
        };
        out.push(Acquisition {
            method_tok: i,
            receiver,
            guard,
            alive: (i, alive_end),
        });
    }
    out
}

/// Flags `.await` / channel sends inside any acquisition's alive range.
fn flag_suspensions(toks: &[Tok], acqs: &[Acquisition], out: &mut Vec<RawFinding>) {
    for a in acqs {
        for j in a.alive.0 + 1..=a.alive.1.min(toks.len() - 1) {
            if !(j > 0 && toks[j - 1].is_punct(".")) {
                continue;
            }
            let t = &toks[j];
            if t.is_ident("await") {
                out.push(finding(
                    Rule::L8,
                    t,
                    5,
                    format!(
                        "`.await` while the guard from `{}.{}()` is held; a \
                         blocking guard across a suspension point stalls the \
                         worker (or deadlocks); drop the guard first",
                        a.receiver, toks[a.method_tok].text
                    ),
                ));
            } else if t.kind == TokKind::Ident
                && SEND_METHODS.contains(&t.text.as_str())
                && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
            {
                out.push(finding(
                    Rule::L8,
                    t,
                    t.text.len() as u32,
                    format!(
                        "channel `.{}()` while the guard from `{}.{}()` is \
                         held; backpressure under a lock becomes a convoy — \
                         drop the guard before sending",
                        t.text, a.receiver, toks[a.method_tok].text
                    ),
                ));
            }
        }
    }
}

/// Reconstructs the dotted receiver path ending at the `.` before the
/// method name (`self . state . lock` → `self.state`).
fn receiver_path(toks: &[Tok], dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut k = dot;
    while k >= 1 {
        let r = &toks[k - 1];
        if r.kind == TokKind::Ident {
            parts.push(r.text.clone());
            if k >= 3
                && (toks[k - 2].is_punct(".") || toks[k - 2].is_punct("::"))
                && toks[k - 3].kind == TokKind::Ident
            {
                k -= 2;
                continue;
            }
        } else {
            // `foo().lock()`, `arr[i].lock()` — not a plain path.
            return "<expr>".to_string();
        }
        break;
    }
    parts.reverse();
    parts.join(".")
}

/// If the acquisition is the initialiser of `let [mut] g = recv.lock()…`,
/// returns `g`. Walks back from the method token over the receiver path
/// to the `=`.
fn guard_binding(toks: &[Tok], method_tok: usize, lo: usize) -> Option<String> {
    let mut k = method_tok - 1; // the `.`
    while k > lo {
        let t = &toks[k - 1];
        if t.kind == TokKind::Ident || t.is_punct(".") || t.is_punct("::") || t.is_punct("&") {
            k -= 1;
            continue;
        }
        if t.is_punct("=") && k >= 2 && toks[k - 2].kind == TokKind::Ident {
            let name_idx = k - 2;
            let before = if toks[name_idx - 1].is_ident("mut") {
                name_idx - 2
            } else {
                name_idx - 1
            };
            if toks[before].is_ident("let") {
                return Some(toks[name_idx].text.clone());
            }
        }
        return None;
    }
    None
}

/// End of a named guard's life: `drop(name)` or the close of the
/// enclosing block, whichever comes first.
fn guard_end(toks: &[Tok], from: usize, hi: usize, name: &str) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(hi + 1).skip(from) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if t.is_ident("drop")
            && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(j + 2).is_some_and(|n| n.is_ident(name))
        {
            return j;
        }
    }
    hi
}

/// End of a temporary guard's statement: the next `;` at bracket depth 0.
fn statement_end(toks: &[Tok], from: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(hi + 1).skip(from) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(";") && depth <= 0 {
            return j;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use crate::{lint_sources, Rule};

    fn l8(src: &str) -> Vec<crate::Finding> {
        lint_sources(&[("crates/serve/src/x.rs".to_string(), src.to_string())])
            .into_iter()
            .filter(|f| f.rule == Rule::L8)
            .collect()
    }

    #[test]
    fn guard_across_await_fires_dropped_guard_does_not() {
        let bad = "async fn f(s: &S) {\n\
                       let g = s.state.lock().unwrap();\n\
                       s.tx.notify().await;\n\
                       g.touch();\n\
                   }";
        let f = l8(bad);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("s.state.lock()"));
        let good = "async fn f(s: &S) {\n\
                        let g = s.state.lock().unwrap();\n\
                        g.touch();\n\
                        drop(g);\n\
                        s.tx.notify().await;\n\
                    }";
        assert!(l8(good).is_empty());
        let scoped = "async fn f(s: &S) {\n\
                          { let g = s.state.lock().unwrap(); g.touch(); }\n\
                          s.tx.notify().await;\n\
                      }";
        assert!(l8(scoped).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_its_statement() {
        let ok = "async fn f(s: &S) {\n\
                      s.state.lock().unwrap().bump();\n\
                      s.tx.notify().await;\n\
                  }";
        assert!(l8(ok).is_empty());
        let bad = "async fn f(s: &S) {\n\
                       s.state.lock().unwrap().flush_to(&s.sink).await;\n\
                   }";
        assert_eq!(l8(bad).len(), 1);
    }

    #[test]
    fn channel_send_under_guard_fires() {
        let bad = "fn f(s: &S) {\n\
                       let g = s.state.lock().unwrap();\n\
                       s.tx.send(g.snapshot());\n\
                   }";
        let f = l8(bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("send"));
    }

    #[test]
    fn inconsistent_two_lock_order_flags_non_canonical_site() {
        let src = "fn ab(s: &S) {\n\
                       let a = s.alpha.lock().unwrap();\n\
                       let b = s.beta.lock().unwrap();\n\
                       a.merge(&b);\n\
                   }\n\
                   fn ba(s: &S) {\n\
                       let b = s.beta.lock().unwrap();\n\
                       let a = s.alpha.lock().unwrap();\n\
                       a.merge(&b);\n\
                   }";
        let f = l8(src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].line, 8, "the beta-then-alpha site is flagged");
        // A consistent crate is clean even with nested locks.
        let consistent = "fn ab(s: &S) {\n\
                              let a = s.alpha.lock().unwrap();\n\
                              let b = s.beta.lock().unwrap();\n\
                              a.merge(&b);\n\
                          }";
        assert!(l8(consistent).is_empty());
    }

    #[test]
    fn arg_taking_read_write_are_not_lock_acquisitions() {
        let io = "fn f(r: &mut R, buf: &mut [u8]) {\n\
                      r.read(buf);\n\
                      r.write(buf);\n\
                  }";
        assert!(l8(io).is_empty());
    }
}
