//! L7 fixture, helper half: iterates a `HashMap` outside L1's path
//! scope. The old token engine reports nothing here — the taint only
//! becomes visible once it flows through `merge_weights` into the sim
//! crate (see `crates/sim/src/taint_caller.rs`).

use std::collections::HashMap;

pub fn merge_weights(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum()
}
