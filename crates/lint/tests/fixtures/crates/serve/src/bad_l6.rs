//! Known-bad L6 fixture: every reachable-panic shape on a serving path,
//! plus a reasonless allow marker that must NOT suppress, and test-gated
//! code that must stay exempt.

pub fn first(v: &[f64]) -> f64 {
    *v.first().unwrap()
}

pub fn nth(v: &[f64], i: usize) -> f64 {
    v[i]
}

pub fn boom() {
    panic!("no");
}

pub fn reasonless(v: &[f64]) -> f64 {
    // lint:allow(L6)
    v.first().copied().expect("nonempty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn indexing_in_tests_is_exempt() {
        let _x = [1.0_f64][0];
    }
}
