//! Known-bad L8 fixture: a guard held across `.await` and an
//! inconsistent two-lock order. `lock()` stands in for a parking_lot
//! style guard (no `unwrap`), keeping the file free of L6 noise so the
//! span assertions stay exact.

pub async fn held_across_await(s: &State) {
    let g = s.queue.lock();
    s.peer.ping().await;
    g.len();
}

pub fn ab(s: &State) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    a.merge(&b);
}

pub fn ba(s: &State) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    a.merge(&b);
}
