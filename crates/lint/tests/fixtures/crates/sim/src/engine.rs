pub fn tasks_for(gb: f64, per_task: f64) -> usize {
    (gb / per_task).ceil() as usize
}
