//! Known-good fixture: every hazard below carries an allowlist escape, so
//! the lint must report zero findings for this file.
// lint:allow-file(L3) -- fixture exercising the file-scope escape

use std::collections::HashMap;
use std::time::Instant;

pub fn allowed(m: &HashMap<u32, u32>) -> u32 {
    let _t = Instant::now(); // covered by the allow-file marker above
    let mut sum = 0;
    // lint:allow(L1) -- fixture exercising the line-scope escape
    for v in m.values() {
        sum += v;
    }
    sum
}

pub fn cmp_allowed(xs: &mut [f64]) {
    // lint:allow(L2, L6) -- fixture: multi-rule escape; the unwrap cannot fail on NaN-free data
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
