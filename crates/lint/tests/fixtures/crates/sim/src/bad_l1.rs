use std::collections::HashMap;

pub fn total(m: &HashMap<u32, u32>) -> u32 {
    let mut sum = 0;
    for v in m.values() {
        sum += v;
    }
    sum
}
