//! L7 fixture, caller half: no hash types and no clocks in sight — the
//! token-level rules are blind to this file. The dataflow engine flags
//! the `merge_weights` call that imports unordered-iteration taint from
//! `crates/core/src/taint_helper.rs`.

pub fn schedule_round(w: f64) -> f64 {
    let x = merge_weights(&Default::default());
    w + x
}
