// Deliberately bad: a dense row-major matrix inside the LP crate. L5 must
// flag the nested float Vec; the flat `Vec<f64>` objective below must not.
pub struct DenseTableau {
    pub rows: Vec<Vec<f64>>,
    pub objective: Vec<f64>,
}
