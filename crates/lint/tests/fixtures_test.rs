//! Lint self-tests over the `tests/fixtures/` tree: each known-bad snippet
//! must fire its rule at the exact span, and the known-good allowlisted file
//! must produce zero findings. The fixture tree mirrors workspace paths
//! (`crates/sim/src/...`) because rule scoping keys off the path, and the
//! workspace walker skips any directory named `fixtures`, so these
//! deliberately-bad files never fail the real `cargo lint` run.

use std::path::Path;
use tetrium_lint::{lint_workspace, Finding, Rule};

fn fixture_findings() -> Vec<Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    lint_workspace(&root).expect("fixture tree scans")
}

fn for_file<'a>(findings: &'a [Finding], name: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.path.ends_with(name)).collect()
}

#[test]
fn l1_fixture_fires_on_the_values_call() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l1.rs");
    assert_eq!(f.len(), 1, "exactly one finding: {f:?}");
    assert_eq!(f[0].rule, Rule::L1);
    assert_eq!(
        (f[0].line, f[0].col, f[0].len),
        (5, 16, 6),
        "span of `values`"
    );
}

#[test]
fn l2_fixture_fires_on_the_comparator() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l2.rs");
    assert_eq!(f.len(), 1, "exactly one finding: {f:?}");
    assert_eq!(f[0].rule, Rule::L2);
    assert_eq!(
        (f[0].line, f[0].col, f[0].len),
        (2, 25, 11),
        "span of `partial_cmp`"
    );
}

#[test]
fn l3_fixture_fires_on_the_now_call_not_the_type() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l3.rs");
    assert_eq!(f.len(), 1, "the `Instant` return type must not fire: {f:?}");
    assert_eq!(f[0].rule, Rule::L3);
    assert_eq!(
        (f[0].line, f[0].col, f[0].len),
        (2, 16, 7),
        "span of `Instant`"
    );
}

#[test]
fn l4_fixture_fires_on_the_cast() {
    let all = fixture_findings();
    let f = for_file(&all, "engine.rs");
    assert_eq!(f.len(), 1, "exactly one finding: {f:?}");
    assert_eq!(f[0].rule, Rule::L4);
    assert_eq!((f[0].line, f[0].col, f[0].len), (2, 28, 2), "span of `as`");
}

#[test]
fn l5_fixture_fires_on_the_nested_vec_not_the_flat_one() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l5.rs");
    assert_eq!(f.len(), 1, "exactly one finding: {f:?}");
    assert_eq!(f[0].rule, Rule::L5);
    assert_eq!(
        (f[0].line, f[0].col, f[0].len),
        (4, 15, 13),
        "span of `Vec<Vec<f64>>`"
    );
}

#[test]
fn good_fixture_with_allowlist_escapes_is_clean() {
    let all = fixture_findings();
    let f = for_file(&all, "good_allowed.rs");
    assert!(f.is_empty(), "allowlisted escapes must suppress: {f:?}");
}

#[test]
fn diagnostics_render_with_caret_under_the_span() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l2.rs");
    let rendered = f[0].render();
    assert!(rendered.contains("error[L2]"), "{rendered}");
    assert!(rendered.contains("bad_l2.rs:2:25"), "{rendered}");
    assert!(rendered.contains("^^^^^^^^^^^"), "{rendered}");
}

/// The real workspace must stay lint-clean: reverting any satellite fix of
/// this PR (total_cmp conversions, BTreeMap conversions, the `copy_cap`
/// helper, the allow markers) makes this test fail, not just the CI lint
/// job.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let findings = lint_workspace(&root).expect("workspace scans");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
