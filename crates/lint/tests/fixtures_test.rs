//! Lint self-tests over the `tests/fixtures/` tree: each known-bad snippet
//! must fire its rule at the exact span, and the known-good allowlisted file
//! must produce zero findings. The fixture tree mirrors workspace paths
//! (`crates/sim/src/...`) because rule scoping keys off the path, and the
//! workspace walker skips any directory named `fixtures`, so these
//! deliberately-bad files never fail the real `cargo lint` run.

use std::path::Path;
use tetrium_lint::baseline::Baseline;
use tetrium_lint::{lint_source, lint_workspace, Finding, Rule};

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_findings() -> Vec<Finding> {
    lint_workspace(&fixture_root()).expect("fixture tree scans")
}

fn for_file<'a>(findings: &'a [Finding], name: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.path.ends_with(name)).collect()
}

#[test]
fn l1_fixture_fires_on_the_values_call() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l1.rs");
    assert_eq!(f.len(), 1, "exactly one finding: {f:?}");
    assert_eq!(f[0].rule, Rule::L1);
    assert_eq!(
        (f[0].line, f[0].col, f[0].len),
        (5, 16, 6),
        "span of `values`"
    );
}

#[test]
fn l2_fixture_fires_on_the_comparator() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l2.rs");
    assert_eq!(f.len(), 1, "exactly one finding: {f:?}");
    assert_eq!(f[0].rule, Rule::L2);
    assert_eq!(
        (f[0].line, f[0].col, f[0].len),
        (2, 25, 11),
        "span of `partial_cmp`"
    );
}

#[test]
fn l3_fixture_fires_on_the_now_call_not_the_type() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l3.rs");
    assert_eq!(f.len(), 1, "the `Instant` return type must not fire: {f:?}");
    assert_eq!(f[0].rule, Rule::L3);
    assert_eq!(
        (f[0].line, f[0].col, f[0].len),
        (2, 16, 7),
        "span of `Instant`"
    );
}

#[test]
fn l4_fixture_fires_on_the_cast() {
    let all = fixture_findings();
    let f = for_file(&all, "engine.rs");
    assert_eq!(f.len(), 1, "exactly one finding: {f:?}");
    assert_eq!(f[0].rule, Rule::L4);
    assert_eq!((f[0].line, f[0].col, f[0].len), (2, 28, 2), "span of `as`");
}

#[test]
fn l5_fixture_fires_on_the_nested_vec_not_the_flat_one() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l5.rs");
    assert_eq!(f.len(), 1, "exactly one finding: {f:?}");
    assert_eq!(f[0].rule, Rule::L5);
    assert_eq!(
        (f[0].line, f[0].col, f[0].len),
        (4, 15, 13),
        "span of `Vec<Vec<f64>>`"
    );
}

/// Every reachable-panic shape fires at its exact span, the reasonless
/// `lint:allow(L6)` on the `expect` does NOT suppress (L6 demands a
/// written justification), and the `#[cfg(test)]` indexing stays exempt.
#[test]
fn l6_fixture_fires_on_every_panic_shape_at_exact_spans() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l6.rs");
    assert_eq!(f.len(), 4, "unwrap, indexing, panic!, expect: {f:#?}");
    assert!(f.iter().all(|f| f.rule == Rule::L6));
    let spans: Vec<_> = f.iter().map(|f| (f.line, f.col, f.len)).collect();
    assert_eq!(
        spans,
        [(6, 16, 6), (10, 6, 1), (14, 5, 6), (19, 24, 6)],
        "`.unwrap()`, `v[`, `panic!`, reasonless-allowed `.expect()`"
    );
}

/// The acceptance case for the dataflow engine: a `HashMap` iteration in
/// `crates/core` (outside L1's path scope) taints a caller in
/// `crates/sim` through the call graph. The old token engine provably
/// misses it — zero findings on both halves — while the new engine flags
/// the caller at the exact call-site span.
#[test]
fn l7_cross_file_taint_fixture_old_engine_misses_new_engine_flags_caller() {
    let helper_path = "crates/core/src/taint_helper.rs";
    let caller_path = "crates/sim/src/taint_caller.rs";
    let helper = std::fs::read_to_string(fixture_root().join(helper_path)).expect("helper");
    let caller = std::fs::read_to_string(fixture_root().join(caller_path)).expect("caller");

    // Old token-level engine (L1–L5): blind on both files.
    assert!(
        lint_source(helper_path, &helper).is_empty(),
        "old engine must miss the out-of-scope hash iteration"
    );
    assert!(
        lint_source(caller_path, &caller).is_empty(),
        "old engine must miss the taint import"
    );

    // New dataflow engine: the helper stays clean (the seed is L1
    // territory, out of scope in crates/core), the caller is flagged at
    // the `merge_weights` call site.
    let all = fixture_findings();
    assert!(
        for_file(&all, "taint_helper.rs").is_empty(),
        "seeds are not re-reported"
    );
    let f = for_file(&all, "taint_caller.rs");
    assert_eq!(f.len(), 1, "exactly one finding: {f:#?}");
    assert_eq!(f[0].rule, Rule::L7);
    assert_eq!(
        (f[0].line, f[0].col, f[0].len),
        (7, 13, 13),
        "span of the `merge_weights` call"
    );
    assert!(f[0].message.contains("schedule_round"), "{}", f[0].message);
    assert!(f[0].message.contains("merge_weights"), "{}", f[0].message);
    assert!(f[0].message.contains("RandomState"), "{}", f[0].message);
}

/// The guard held across `.await` and the non-canonical half of the
/// lock-order inversion fire at exact spans; the canonical `ab` order
/// stays clean.
#[test]
fn l8_fixture_flags_await_under_guard_and_the_inverted_order_site() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l8.rs");
    assert_eq!(f.len(), 2, "await-under-guard + order inversion: {f:#?}");
    assert!(f.iter().all(|f| f.rule == Rule::L8));
    assert_eq!(
        (f[0].line, f[0].col, f[0].len),
        (8, 19, 5),
        "span of `.await` under the `s.queue` guard"
    );
    assert!(f[0].message.contains("s.queue.lock()"), "{}", f[0].message);
    assert_eq!(
        (f[1].line, f[1].col, f[1].len),
        (20, 21, 4),
        "span of the `s.alpha.lock()` acquired while holding `s.beta`"
    );
    assert!(
        f[1].message.contains("inconsistent lock order"),
        "{}",
        f[1].message
    );
}

#[test]
fn good_fixture_with_allowlist_escapes_is_clean() {
    let all = fixture_findings();
    let f = for_file(&all, "good_allowed.rs");
    assert!(f.is_empty(), "allowlisted escapes must suppress: {f:?}");
}

#[test]
fn diagnostics_render_with_caret_under_the_span() {
    let all = fixture_findings();
    let f = for_file(&all, "bad_l2.rs");
    let rendered = f[0].render();
    assert!(rendered.contains("error[L2]"), "{rendered}");
    assert!(rendered.contains("bad_l2.rs:2:25"), "{rendered}");
    assert!(rendered.contains("^^^^^^^^^^^"), "{rendered}");
}

/// The real workspace must stay at or below the committed baseline: any
/// NEW finding (a key not in `lint_baseline.json`, or a count above its
/// baselined value) fails this test, not just the CI lint job. Burndown
/// (counts below baseline) is allowed here; `cargo lint` reports it as a
/// stale-baseline warning.
#[test]
fn workspace_is_clean_or_baselined() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let findings = lint_workspace(&root).expect("workspace scans");
    let baseline_path = root.join("lint_baseline.json");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(json) => Baseline::parse(&json).expect("lint_baseline.json parses"),
        Err(_) => Baseline::default(),
    };
    let ratchet = baseline.ratchet(&findings);
    assert!(
        ratchet.new.is_empty(),
        "workspace has findings not covered by lint_baseline.json:\n{}",
        ratchet
            .new
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
