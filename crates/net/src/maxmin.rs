//! Max-min fair rate allocation by progressive filling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tetrium_cluster::SiteId;

/// A wide-area flow between two sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Sending site (constrains the uplink).
    pub src: SiteId,
    /// Receiving site (constrains the downlink).
    pub dst: SiteId,
}

impl FlowSpec {
    /// Whether the flow stays within one site and therefore uses no WAN
    /// capacity.
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

/// Computes the max-min fair rate (GB/s) of each flow by progressive filling.
///
/// All flows start at rate zero and grow at the same pace; when a link
/// (site uplink or downlink) saturates, every flow crossing it is frozen at
/// the current level, and the remaining flows keep growing. The result is
/// the unique max-min fair allocation: no link is over capacity and every
/// flow is bottlenecked at some saturated link.
///
/// Local flows (`src == dst`) cross no WAN link and are reported as
/// `f64::INFINITY`; the caller decides how to treat intra-site copies
/// (the engine completes them immediately, as reading local data does not
/// use the WAN in the paper's model).
///
/// # Panics
///
/// Panics if a site index is out of range of the capacity vectors or a
/// capacity is non-positive.
pub fn max_min_rates(flows: &[FlowSpec], up_gbps: &[f64], down_gbps: &[f64]) -> Vec<f64> {
    assert!(up_gbps.iter().all(|&c| c > 0.0));
    assert!(down_gbps.iter().all(|&c| c > 0.0));
    let n_sites = up_gbps.len();
    assert_eq!(down_gbps.len(), n_sites);

    // Flows with the same (src, dst) receive identical max-min rates, so
    // the filling runs over *groups*; with `n` sites there are at most `n^2`
    // groups regardless of flow count.
    let mut rates = vec![0.0f64; flows.len()];
    let mut group_of = vec![usize::MAX; flows.len()];
    let mut groups: Vec<GroupSpec> = Vec::new();
    let mut index: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    for (i, f) in flows.iter().enumerate() {
        assert!(f.src.index() < n_sites && f.dst.index() < n_sites);
        if f.is_local() {
            // Local flows never contend for WAN links.
            rates[i] = f64::INFINITY;
            continue;
        }
        let g = *index
            .entry((f.src.index(), f.dst.index()))
            .or_insert_with(|| {
                groups.push(GroupSpec {
                    src: f.src.index(),
                    dst: f.dst.index(),
                    count: 0,
                });
                groups.len() - 1
            });
        groups[g].count += 1;
        group_of[i] = g;
    }
    let group_rates = waterfill_groups(&groups, up_gbps, down_gbps);
    for (i, &g) in group_of.iter().enumerate() {
        if g != usize::MAX {
            rates[i] = group_rates[g];
        }
    }
    rates
}

/// A bundle of identical flows between one `(src, dst)` site pair.
#[derive(Debug, Clone, Copy)]
pub struct GroupSpec {
    /// Sending site index.
    pub src: usize,
    /// Receiving site index.
    pub dst: usize,
    /// Number of flows in the bundle (zero-count groups get rate 0).
    pub count: usize,
}

/// Max-min fair per-flow rate of each group, by progressive filling with a
/// lazily re-validated link heap.
///
/// Stateless convenience wrapper over [`Waterfiller`]: allocates fresh
/// scratch per call. Hot callers (the flow simulator) hold a persistent
/// [`Waterfiller`] instead and reuse its buffers across calls.
pub fn waterfill_groups(groups: &[GroupSpec], up_gbps: &[f64], down_gbps: &[f64]) -> Vec<f64> {
    let n = up_gbps.len();
    assert_eq!(down_gbps.len(), n);
    let mut wf = Waterfiller::new(n);
    let mut rates = vec![0.0f64; groups.len()];
    let live: Vec<usize> = (0..groups.len()).filter(|&g| groups[g].count > 0).collect();
    wf.mark_all_dirty();
    wf.refill(
        &live,
        |g| (groups[g].src, groups[g].dst, groups[g].count),
        up_gbps,
        down_gbps,
    );
    for &(g, r) in wf.refilled() {
        rates[g] = r;
    }
    rates
}

/// Orders non-negative f64 levels as u64 keys.
#[inline]
fn key(level: f64) -> u64 {
    level.max(0.0).to_bits()
}

/// Persistent progressive-filling state: all scratch buffers (per-link
/// remaining capacity and active counts, link→group membership, the
/// saturation heap, and a link union-find) live across calls, so the steady
/// state of a refill allocates nothing.
///
/// # Sparsity
///
/// Construction allocates only the per-link arrays (`2 × n_sites` entries);
/// per-group state (`spec_cache`, `frozen`) is keyed by *position in the
/// caller's sorted live list*, not by group id, so its footprint is
/// O(live pairs) even when the caller numbers groups by dense `(src, dst)`
/// pair index (n² ids). Per-refill bookkeeping that used to reset every
/// link (union-find parents, dirty-root markers, the scoped-link scan) is
/// epoch-stamped instead: an incremental refill touches O(live + dirty)
/// links, never all `2n`.
///
/// # Dirty-link incremental refills
///
/// Links and groups form a bipartite graph (each group crosses its source
/// uplink and destination downlink). Progressive filling is *independent
/// across connected components* of that graph: freezing a group only
/// updates the remaining capacity and active count of the two links it
/// crosses, so the fill arithmetic of one component never observes another.
/// A mutation (flow added/removed, capacity change) therefore only
/// invalidates the rates of groups in the components containing the links
/// it touched — the *dirty* links. [`Waterfiller::refill`] unions the
/// current live groups' links, scopes the fill to components holding a
/// dirty link, and leaves every other component's rates untouched. When the
/// bottleneck structure actually moves — components merge, split, or a
/// saturation order changes inside one — the moved structure is by
/// construction inside a dirty component and gets a full (component-wide)
/// refill, so the result is always *exactly* the rates a from-scratch fill
/// would produce, bit for bit (the arithmetic sequence per component is
/// identical).
#[derive(Debug)]
pub struct Waterfiller {
    n_sites: usize,
    /// Per-link remaining capacity during a fill (0..n uplinks, n..2n
    /// downlinks).
    rem: Vec<f64>,
    /// Per-link count of unfrozen flows.
    act: Vec<usize>,
    /// Per-link list of live-list positions of the groups crossing it
    /// (rebuilt per refill, scoped). Positions, not group ids: the fill
    /// never indexes anything by the caller's (possibly dense-pair) ids.
    link_groups: Vec<Vec<u32>>,
    /// Saturation heap of `(level key, link)` packed into a `u128`
    /// (`key << 64 | link`; one-word compares), min-first. Ordering is
    /// identical to the `(key, link)` tuple.
    heap: BinaryHeap<Reverse<u128>>,
    /// Per-live-position frozen marker, rebuilt each refill (O(live)).
    frozen: Vec<bool>,
    /// Union-find parent over links. Lazily reset: a link whose
    /// `parent_epoch` lags the current epoch reads as a fresh singleton,
    /// so no O(links) clear pass runs per refill.
    parent: Vec<u32>,
    parent_epoch: Vec<u64>,
    /// Bumped at the start of every refill that does work; validates
    /// `parent_epoch`, `dirty_root_epoch` and `scoped_epoch` entries.
    epoch: u64,
    /// Links marked dirty by mutations since the last refill.
    dirty_links: Vec<usize>,
    dirty_mask: Vec<bool>,
    all_dirty: bool,
    /// Per-link root-dirty marker: the root is dirty iff its entry equals
    /// the current epoch.
    dirty_root_epoch: Vec<u64>,
    /// Links participating in the current scoped fill (each reset exactly
    /// once per refill, guarded by `scoped_epoch`).
    scoped_links: Vec<usize>,
    scoped_epoch: Vec<u64>,
    /// `(src, dst, count)` per live-list position, cached for the current
    /// refill so the fill loop stays on this compact array instead of
    /// chasing the caller's group records. Sized to the live list —
    /// O(live pairs), independent of how sparse or dense the caller's
    /// group-id space is.
    spec_cache: Vec<(u32, u32, u32)>,
    /// Scratch the frozen link's member list is swapped into (the buffers
    /// circulate between this and `link_groups`, so freezing never
    /// deallocates).
    members_scratch: Vec<u32>,
    /// Key of the most recent heap push per link. The fill keeps the
    /// invariant that every active link has an entry at or below its
    /// current saturation level: levels are monotone over the fill modulo
    /// float rounding, so only the (rare) downward rounding moves need a
    /// fresh push — see the freeze loop.
    best_key: Vec<u64>,
    /// `(group, new rate)` pairs produced by the last refill.
    refilled: Vec<(usize, f64)>,
}

impl Waterfiller {
    /// Creates a waterfiller over `n_sites` sites (2 × `n_sites` links).
    pub fn new(n_sites: usize) -> Self {
        let links = 2 * n_sites;
        Self {
            n_sites,
            rem: vec![0.0; links],
            act: vec![0; links],
            link_groups: vec![Vec::new(); links],
            heap: BinaryHeap::new(),
            frozen: Vec::new(),
            parent: vec![0; links],
            parent_epoch: vec![0; links],
            epoch: 0,
            dirty_links: Vec::new(),
            dirty_mask: vec![false; links],
            all_dirty: false,
            dirty_root_epoch: vec![0; links],
            scoped_links: Vec::new(),
            scoped_epoch: vec![0; links],
            spec_cache: Vec::new(),
            members_scratch: Vec::new(),
            best_key: vec![0; links],
            refilled: Vec::new(),
        }
    }

    /// Marks one site's uplink or downlink dirty: the next [`refill`] will
    /// recompute every group in that link's connected component.
    ///
    /// [`refill`]: Waterfiller::refill
    #[inline]
    pub fn mark_dirty(&mut self, link: usize) {
        if !self.dirty_mask[link] && !self.all_dirty {
            self.dirty_mask[link] = true;
            self.dirty_links.push(link);
        }
    }

    /// Marks the uplink of `src` and the downlink of `dst` dirty.
    #[inline]
    pub fn mark_pair_dirty(&mut self, src: usize, dst: usize) {
        self.mark_dirty(src);
        self.mark_dirty(self.n_sites + dst);
    }

    /// Marks everything dirty: the next [`refill`] recomputes all live
    /// groups.
    ///
    /// [`refill`]: Waterfiller::refill
    pub fn mark_all_dirty(&mut self) {
        self.all_dirty = true;
        for l in self.dirty_links.drain(..) {
            self.dirty_mask[l] = false;
        }
    }

    /// Whether any link is marked dirty.
    pub fn is_dirty(&self) -> bool {
        self.all_dirty || !self.dirty_links.is_empty()
    }

    fn find(&mut self, l: usize) -> usize {
        // Lazy singleton: an unstamped link has never been unioned this
        // epoch, so it is its own root (parents are only written between
        // stamped links, so stamped chains never escape the epoch).
        if self.parent_epoch[l] != self.epoch {
            self.parent_epoch[l] = self.epoch;
            self.parent[l] = l as u32;
            return l;
        }
        let mut root = l;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = l;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Recomputes the rates of every live group whose component contains a
    /// dirty link, clearing the dirty set. `live` must list live (count > 0)
    /// group ids in ascending order; `spec` maps a group id to its
    /// `(src, dst, count)`. The results are exposed via
    /// [`Waterfiller::refilled`]; groups outside the dirty components are
    /// not recomputed and keep whatever rate the caller stored for them.
    pub fn refill(
        &mut self,
        live: &[usize],
        spec: impl Fn(usize) -> (usize, usize, usize),
        up_gbps: &[f64],
        down_gbps: &[f64],
    ) {
        let n = self.n_sites;
        assert_eq!(up_gbps.len(), n);
        assert_eq!(down_gbps.len(), n);
        self.refilled.clear();
        let full = self.all_dirty;
        if !full && self.dirty_links.is_empty() {
            return;
        }
        // One epoch per working refill: invalidates last refill's parents,
        // dirty-root marks and scoped marks without clearing them.
        self.epoch += 1;

        // Cache every live group's spec once, keyed by live-list position;
        // all later passes read the compact array. Also union the live
        // groups' link pairs and mark the roots reached by dirty links (a
        // full refill scopes every live group, so it skips the union pass).
        self.spec_cache.clear();
        self.frozen.clear();
        self.frozen.resize(live.len(), false);
        if full {
            for &g in live {
                let (src, dst, count) = spec(g);
                assert!(src != dst, "local flows cannot be grouped");
                assert!(src < n && dst < n);
                self.spec_cache.push((src as u32, dst as u32, count as u32));
            }
        } else {
            for &g in live {
                let (src, dst, count) = spec(g);
                assert!(src != dst, "local flows cannot be grouped");
                assert!(src < n && dst < n);
                self.spec_cache.push((src as u32, dst as u32, count as u32));
                let (a, b) = (self.find(src), self.find(n + dst));
                if a != b {
                    self.parent[a] = b as u32;
                }
            }
            for i in 0..self.dirty_links.len() {
                let l = self.dirty_links[i];
                let r = self.find(l);
                self.dirty_root_epoch[r] = self.epoch;
            }
        }

        // Collect the scoped group set into the link membership lists
        // (ascending live order — the fill's arithmetic order), resetting
        // each scoped link's fill state on first touch. Only links crossed
        // by in-scope groups are visited; a dirty link with no live group
        // has nothing to recompute.
        self.scoped_links.clear();
        for i in 0..self.spec_cache.len() {
            let (src, dst, count) = self.spec_cache[i];
            let (src, dst, count) = (src as usize, dst as usize, count as usize);
            let in_scope = full || {
                let r = self.find(src);
                self.dirty_root_epoch[r] == self.epoch
            };
            if !in_scope {
                continue;
            }
            for l in [src, n + dst] {
                if self.scoped_epoch[l] != self.epoch {
                    self.scoped_epoch[l] = self.epoch;
                    self.scoped_links.push(l);
                    self.rem[l] = if l < n { up_gbps[l] } else { down_gbps[l - n] };
                    self.act[l] = 0;
                    self.link_groups[l].clear();
                }
            }
            self.act[src] += count;
            self.act[n + dst] += count;
            self.link_groups[src].push(i as u32);
            self.link_groups[n + dst].push(i as u32);
        }

        // Progressive filling over the scoped component(s), identical to a
        // from-scratch fill restricted to them: saturation levels are
        // monotone over the filling (freezing a group can only raise the
        // level at which other links saturate), so a stale heap entry is
        // simply re-pushed with its recomputed level. Each group freezes
        // exactly once, giving `O(groups + links·log links)` per refill.
        debug_assert!(self.heap.is_empty());
        let pack = |k: u64, l: usize| ((k as u128) << 64) | l as u128;
        let mut heap_buf = std::mem::take(&mut self.heap).into_vec();
        heap_buf.clear();
        for i in 0..self.scoped_links.len() {
            let l = self.scoped_links[i];
            if self.act[l] > 0 {
                let k = key(self.rem[l].max(0.0) / self.act[l] as f64);
                self.best_key[l] = k;
                heap_buf.push(Reverse(pack(k, l)));
            }
        }
        // Heapify in one O(links) pass; link keys are distinct, so the pop
        // order matches one-by-one pushes exactly.
        let Waterfiller {
            rem,
            act,
            link_groups,
            heap,
            frozen,
            spec_cache,
            members_scratch,
            refilled,
            best_key,
            ..
        } = &mut *self;
        *heap = BinaryHeap::from(heap_buf);
        while let Some(Reverse(packed)) = heap.pop() {
            let (stored, l) = ((packed >> 64) as u64, packed as u64 as usize);
            if act[l] == 0 {
                continue;
            }
            let exact = rem[l].max(0.0) / act[l] as f64;
            if key(exact) > stored {
                best_key[l] = key(exact);
                heap.push(Reverse(pack(key(exact), l)));
                continue;
            }
            // Freeze every unfrozen group crossing link `l` at this level.
            // The member list swaps against a scratch buffer (leaving the
            // link's list empty, as the fill requires) so no Vec is dropped
            // or grown from zero on this path.
            let level = exact;
            members_scratch.clear();
            std::mem::swap(members_scratch, &mut link_groups[l]);
            for &i in members_scratch.iter() {
                let i = i as usize;
                if frozen[i] {
                    continue;
                }
                frozen[i] = true;
                refilled.push((live[i], level));
                let (src, dst, count) = spec_cache[i];
                let (src, dst, count) = (src as usize, dst as usize, count as usize);
                // Counterpart links almost never need a re-push: the entry
                // behind `best_key[m]` is still at or below the new level
                // (levels are monotone over the fill), and the
                // revalidate-and-repush step above restores the exact key
                // when it surfaces. Only a *downward* float-rounding move —
                // the new level landing below every live entry — needs a
                // fresh push to keep the at-or-below invariant, so the
                // freeze order stays exactly that of an eager heap while
                // the heap itself stays at `O(links)` entries.
                for m in [src, n + dst] {
                    act[m] -= count;
                    rem[m] = (rem[m] - level * count as f64).max(0.0);
                    if act[m] > 0 {
                        let nk = key(rem[m] / act[m] as f64);
                        if nk < best_key[m] {
                            best_key[m] = nk;
                            heap.push(Reverse(pack(nk, m)));
                        }
                    }
                }
            }
            act[l] = 0;
        }

        self.all_dirty = false;
        for l in self.dirty_links.drain(..) {
            self.dirty_mask[l] = false;
        }
    }

    /// The `(group, per-flow rate)` results of the last [`refill`]: exactly
    /// the groups inside the dirty components, each frozen once.
    ///
    /// [`refill`]: Waterfiller::refill
    pub fn refilled(&self) -> &[(usize, f64)] {
        &self.refilled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(s: usize, d: usize) -> FlowSpec {
        FlowSpec {
            src: SiteId(s),
            dst: SiteId(d),
        }
    }

    #[test]
    fn single_flow_gets_bottleneck_bandwidth() {
        let rates = max_min_rates(&[f(0, 1)], &[10.0, 10.0], &[10.0, 2.0]);
        assert!((rates[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        // Both flows leave site 0 (uplink 4); receivers are unconstrained.
        let rates = max_min_rates(&[f(0, 1), f(0, 2)], &[4.0, 9.0, 9.0], &[9.0; 3]);
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn freed_capacity_goes_to_unbottlenecked_flow() {
        // Flow A: 0->1 constrained by dst downlink 1. Flow B: 0->2 can then
        // use the rest of src uplink 4 => 3.
        let rates = max_min_rates(&[f(0, 1), f(0, 2)], &[4.0, 9.0, 9.0], &[9.0, 1.0, 9.0]);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn local_flows_are_infinite_and_do_not_contend() {
        let rates = max_min_rates(&[f(0, 0), f(0, 1)], &[2.0, 2.0], &[2.0, 2.0]);
        assert!(rates[0].is_infinite());
        assert!((rates[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_link_oversubscribed_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.gen_range(2..6);
            let up: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..8.0)).collect();
            let down: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..8.0)).collect();
            let flows: Vec<FlowSpec> = (0..rng.gen_range(1..20))
                .map(|_| f(rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            let rates = max_min_rates(&flows, &up, &down);
            let mut upload = vec![0.0; n];
            let mut download = vec![0.0; n];
            for (i, fl) in flows.iter().enumerate() {
                if !fl.is_local() {
                    upload[fl.src.index()] += rates[i];
                    download[fl.dst.index()] += rates[i];
                }
            }
            for s in 0..n {
                assert!(upload[s] <= up[s] + 1e-6, "uplink {s} oversubscribed");
                assert!(download[s] <= down[s] + 1e-6, "downlink {s} oversubscribed");
            }
            // Every non-local flow is bottlenecked: its rate cannot be raised
            // without violating some link, i.e. it crosses a saturated link.
            for (i, fl) in flows.iter().enumerate() {
                if fl.is_local() {
                    continue;
                }
                let up_sat = upload[fl.src.index()] >= up[fl.src.index()] - 1e-6;
                let down_sat = download[fl.dst.index()] >= down[fl.dst.index()] - 1e-6;
                assert!(up_sat || down_sat, "flow {i} not bottlenecked");
            }
        }
    }

    /// Incremental refills (dirty-link scoping) must reproduce the full
    /// fill bit for bit, for every mutation in a deterministic churn
    /// sequence.
    #[test]
    fn incremental_refill_matches_full_fill_bitwise() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 6;
        let up: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..8.0)).collect();
        let down: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..8.0)).collect();
        // One group per ordered pair; counts mutate over time.
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|s| (0..n).filter(move |&d| d != s).map(move |d| (s, d)))
            .collect();
        let mut counts = vec![0usize; pairs.len()];
        let mut rates = vec![0.0f64; pairs.len()];
        let mut wf = Waterfiller::new(n);
        for step in 0..400 {
            let g = rng.gen_range(0..pairs.len());
            if counts[g] > 0 && rng.gen_bool(0.4) {
                counts[g] -= 1;
            } else {
                counts[g] += rng.gen_range(1..4usize);
            }
            let (s, d) = pairs[g];
            wf.mark_pair_dirty(s, d);
            let live: Vec<usize> = (0..pairs.len()).filter(|&g| counts[g] > 0).collect();
            wf.refill(&live, |g| (pairs[g].0, pairs[g].1, counts[g]), &up, &down);
            for &(g, r) in wf.refilled() {
                rates[g] = r;
            }
            let specs: Vec<GroupSpec> = pairs
                .iter()
                .zip(&counts)
                .map(|(&(src, dst), &count)| GroupSpec { src, dst, count })
                .collect();
            let want = waterfill_groups(&specs, &up, &down);
            for &g in &live {
                assert!(
                    rates[g].to_bits() == want[g].to_bits(),
                    "step {step}: group {g} incremental {} != full {}",
                    rates[g],
                    want[g]
                );
            }
        }
    }
}
