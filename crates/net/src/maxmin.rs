//! Max-min fair rate allocation by progressive filling.

use tetrium_cluster::SiteId;

/// A wide-area flow between two sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Sending site (constrains the uplink).
    pub src: SiteId,
    /// Receiving site (constrains the downlink).
    pub dst: SiteId,
}

impl FlowSpec {
    /// Whether the flow stays within one site and therefore uses no WAN
    /// capacity.
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

/// Computes the max-min fair rate (GB/s) of each flow by progressive filling.
///
/// All flows start at rate zero and grow at the same pace; when a link
/// (site uplink or downlink) saturates, every flow crossing it is frozen at
/// the current level, and the remaining flows keep growing. The result is
/// the unique max-min fair allocation: no link is over capacity and every
/// flow is bottlenecked at some saturated link.
///
/// Local flows (`src == dst`) cross no WAN link and are reported as
/// `f64::INFINITY`; the caller decides how to treat intra-site copies
/// (the engine completes them immediately, as reading local data does not
/// use the WAN in the paper's model).
///
/// # Panics
///
/// Panics if a site index is out of range of the capacity vectors or a
/// capacity is non-positive.
pub fn max_min_rates(flows: &[FlowSpec], up_gbps: &[f64], down_gbps: &[f64]) -> Vec<f64> {
    assert!(up_gbps.iter().all(|&c| c > 0.0));
    assert!(down_gbps.iter().all(|&c| c > 0.0));
    let n_sites = up_gbps.len();
    assert_eq!(down_gbps.len(), n_sites);

    // Flows with the same (src, dst) receive identical max-min rates, so
    // the filling runs over *groups*; with `n` sites there are at most `n^2`
    // groups regardless of flow count.
    let mut rates = vec![0.0f64; flows.len()];
    let mut group_of = vec![usize::MAX; flows.len()];
    let mut groups: Vec<GroupSpec> = Vec::new();
    let mut index: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        assert!(f.src.index() < n_sites && f.dst.index() < n_sites);
        if f.is_local() {
            // Local flows never contend for WAN links.
            rates[i] = f64::INFINITY;
            continue;
        }
        let g = *index
            .entry((f.src.index(), f.dst.index()))
            .or_insert_with(|| {
                groups.push(GroupSpec {
                    src: f.src.index(),
                    dst: f.dst.index(),
                    count: 0,
                });
                groups.len() - 1
            });
        groups[g].count += 1;
        group_of[i] = g;
    }
    let group_rates = waterfill_groups(&groups, up_gbps, down_gbps);
    for (i, &g) in group_of.iter().enumerate() {
        if g != usize::MAX {
            rates[i] = group_rates[g];
        }
    }
    rates
}

/// A bundle of identical flows between one `(src, dst)` site pair.
#[derive(Debug, Clone, Copy)]
pub struct GroupSpec {
    /// Sending site index.
    pub src: usize,
    /// Receiving site index.
    pub dst: usize,
    /// Number of flows in the bundle (zero-count groups get rate 0).
    pub count: usize,
}

/// Max-min fair per-flow rate of each group, by progressive filling with a
/// lazily re-validated link heap.
///
/// Saturation levels are monotone over the filling (freezing a group can
/// only raise the level at which other links saturate), so a stale heap
/// entry is simply re-pushed with its recomputed level. Each group freezes
/// exactly once, giving `O(groups + links·log links)` per call — the
/// property that keeps shuffle-heavy simulations tractable.
pub fn waterfill_groups(groups: &[GroupSpec], up_gbps: &[f64], down_gbps: &[f64]) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = up_gbps.len();
    assert_eq!(down_gbps.len(), n);
    // Links: 0..n uplinks, n..2n downlinks.
    let mut rem = vec![0.0f64; 2 * n];
    let mut act = vec![0usize; 2 * n];
    rem[..n].copy_from_slice(up_gbps);
    rem[n..].copy_from_slice(down_gbps);
    let mut link_groups: Vec<Vec<usize>> = vec![Vec::new(); 2 * n];
    for (g, spec) in groups.iter().enumerate() {
        assert!(spec.src != spec.dst, "local flows cannot be grouped");
        assert!(spec.src < n && spec.dst < n);
        if spec.count == 0 {
            continue;
        }
        act[spec.src] += spec.count;
        act[n + spec.dst] += spec.count;
        link_groups[spec.src].push(g);
        link_groups[n + spec.dst].push(g);
    }

    let mut rates = vec![0.0f64; groups.len()];
    let mut frozen: Vec<bool> = groups.iter().map(|g| g.count == 0).collect();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    // f64 levels are non-negative, so their bit patterns order correctly as
    // u64 keys (avoids a float-ordering wrapper).
    let key = |level: f64| -> u64 { level.max(0.0).to_bits() };
    for l in 0..2 * n {
        if act[l] > 0 {
            heap.push(Reverse((key(rem[l].max(0.0) / act[l] as f64), l)));
        }
    }
    while let Some(Reverse((stored, l))) = heap.pop() {
        if act[l] == 0 {
            continue;
        }
        let exact = rem[l].max(0.0) / act[l] as f64;
        if key(exact) > stored {
            heap.push(Reverse((key(exact), l)));
            continue;
        }
        // Freeze every unfrozen group crossing link `l` at this level.
        let level = exact;
        let members = std::mem::take(&mut link_groups[l]);
        for g in members {
            if frozen[g] {
                continue;
            }
            frozen[g] = true;
            rates[g] = level;
            let spec = &groups[g];
            for m in [spec.src, n + spec.dst] {
                act[m] -= spec.count;
                rem[m] = (rem[m] - level * spec.count as f64).max(0.0);
                if m != l && act[m] > 0 {
                    heap.push(Reverse((key(rem[m] / act[m] as f64), m)));
                }
            }
        }
        act[l] = 0;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(s: usize, d: usize) -> FlowSpec {
        FlowSpec {
            src: SiteId(s),
            dst: SiteId(d),
        }
    }

    #[test]
    fn single_flow_gets_bottleneck_bandwidth() {
        let rates = max_min_rates(&[f(0, 1)], &[10.0, 10.0], &[10.0, 2.0]);
        assert!((rates[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        // Both flows leave site 0 (uplink 4); receivers are unconstrained.
        let rates = max_min_rates(&[f(0, 1), f(0, 2)], &[4.0, 9.0, 9.0], &[9.0; 3]);
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn freed_capacity_goes_to_unbottlenecked_flow() {
        // Flow A: 0->1 constrained by dst downlink 1. Flow B: 0->2 can then
        // use the rest of src uplink 4 => 3.
        let rates = max_min_rates(&[f(0, 1), f(0, 2)], &[4.0, 9.0, 9.0], &[9.0, 1.0, 9.0]);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn local_flows_are_infinite_and_do_not_contend() {
        let rates = max_min_rates(&[f(0, 0), f(0, 1)], &[2.0, 2.0], &[2.0, 2.0]);
        assert!(rates[0].is_infinite());
        assert!((rates[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_link_oversubscribed_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.gen_range(2..6);
            let up: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..8.0)).collect();
            let down: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..8.0)).collect();
            let flows: Vec<FlowSpec> = (0..rng.gen_range(1..20))
                .map(|_| f(rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            let rates = max_min_rates(&flows, &up, &down);
            let mut upload = vec![0.0; n];
            let mut download = vec![0.0; n];
            for (i, fl) in flows.iter().enumerate() {
                if !fl.is_local() {
                    upload[fl.src.index()] += rates[i];
                    download[fl.dst.index()] += rates[i];
                }
            }
            for s in 0..n {
                assert!(upload[s] <= up[s] + 1e-6, "uplink {s} oversubscribed");
                assert!(download[s] <= down[s] + 1e-6, "downlink {s} oversubscribed");
            }
            // Every non-local flow is bottlenecked: its rate cannot be raised
            // without violating some link, i.e. it crosses a saturated link.
            for (i, fl) in flows.iter().enumerate() {
                if fl.is_local() {
                    continue;
                }
                let up_sat = upload[fl.src.index()] >= up[fl.src.index()] - 1e-6;
                let down_sat = download[fl.dst.index()] >= down[fl.dst.index()] - 1e-6;
                assert!(up_sat || down_sat, "flow {i} not bottlenecked");
            }
        }
    }
}
