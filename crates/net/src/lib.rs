//! Flow-level WAN model with max-min fair bandwidth sharing.
//!
//! The paper assumes sites connected by a congestion-free core (§2.1,
//! validated by measurement studies), so a wide-area transfer is constrained
//! only by the sender's uplink and the receiver's downlink. Tetrium's
//! prototype further assumes "available bandwidth is fairly shared among all
//! concurrent flows at a site" (§5). This crate implements exactly that
//! model:
//!
//! - [`max_min_rates`] computes the max-min fair allocation for a set of
//!   flows over per-site uplink/downlink capacities (progressive filling),
//! - [`FlowSim`] is the fluid-flow simulator used by the execution engine:
//!   flows are added/removed over time, rates are re-derived whenever the
//!   flow set or capacities change, and the next flow completion is exposed
//!   as the engine's next network event.

mod flowsim;
mod maxmin;

pub use flowsim::{FlowKey, FlowSim};
pub use maxmin::{max_min_rates, waterfill_groups, FlowSpec, GroupSpec, Waterfiller};
